//! Mandelbrot set with a divergent per-pixel while loop, rendered as ASCII.
//!
//!     cargo run --release --example mandelbrot

use futhark::{Compiler, Device};
use futhark_core::Value;

const SRC: &str = "\
fun main (h: i64) (w: i64) (limit: i64): [h][w]i64 =
  let ris = iota h
  let cis = iota w
  let hf = f32 h
  let wf = f32 w
  let out = map (\\(ri: i64) ->
    map (\\(ci: i64) ->
      let cr = (f32 ci) / wf * 3.0f32 - 2.0f32
      let cim = (f32 ri) / hf * 2.0f32 - 1.0f32
      let (zr, zi, it) = loop (zr = 0.0f32, zi = 0.0f32, it = 0)
        while (zr * zr + zi * zi < 4.0f32) && (it < limit) do (
          let nzr = zr * zr - zi * zi + cr
          let nzi = 2.0f32 * zr * zi + cim
          in (nzr, nzi, it + 1))
      let ignore = zr + zi
      in it) cis) ris
  in out";

fn main() -> Result<(), futhark::Error> {
    let (h, w, limit) = (24i64, 64i64, 64i64);
    let compiled = Compiler::new().compile(SRC)?;
    let (out, perf) = compiled.run(
        Device::Gtx780,
        &[Value::i64(h), Value::i64(w), Value::i64(limit)],
    )?;
    let img = out[0].as_array().expect("image");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    for r in 0..h {
        let mut line = String::new();
        for c in 0..w {
            let it = img
                .index_scalar(&[r, c])
                .and_then(|s| s.as_i64())
                .unwrap_or(0);
            let shade = (it * (shades.len() as i64 - 1) / limit) as usize;
            line.push(shades[shade.min(shades.len() - 1)]);
        }
        println!("{line}");
    }
    println!("{:.3} simulated ms on GTX 780 Ti", perf.total_ms());
    Ok(())
}

//! K-means clustering — the paper's running example (Section 2.4).
//!
//! Demonstrates the three formulations of Figure 4 (sequential loop,
//! work-inefficient parallel, and `stream_red` with in-place updates) and
//! measures them on the simulated GPU.
//!
//!     cargo run --release --example kmeans

use futhark::{Compiler, Device};
use futhark_core::{ArrayVal, Value};

const FIG4A: &str = "\
fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =
  let zeros = replicate k 0
  let counts = loop (c = zeros) for i < n do (
    let cluster = membership[i]
    let old = c[cluster]
    in c with [cluster] <- old + 1)
  in counts";

const FIG4B: &str = "\
fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =
  let increments = map (\\(cluster: i64) ->
    let incr = replicate k 0
    let incr[cluster] = 1
    in incr) membership
  let zeros = replicate k 0
  let counts = reduce (\\(x: [k]i64) (y: [k]i64) -> map (+) x y) zeros increments
  in counts";

const FIG4C: &str = "\
fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =
  let zeros = replicate k 0
  let counts = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)
    (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->
      loop (a = acc) for i < chunk do (
        let cluster = cs[i]
        let old = a[cluster]
        in a with [cluster] <- old + 1))
    zeros membership
  in counts";

fn main() -> Result<(), futhark::Error> {
    let n = 32_768i64;
    let k = 64i64;
    let membership: Vec<i64> = (0..n).map(|i| (i * 2654435761) % k).collect();
    let args = vec![
        Value::i64(n),
        Value::i64(k),
        Value::Array(ArrayVal::from_i64s(membership)),
    ];
    let mut reference: Option<Vec<Value>> = None;
    for (name, src) in [
        ("Figure 4a (sequential loop)", FIG4A),
        ("Figure 4b (O(n*k) parallel)", FIG4B),
        ("Figure 4c (stream_red + in-place)", FIG4C),
    ] {
        let compiled = Compiler::new().compile(src)?;
        let (out, perf) = compiled.run(Device::Gtx780, &args)?;
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "formulations disagree!"),
        }
        println!("{name:<36} {:>9.3} simulated ms", perf.total_ms());
    }
    println!("all three formulations agree (Section 2.4).");
    Ok(())
}

//! N-body accelerations (the Accelerate benchmark of Section 6): a map
//! whose every element folds over all bodies — the bodies arrays are
//! invariant to the parallel dimension, so the compiler stages them through
//! local memory (1-D block tiling, Section 5.2).
//!
//!     cargo run --release --example nbody

use futhark::{Compiler, Device, PipelineOptions};
use futhark_core::{ArrayVal, Value};

const SRC: &str = "\
fun main (n: i64) (xs: [n]f32) (ys: [n]f32) (ms: [n]f32): ([n]f32, [n]f32) =
  let (axs, ays) = map (\\(xi: f32) (yi: f32) ->
    let (ax, ay) = loop (ax = 0.0f32, ay = 0.0f32) for j < n do (
      let xj = xs[j]
      let yj = ys[j]
      let mj = ms[j]
      let dx = xj - xi
      let dy = yj - yi
      let r2 = dx * dx + dy * dy + 0.01f32
      let inv = 1.0f32 / (r2 * sqrt r2)
      in (ax + mj * dx * inv, ay + mj * dy * inv))
    in (ax, ay)) xs ys
  in (axs, ays)";

fn main() -> Result<(), futhark::Error> {
    let n = 2048usize;
    let xs: Vec<f32> = (0..n)
        .map(|i| ((i * 37) % 100) as f32 / 50.0 - 1.0)
        .collect();
    let ys: Vec<f32> = (0..n)
        .map(|i| ((i * 61) % 100) as f32 / 50.0 - 1.0)
        .collect();
    let ms: Vec<f32> = (0..n)
        .map(|i| 0.1 + ((i * 13) % 10) as f32 / 10.0)
        .collect();
    let args = vec![
        Value::i64(n as i64),
        Value::Array(ArrayVal::from_f32s(xs)),
        Value::Array(ArrayVal::from_f32s(ys)),
        Value::Array(ArrayVal::from_f32s(ms)),
    ];
    for (name, opts) in [
        ("tiled (default)", PipelineOptions::default()),
        (
            "untiled",
            PipelineOptions {
                tiling: false,
                ..PipelineOptions::default()
            },
        ),
    ] {
        let compiled = Compiler::with_options(opts).compile(SRC)?;
        let (_, perf) = compiled.run(Device::Gtx780, &args)?;
        println!(
            "{name:<18} {:>8.3} ms   {} global transactions, {} local accesses",
            perf.total_ms(),
            perf.stats.global_transactions,
            perf.stats.local_accesses
        );
    }
    Ok(())
}

//! Quickstart: compile a Futhark program through the full pipeline and run
//! it on the simulated GPU, printing results and the performance report.
//!
//!     cargo run --release --example quickstart

use futhark::{Compiler, Device};
use futhark_core::{ArrayVal, Value};

fn main() -> Result<(), futhark::Error> {
    // Dot product with a map-reduce composition; the fusion engine turns
    // it into a single redomap kernel (Section 4 of the paper).
    let src = "\
fun main (n: i64) (xs: [n]f32) (ys: [n]f32): f32 =
  let prods = map (\\(x: f32) (y: f32) -> x * y) xs ys
  let s = reduce (+) 0.0f32 prods
  in s";
    let compiled = Compiler::new().compile(src)?;
    println!("compiled {} kernel(s)", compiled.kernel_count());

    let n = 100_000usize;
    let xs: Vec<f32> = (0..n).map(|i| (i % 17) as f32 * 0.25).collect();
    let ys: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.5).collect();
    let args = vec![
        Value::i64(n as i64),
        Value::Array(ArrayVal::from_f32s(xs)),
        Value::Array(ArrayVal::from_f32s(ys)),
    ];

    for device in [Device::Gtx780, Device::W8100] {
        let (out, perf) = compiled.run(device, &args)?;
        println!(
            "{device:?}: dot = {}  ({:.3} simulated ms, {} launches, {} memory transactions, coalescing {:.0}%)",
            out[0],
            perf.total_ms(),
            perf.launches,
            perf.stats.global_transactions,
            perf.stats.coalescing_efficiency() * 100.0
        );
    }
    Ok(())
}

-- hand-written regression anchor: floored division and modulo.
-- Futhark's `/` rounds toward negative infinity and `%` takes the sign of
-- the divisor (truncation gives -7/2 = -3, floored gives -4 with -7%2 = 1).
-- Extremes included: i64::MIN / -1 wraps, and x % -1 == 0 for all x.
-- Note the differential oracle alone cannot distinguish floored from
-- truncating semantics (both executors share the scalar evaluator), so the
-- concrete results are additionally pinned by `floored_divmod_pins` in
-- tests/pipeline.rs; this fixture keeps the extreme operands crash-free
-- and in agreement under the whole ablation matrix.
-- input: 8
-- input: [-7, 7, -7, 7, -9223372036854775808, -9223372036854775808, -1, 5]
-- input: [2, -2, -2, 2, -1, 3, 5, -3]
fun main (n: i64) (xs0: [n]i64) (xs1: [n]i64): [n]i64 =
  let q = map (\(x: i64) (y: i64) -> x / y) xs0 xs1
  let r = map (\(x: i64) (y: i64) -> x % y) xs0 xs1
  let chk = map (\(a: i64) (b: i64) -> a * 10 + b) q r
  in chk

-- corpus anchor: scatter drops out-of-bounds (negative or >= n) indices
-- and resolves duplicate indices deterministically to the last write, in
-- the interpreter and on both simulated devices alike.
-- input: 6
-- input: [0, 5, -3, 12, 12, 700]
fun main (n: i64) (xs: [n]i64): [n]i64 =
  let dest = replicate n 0
  let is = map (\x -> x % 7) xs
  let vs = map (\x -> x * 3) xs
  let r = scatter dest is vs
  in map (+) r xs

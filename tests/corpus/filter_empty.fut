-- corpus anchor: a filter that keeps nothing produces an empty array
-- whose reductions and scans must still agree between the interpreter
-- and every compiled configuration (empty-segment handling).
-- input: 4
-- input: [3, 1, 4, 1]
fun main (n: i64) (xs: [n]i64): [n]i64 =
  let ys = filter (\x -> x < 0) xs
  let s = reduce (+) 0 ys
  let t = scan (+) 0 ys
  let c = reduce (+) 0 (map (\x -> 1) t)
  let sc = s + c
  in map (+ sc) xs

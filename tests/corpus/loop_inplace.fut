-- corpus anchor: in-place updates inside a sequential loop (the paper's
-- Section 3 motivation). The copy makes the merge parameter consumable;
-- every configuration must produce the same doubled array.
-- input: 5
-- input: [1, 2, 3, 4, 5]
fun main (n: i64) (xs: [n]i64): [n]i64 =
  let ys = copy xs
  let r = loop (a = ys) for i < n do (
    let old = a[i]
    in a with [i] <- old * 2)
  in r

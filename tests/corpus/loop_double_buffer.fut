-- corpus anchor: the double-buffering pattern of Section 6 — a loop
-- carries an array, each iteration copies the carry and scatters into
-- the copy. The memory planner must elide the copy and rotate the two
-- buffers across iterations without changing a single bit relative to
-- the unplanned pipeline and the interpreter.
-- input: 6
-- input: 5
-- input: [3, 1, 4, 1, 5, 9]
fun main (n: i64) (iters: i64) (xs: [n]i64): [n]i64 =
  let r = loop (cur = xs) for i < iters do (
    let buf = copy cur
    let is = map (\x -> (x + i) % n) cur
    let vs = map (\x -> x + 1) cur
    let next = scatter buf is vs
    in next)
  in r

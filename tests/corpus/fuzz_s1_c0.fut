-- futhark-fuzz reproducer: campaign seed 1, case 0 (case seed 10451216379200822465)
-- shrunk from 11 stages to 0
-- divergence: [simplify+fusion+coalescing+tiling on gtx780] run error: type error at runtime: expected scalar
-- input: 1
-- input: 1
-- input: [0]
-- input: [0]
-- input: [[0]]
fun main (n: i64) (m: i64) (xs0: [n]i64) (xs1: [n]i64) (mat: [n][m]i64): [n]i64 =
  let ob0 = 0 + n
  let ob1 = ob0 + m
  let mat_s = map (\row -> (let s = reduce (+) 0 row in s)) mat
  let oa0 = map (+) xs0 xs1
  let oa1 = map (+) oa0 mat_s
  let out = map (+ ob1) oa1
  in out

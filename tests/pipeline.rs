//! Integration tests spanning the whole workspace: frontend → checker →
//! optimiser → GPU backend → simulator, cross-checked against the
//! reference interpreter — including all sixteen paper benchmarks.

use futhark::{Compiler, Device, PipelineOptions};
use futhark_core::{ArrayVal, Buffer, Value};

fn assert_gpu_matches_interp(src: &str, args: &[Value]) {
    let compiled = Compiler::new().compile(src).expect("compiles");
    for device in [Device::Gtx780, Device::W8100] {
        let (gpu, perf) = compiled
            .run(device, args)
            .unwrap_or_else(|e| panic!("run failed on {device:?}: {e}"));
        let interp = futhark::interpret(src, args).expect("interprets");
        assert_eq!(gpu.len(), interp.len());
        for (a, b) in gpu.iter().zip(&interp) {
            assert!(a.approx_eq(b, 1e-3), "{device:?}: {a} != {b}");
        }
        assert!(perf.total_ms() > 0.0);
    }
}

#[test]
fn all_sixteen_benchmarks_verify() {
    let mut failures = Vec::new();
    for b in futhark_bench::all_benchmarks() {
        if let Err(e) = b.verify() {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "{failures:#?}");
}

#[test]
fn benchmark_references_also_verify() {
    // The reference models must compute the same answers.
    for b in futhark_bench::all_benchmarks() {
        let src = b.reference.source.as_deref().unwrap_or(&b.source);
        let compiled = Compiler::with_options(b.reference.opts)
            .compile(src)
            .unwrap_or_else(|e| panic!("{}: reference compile failed: {e}", b.name));
        let (gpu, _) = compiled
            .run(Device::Gtx780, &b.small_args)
            .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", b.name));
        let interp = futhark::interpret(&b.source, &b.small_args)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", b.name));
        for (a, bb) in gpu.iter().zip(&interp) {
            assert!(
                a.approx_eq(bb, 1e-3),
                "{}: reference and Futhark semantics disagree",
                b.name
            );
        }
    }
}

#[test]
fn section22_running_example() {
    let src = "fun main (n: i64) (m: i64) (matrix: [n][m]f32): ([n][m]f32, [n]f32) =\n\
               let (rows, sums) = map (\\(row: [m]f32) ->\n\
                 let r2 = map (\\x -> x + 1.0f32) row\n\
                 let s = reduce (+) 0.0f32 row\n\
                 in (r2, s)) matrix\n\
               in (rows, sums)";
    let m = ArrayVal::new(
        vec![6, 5],
        Buffer::F32((0..30).map(|i| i as f32 * 0.5).collect()),
    );
    assert_gpu_matches_interp(src, &[Value::i64(6), Value::i64(5), Value::Array(m)]);
}

#[test]
fn ablations_preserve_semantics() {
    // Every combination of pipeline switches computes the same answer.
    let src = "fun main (n: i64) (m: i64) (xss: [n][m]f32): ([n]f32, f32) =\n\
               let sums = map (\\(row: [m]f32) -> reduce (+) 0.0f32 row) xss\n\
               let sq = map (\\s -> s * s) sums\n\
               let total = reduce (+) 0.0f32 sq\n\
               in (sums, total)";
    let xss = ArrayVal::new(
        vec![24, 16],
        Buffer::F32((0..384).map(|i| ((i * 7) % 23) as f32 * 0.25).collect()),
    );
    let args = vec![Value::i64(24), Value::i64(16), Value::Array(xss)];
    let baseline = futhark::interpret(src, &args).unwrap();
    for fusion in [true, false] {
        for coalescing in [true, false] {
            for tiling in [true, false] {
                let opts = PipelineOptions {
                    fusion,
                    coalescing,
                    tiling,
                    ..PipelineOptions::default()
                };
                let compiled = Compiler::with_options(opts).compile(src).unwrap();
                let (out, _) = compiled.run(Device::Gtx780, &args).unwrap();
                for (a, b) in out.iter().zip(&baseline) {
                    assert!(a.approx_eq(b, 1e-3), "options {opts:?} changed semantics");
                }
            }
        }
    }
}

#[test]
fn coalescing_reduces_transactions_on_row_traversal() {
    let src = "fun main (n: i64) (m: i64) (xss: [n][m]f32): [n]f32 =\n\
               let sums = map (\\(row: [m]f32) -> reduce (+) 0.0f32 row) xss\n\
               in sums";
    let xss = ArrayVal::new(
        vec![512, 64],
        Buffer::F32((0..512 * 64).map(|i| (i % 9) as f32).collect()),
    );
    let args = vec![Value::i64(512), Value::i64(64), Value::Array(xss)];
    let on = Compiler::new().compile(src).unwrap();
    let off = Compiler::with_options(PipelineOptions {
        coalescing: false,
        ..PipelineOptions::default()
    })
    .compile(src)
    .unwrap();
    let (_, p_on) = on.run(Device::Gtx780, &args).unwrap();
    let (_, p_off) = off.run(Device::Gtx780, &args).unwrap();
    assert!(
        p_off.stats.global_transactions > 4 * p_on.stats.global_transactions,
        "on: {}, off: {}",
        p_on.stats.global_transactions,
        p_off.stats.global_transactions
    );
    assert!(p_off.total_us > p_on.total_us);
}

#[test]
fn tiling_uses_local_memory_and_cuts_traffic() {
    let src = "fun main (nv: i64) (nk: i64) (x: [nv]f32) (kx: [nk]f32): [nv]f32 =\n\
               let out = map (\\(xv: f32) ->\n\
                 loop (acc = 0.0f32) for j < nk do (\n\
                   let k = kx[j]\n\
                   in acc + k * xv)) x\n\
               in out";
    let nv = 2048usize;
    let nk = 256usize;
    let args = vec![
        Value::i64(nv as i64),
        Value::i64(nk as i64),
        Value::Array(ArrayVal::from_f32s(
            (0..nv).map(|i| i as f32 * 0.01).collect(),
        )),
        Value::Array(ArrayVal::from_f32s(
            (0..nk).map(|i| (i % 7) as f32).collect(),
        )),
    ];
    let tiled = Compiler::new().compile(src).unwrap();
    let untiled = Compiler::with_options(PipelineOptions {
        tiling: false,
        ..PipelineOptions::default()
    })
    .compile(src)
    .unwrap();
    let (r1, p1) = tiled.run(Device::Gtx780, &args).unwrap();
    let (r2, p2) = untiled.run(Device::Gtx780, &args).unwrap();
    for (a, b) in r1.iter().zip(&r2) {
        assert!(a.approx_eq(b, 1e-3));
    }
    assert!(
        p1.stats.local_accesses > 0,
        "tiling should stage via local memory"
    );
    assert_eq!(p2.stats.local_accesses, 0);
    assert!(
        p1.stats.bus_bytes < p2.stats.bus_bytes,
        "tiled: {} bytes, untiled: {} bytes",
        p1.stats.bus_bytes,
        p2.stats.bus_bytes
    );
}

#[test]
fn uniqueness_violations_are_rejected_by_the_pipeline() {
    let bad = "fun main (n: i64) (a: *[n]i64): i64 =\n\
               let b = a with [0] <- 1\n\
               let v = a[0]\n\
               in v";
    assert!(matches!(
        Compiler::new().compile(bad),
        Err(futhark::Error::Check(_))
    ));
}

#[test]
fn amd_launch_overhead_shows_in_launch_heavy_programs() {
    // Many tiny kernels: the W8100 profile's higher launch overhead must
    // dominate (the paper's NN explanation).
    let src = "fun main (n: i64) (iters: i64) (xs: [n]f32): [n]f32 =\n\
               let out = loop (cur = xs) for t < iters do (\n\
                 let nxt = map (\\x -> x * 0.999f32 + 0.001f32) cur\n\
                 in nxt)\n\
               in out";
    let args = vec![
        Value::i64(256),
        Value::i64(40),
        Value::Array(ArrayVal::from_f32s(vec![1.0; 256])),
    ];
    let compiled = Compiler::new().compile(src).unwrap();
    let (_, nv) = compiled.run(Device::Gtx780, &args).unwrap();
    let (_, amd) = compiled.run(Device::W8100, &args).unwrap();
    assert!(
        amd.total_us > 2.0 * nv.total_us,
        "AMD {:.1}us vs NV {:.1}us",
        amd.total_us,
        nv.total_us
    );
}

#[test]
fn floored_divmod_pins() {
    // `/` is floored division (round toward negative infinity) and `%` is
    // the matching modulo (result takes the divisor's sign) — NOT Rust's
    // truncating `wrapping_div`/`wrapping_rem`. The differential fuzzer
    // cannot catch a truncating implementation because the interpreter and
    // the simulator share the scalar evaluator, so the concrete results
    // are pinned here in both executors.
    let src = "fun main (n: i64) (xs: [n]i64) (ys: [n]i64): ([n]i64, [n]i64) =\n\
               let q = map (\\(x: i64) (y: i64) -> x / y) xs ys\n\
               let r = map (\\(x: i64) (y: i64) -> x % y) xs ys\n\
               in (q, r)";
    let xs = vec![-7, 7, -7, 7, i64::MIN, i64::MIN, -1, 5];
    let ys = vec![2, -2, -2, 2, -1, 3, 5, -3];
    // Floored quotients and remainders (identity q*y + r == x, wrapping).
    let want_q = vec![-4, -4, 3, 3, i64::MIN, -3074457345618258603, -1, -2];
    let want_r = vec![1, -1, -1, 1, 0, 1, 4, -1];
    let args = vec![
        Value::i64(xs.len() as i64),
        Value::Array(ArrayVal::from_i64s(xs)),
        Value::Array(ArrayVal::from_i64s(ys)),
    ];
    let expect = vec![
        Value::Array(ArrayVal::from_i64s(want_q)),
        Value::Array(ArrayVal::from_i64s(want_r)),
    ];
    let interp = futhark::interpret(src, &args).expect("interprets");
    assert_eq!(
        interp, expect,
        "interpreter disagrees with floored semantics"
    );
    let compiled = Compiler::new().compile(src).expect("compiles");
    for device in [Device::Gtx780, Device::W8100] {
        let (gpu, _) = compiled.run(device, &args).expect("runs");
        assert_eq!(gpu, expect, "{device:?} disagrees with floored semantics");
    }
}

#[test]
fn float_to_int_conversion_edge_cases_pin() {
    // NaN converts to 0; ±inf and out-of-range values saturate to the
    // integer type's bounds — identically in interpreter and simulator.
    let src = "fun main (n: i64) (xs: [n]f64): [n]i64 =\n\
               let out = map (\\x -> i64 x) xs\n\
               in out";
    let xs = vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e300,
        -1e300,
        2.9,
        -2.9,
        -9223372036854775808.0,
    ];
    let want = vec![0, i64::MAX, i64::MIN, i64::MAX, i64::MIN, 2, -2, i64::MIN];
    let args = vec![
        Value::i64(xs.len() as i64),
        Value::Array(ArrayVal::new(vec![8], Buffer::F64(xs))),
    ];
    let expect = vec![Value::Array(ArrayVal::from_i64s(want))];
    let interp = futhark::interpret(src, &args).expect("interprets");
    assert_eq!(interp, expect, "interpreter conversion edge cases");
    let compiled = Compiler::new().compile(src).expect("compiles");
    for device in [Device::Gtx780, Device::W8100] {
        let (gpu, _) = compiled.run(device, &args).expect("runs");
        assert_eq!(gpu, expect, "{device:?} conversion edge cases");
    }
}

//! Parallel work-group execution must be observationally invisible: for
//! any program, running the simulator with N worker threads produces
//! bit-identical `Value` outputs and a bit-identical [`PerfReport`]
//! (counters, per-kernel stats, timeline) to the sequential run. This
//! binary checks that end to end — over every corpus fixture and over a
//! fuzz campaign — by compiling once and running each program at several
//! thread counts via [`Compiled::run_with_threads`].
//!
//! The campaign size defaults to 1000 cases and can be overridden with
//! `FUTHARK_PAR_FUZZ_CASES` (CI smoke uses a smaller value).

use futhark::{Compiled, Compiler, Device, PerfReport};
use futhark_core::Value;
use futhark_fuzz::{corpus, generate, GenConfig};
use std::path::PathBuf;

/// Runs `compiled` with the given worker-thread count, normalising errors
/// to their display strings so faulting programs can be compared too.
fn outcome(
    compiled: &Compiled,
    device: Device,
    args: &[Value],
    threads: usize,
) -> Result<(Vec<Value>, PerfReport), String> {
    compiled
        .run_with_threads(device, args, threads)
        .map_err(|e| e.to_string())
}

fn assert_thread_invariant(label: &str, compiled: &Compiled, args: &[Value]) {
    for device in [Device::Gtx780, Device::W8100] {
        let seq = outcome(compiled, device, args, 1);
        for threads in [2, 4, 8] {
            let par = outcome(compiled, device, args, threads);
            assert_eq!(
                seq, par,
                "{label}: {threads}-thread run differs from sequential on {device:?}"
            );
        }
    }
}

#[test]
fn corpus_is_bit_identical_across_thread_counts() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus dir readable")
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            (path.extension().and_then(|x| x.to_str()) == Some("fut")).then_some(path)
        })
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty());
    for path in fixtures {
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let args = corpus::parse_fixture(&text).expect("fixture header");
        let compiled = match Compiler::new().compile(&text) {
            Ok(c) => c,
            Err(_) => continue, // compile-time faults have no launches to race
        };
        assert_thread_invariant(&path.display().to_string(), &compiled, &args);
    }
}

#[test]
fn fuzz_campaign_is_bit_identical_across_thread_counts() {
    let cases: u64 = std::env::var("FUTHARK_PAR_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let cfg = GenConfig::default();
    let mut compiled_ok = 0u64;
    for seed in 0..cases {
        let case = generate(seed, &cfg);
        let src = case.source();
        let compiled = match Compiler::new().compile(&src) {
            Ok(c) => c,
            Err(_) => continue,
        };
        compiled_ok += 1;
        let args = case.args();
        let devices = [Device::Gtx780, Device::W8100];
        // One device per case keeps the campaign fast; alternate so both
        // profiles see half the cases.
        let device = devices[(seed % 2) as usize];
        let seq = outcome(&compiled, device, &args, 1);
        let par = outcome(&compiled, device, &args, 4);
        assert_eq!(
            seq, par,
            "case seed {seed}: 4-thread run differs from sequential on {device:?}\n{src}"
        );
    }
    assert!(
        compiled_ok > cases / 2,
        "campaign degenerate: only {compiled_ok}/{cases} cases compiled"
    );
}

//! Tests pinning the qualitative claims of the paper's figures and
//! evaluation section — the "shape" the reproduction must preserve.

use futhark::{Compiler, Device, PipelineOptions};
use futhark_core::{ArrayVal, Value};
use futhark_interp::Interpreter;

/// Figure 4: 4a does O(n) work; 4b does O(n·k); both agree with 4c.
#[test]
fn figure4_work_complexity_and_agreement() {
    let srcs = [
        // 4a
        "fun main (n: i64) (k: i64) (ms: [n]i64): [k]i64 =\n\
         let z = replicate k 0\n\
         let c = loop (c = z) for i < n do (\n\
           let cl = ms[i]\n\
           let o = c[cl]\n\
           in c with [cl] <- o + 1)\n\
         in c",
        // 4b
        "fun main (n: i64) (k: i64) (ms: [n]i64): [k]i64 =\n\
         let incr = map (\\(cl: i64) ->\n\
           let e = replicate k 0\n\
           let e[cl] = 1\n\
           in e) ms\n\
         let z = replicate k 0\n\
         let c = reduce (\\(x: [k]i64) (y: [k]i64) -> map (+) x y) z incr\n\
         in c",
        // 4c
        "fun main (n: i64) (k: i64) (ms: [n]i64): [k]i64 =\n\
         let z = replicate k 0\n\
         let c = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
           (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->\n\
             loop (a = acc) for i < chunk do (\n\
               let cl = cs[i]\n\
               let o = a[cl]\n\
               in a with [cl] <- o + 1))\n\
           z ms\n\
         in c",
    ];
    let n = 512i64;
    let k = 64i64;
    let ms: Vec<i64> = (0..n).map(|i| (i * 31 + 7) % k).collect();
    let args = vec![
        Value::i64(n),
        Value::i64(k),
        Value::Array(ArrayVal::from_i64s(ms)),
    ];
    let mut works = Vec::new();
    let mut results = Vec::new();
    for src in &srcs {
        let (prog, _) = futhark_frontend::parse_program(src).unwrap();
        let mut interp = Interpreter::new(&prog);
        results.push(interp.run_main(&args).unwrap());
        works.push(interp.work());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0], results[2]);
    // 4b does at least k/4 times the work of 4a at this size.
    assert!(
        works[1] > works[0] * (k as u64) / 4,
        "4a work {} vs 4b work {}",
        works[0],
        works[1]
    );
    // 4c stays within a small constant of 4a.
    assert!(
        works[2] < works[0] * 8,
        "4c work {} vs 4a {}",
        works[2],
        works[0]
    );
}

/// Figure 10's fusion pipeline: stream_map consumed by a reduce becomes a
/// stream_red (rules F3/F6).
#[test]
fn figure10_stream_fusion_shape() {
    use futhark_core::{Exp, Soac};
    let src = "fun main (n: i64) (xs: [n]i64): i64 =\n\
               let ys = stream_map (\\(chunk: i64) (cs: [chunk]i64) ->\n\
                 map (\\c -> c * 2 + 1) cs) xs\n\
               let s = reduce (+) 0 ys\n\
               in s";
    let (mut prog, mut ns) = futhark_frontend::parse_program(src).unwrap();
    futhark_opt::simplify::simplify_program(&mut prog, &mut ns);
    futhark_opt::fusion::fuse_program(&mut prog, &mut ns);
    let main = prog.main().unwrap();
    assert!(
        main.body
            .stms
            .iter()
            .any(|s| matches!(s.exp, Exp::Soac(Soac::StreamRed { .. }))),
        "expected stream_red after fusion:\n{main}"
    );
    // Semantics preserved end-to-end.
    let args = vec![
        Value::i64(9),
        Value::Array(ArrayVal::from_i64s((0..9).collect())),
    ];
    let compiled = Compiler::new()
        .compile(src)
        .expect("compiles through full pipeline");
    let (gpu, _) = compiled.run(Device::Gtx780, &args).unwrap();
    assert_eq!(gpu, vec![Value::i64((0..9).map(|x| 2 * x + 1).sum())]);
}

/// Figure 11's headline: an imperfect nest (map over map + loop-of-map)
/// becomes perfect nests with the loop interchanged to the top (G7).
#[test]
fn figure11_interchange_to_top_level() {
    use futhark_core::Exp;
    let src = "fun main (m: i64) (nn: i64) (pss: [m][m]i64): [m]i64 =\n\
               let bss = map (\\(ps: [m]i64) ->\n\
                 let ws = loop (ws = ps) for i < nn do (\n\
                   let ws2 = map (\\w -> w * 2 + 1) ws\n\
                   in ws2)\n\
                 let s = reduce (+) 0 ws\n\
                 in s) pss\n\
               in bss";
    let (mut prog, mut ns) = futhark_frontend::parse_program(src).unwrap();
    futhark_opt::simplify::simplify_program(&mut prog, &mut ns);
    futhark_opt::fusion::fuse_program(&mut prog, &mut ns);
    futhark_opt::flatten::flatten_program(&mut prog, &mut ns);
    let main = prog.main().unwrap();
    assert!(
        main.body
            .stms
            .iter()
            .any(|s| matches!(s.exp, Exp::Loop { .. })),
        "loop should be interchanged to the top level:\n{main}"
    );
    // And the whole thing still computes correctly on the GPU.
    let args = vec![
        Value::i64(4),
        Value::i64(3),
        Value::Array(ArrayVal::new(
            vec![4, 4],
            futhark_core::Buffer::I64((0..16).collect()),
        )),
    ];
    let compiled = Compiler::new().compile(src).unwrap();
    let (gpu, _) = compiled.run(Device::Gtx780, &args).unwrap();
    let interp = futhark::interpret(src, &args).unwrap();
    assert_eq!(gpu, interp);
}

/// Section 6.1.1's coalescing claim, as a counted (not timed) property:
/// disabling the transposition multiplies memory transactions.
#[test]
fn coalescing_transaction_counts() {
    let src = "fun main (n: i64) (m: i64) (xss: [n][m]f32): [n]f32 =\n\
               let s = map (\\(row: [m]f32) -> reduce (+) 0.0f32 row) xss\n\
               in s";
    let xss = ArrayVal::new(
        vec![1024, 32],
        futhark_core::Buffer::F32((0..1024 * 32).map(|i| (i % 11) as f32).collect()),
    );
    let args = vec![Value::i64(1024), Value::i64(32), Value::Array(xss)];
    let run = |coalescing: bool| {
        let compiled = Compiler::with_options(PipelineOptions {
            coalescing,
            ..PipelineOptions::default()
        })
        .compile(src)
        .unwrap();
        compiled.run(Device::Gtx780, &args).unwrap().1
    };
    let on = run(true);
    let off = run(false);
    let factor = off.stats.global_transactions as f64 / on.stats.global_transactions as f64;
    assert!(
        factor > 5.0,
        "coalescing cut transactions only {factor:.1}x (paper reports order-of-magnitude effects)"
    );
}

/// Paper-shape pins for Table 1 / Figure 13, from the actual harness:
/// Futhark wins and loses where the paper says it does.
#[test]
fn table1_shape_pins() {
    let get = |name: &str| futhark_bench::benchmark(name).unwrap();
    // Futhark wins on NN, Backprop, Myocyte, N-body on the NVIDIA profile.
    for name in ["NN", "Backprop", "Myocyte", "N-body"] {
        let b = get(name);
        let fut = b.run_futhark(Device::Gtx780).unwrap().total_ms();
        let rf = b.run_reference(Device::Gtx780).unwrap();
        assert!(
            rf / fut > 1.2,
            "{name}: expected a Futhark win, got {:.2}x",
            rf / fut
        );
    }
    // Futhark loses on CFD, HotSpot, LavaMD, LocVolCalib on NVIDIA — the
    // paper's "4 out of 12" slower set.
    for name in ["CFD", "HotSpot", "LavaMD", "LocVolCalib"] {
        let b = get(name);
        let fut = b.run_futhark(Device::Gtx780).unwrap().total_ms();
        let rf = b.run_reference(Device::Gtx780).unwrap();
        assert!(
            rf / fut < 1.0,
            "{name}: expected a Futhark loss, got {:.2}x",
            rf / fut
        );
    }
    // NN's speedup is smaller on AMD than NVIDIA (launch overheads).
    let nn = get("NN");
    let nv = nn.run_reference(Device::Gtx780).unwrap()
        / nn.run_futhark(Device::Gtx780).unwrap().total_ms();
    let amd = nn.run_reference(Device::W8100).unwrap()
        / nn.run_futhark(Device::W8100).unwrap().total_ms();
    assert!(nv > amd, "NN: NV {nv:.2}x should exceed AMD {amd:.2}x");
}

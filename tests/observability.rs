//! Observability integration tests: pass-level tracing, the execution
//! timeline, and the futhark-prof trace serialisation.

use futhark::{prof, Compiler, Device, PerfReport, PipelineOptions, TimelineEvent};
use futhark_core::{ArrayVal, Value};
use futhark_gpu::sim::KernelStats;
use std::collections::BTreeMap;

/// The quick-start program: a map feeding a reduce, which fusion turns
/// into a single redomap.
const QUICKSTART: &str = "fun main (n: i64) (xs: [n]f32): f32 =\n\
                          let ys = map (\\x -> x * x) xs\n\
                          let s = reduce (+) 0.0f32 ys\n\
                          in s";

fn quickstart_args(n: usize) -> Vec<Value> {
    vec![
        Value::i64(n as i64),
        Value::Array(ArrayVal::from_f32s(
            (0..n).map(|i| (i % 13) as f32).collect(),
        )),
    ]
}

#[test]
fn trace_covers_enabled_phases_with_nonzero_sizes() {
    let compiled = Compiler::new()
        .with_trace()
        .compile(QUICKSTART)
        .expect("compiles");
    let report = compiled.report().expect("with_trace attaches a report");
    let names: Vec<&str> = report.passes.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "parse",
            "check",
            "inline",
            "simplify",
            "fusion",
            "flatten",
            "simplify-post",
            "codegen",
            "memplan"
        ]
    );
    for p in &report.passes {
        assert!(
            p.after.statements > 0,
            "pass {} left an empty program",
            p.name
        );
        assert!(p.wall_us >= 0.0);
    }
    assert_eq!(report.pass("parse").unwrap().before.statements, 0);
    assert!(
        report.pass("codegen").unwrap().after.kernels >= 1,
        "codegen should report extracted kernels"
    );
    assert!(
        report.counter("codegen.kernels_extracted") >= 1,
        "kernel extraction should be counted"
    );

    // Disabled phases produce no spans, and untraced compilation no report.
    let plain = Compiler::with_options(PipelineOptions {
        simplify: false,
        fusion: false,
        ..PipelineOptions::default()
    })
    .with_trace()
    .compile(QUICKSTART)
    .expect("compiles");
    let plain_report = plain.report().unwrap();
    assert!(plain_report.pass("fusion").is_none());
    assert!(plain_report.pass("simplify").is_none());
    assert!(Compiler::new()
        .compile(QUICKSTART)
        .expect("compiles")
        .report()
        .is_none());
}

#[test]
fn fusion_event_fires_and_reduces_launches_and_traffic() {
    let on = Compiler::new()
        .with_trace()
        .compile(QUICKSTART)
        .expect("compiles");
    let fusion_events: u64 = on
        .report()
        .unwrap()
        .all_counters()
        .iter()
        .filter(|(k, _)| k.starts_with("fusion."))
        .map(|(_, v)| v)
        .sum();
    assert!(fusion_events > 0, "fusing map|>reduce must fire a rule");

    let off = Compiler::with_options(PipelineOptions {
        fusion: false,
        ..PipelineOptions::default()
    })
    .with_trace()
    .compile(QUICKSTART)
    .expect("compiles");
    assert_eq!(
        off.report()
            .unwrap()
            .all_counters()
            .iter()
            .filter(|(k, _)| k.starts_with("fusion."))
            .count(),
        0
    );

    let args = quickstart_args(4096);
    let (out_on, perf_on) = on.run(Device::Gtx780, &args).expect("runs");
    let (out_off, perf_off) = off.run(Device::Gtx780, &args).expect("runs");
    assert_eq!(out_on, out_off, "fusion must not change the result");
    assert!(
        perf_on.launches < perf_off.launches,
        "fusion should save launches: on={} off={}",
        perf_on.launches,
        perf_off.launches
    );
    assert!(
        perf_on.stats.bus_bytes < perf_off.stats.bus_bytes,
        "fusion should save memory traffic: on={} off={}",
        perf_on.stats.bus_bytes,
        perf_off.stats.bus_bytes
    );
}

/// A program exercising every timeline event class: kernels, device ops
/// (replicate + coalescing transpose), and a host sync (scalar read).
const NESTED: &str = "fun main (n: i64) (m: i64) (xss: [n][m]f32): f32 =\n\
                      let sums = map (\\(row: [m]f32) -> reduce (+) 0.0f32 row) xss\n\
                      let total = reduce (+) 0.0f32 sums\n\
                      in total";

fn nested_perf() -> PerfReport {
    let n = 64usize;
    let m = 32usize;
    let data: Vec<f32> = (0..n * m).map(|i| (i % 9) as f32).collect();
    let compiled = Compiler::new()
        .with_trace()
        .compile(NESTED)
        .expect("compiles");
    let (_, perf) = compiled
        .run(
            Device::Gtx780,
            &[
                Value::i64(n as i64),
                Value::i64(m as i64),
                Value::Array(ArrayVal::new(vec![n, m], futhark_core::Buffer::F32(data))),
            ],
        )
        .expect("runs");
    perf
}

#[test]
fn timeline_aggregates_to_perf_report_totals() {
    let perf = nested_perf();
    assert!(!perf.timeline.is_empty());

    let sum: f64 = perf.timeline.iter().map(TimelineEvent::us).sum();
    assert!(
        (sum - perf.total_us).abs() <= 1e-9 * perf.total_us.max(1.0),
        "timeline sums to {sum}, report says {}",
        perf.total_us
    );

    let mut kernel_us = 0.0;
    let mut device_op_us = 0.0;
    let mut fallback_us = 0.0;
    let mut launches = 0u64;
    let mut transposes = 0u64;
    let mut agg = KernelStats::default();
    let mut per_kernel: BTreeMap<String, (u64, f64, KernelStats)> = BTreeMap::new();
    for e in &perf.timeline {
        match e {
            TimelineEvent::Launch(l) => {
                kernel_us += l.us;
                launches += 1;
                agg.merge(&l.stats);
                let entry = per_kernel.entry(l.kernel.clone()).or_default();
                entry.0 += 1;
                entry.1 += l.us;
                entry.2.merge(&l.stats);
                assert_eq!(l.num_groups, l.num_threads.div_ceil(l.group_size));
            }
            TimelineEvent::DeviceOp { what, us, .. } => {
                device_op_us += us;
                if what == "transpose" {
                    transposes += 1;
                }
            }
            TimelineEvent::Fallback { us, .. } => fallback_us += us,
            TimelineEvent::Sync { .. } => {}
            TimelineEvent::Mem(_) => {
                assert_eq!(e.us(), 0.0, "memory events are instantaneous");
            }
        }
    }
    assert!((kernel_us - perf.kernel_us).abs() <= 1e-9 * perf.kernel_us.max(1.0));
    assert!((device_op_us - perf.device_op_us).abs() <= 1e-9 * perf.device_op_us.max(1.0));
    assert!((fallback_us - perf.fallback_us).abs() <= 1e-9 * perf.fallback_us.max(1.0));
    assert_eq!(launches, perf.launches);
    assert_eq!(
        transposes, perf.transposes,
        "coalescing transposes appear as device ops"
    );
    assert_eq!(agg, perf.stats, "aggregated stats equal the per-launch sum");
    assert_eq!(per_kernel.len(), perf.per_kernel.len());
    for (name, (l, us, stats)) in &per_kernel {
        let (rl, rus, rstats) = &perf.per_kernel[name];
        assert_eq!(l, rl);
        assert!((us - rus).abs() <= 1e-9 * rus.max(1.0));
        assert_eq!(stats, rstats);
    }

    // The hottest-first ordering is total-time descending.
    let by_time = perf.kernels_by_time();
    for w in by_time.windows(2) {
        assert!(w[0].1 .1 >= w[1].1 .1);
    }
}

#[test]
fn trace_round_trips_through_json() {
    let compiled = Compiler::new()
        .with_trace()
        .compile(QUICKSTART)
        .expect("compiles");
    let (_, perf) = compiled
        .run(Device::Gtx780, &quickstart_args(1024))
        .expect("runs");

    let doc = prof::trace_json(compiled.report(), &perf);
    let text = doc.render_pretty();
    let parsed = futhark::Json::parse(&text).expect("parses");
    let (compile_back, run_back) = prof::trace_from_json(&parsed).expect("decodes");
    assert_eq!(compile_back.as_ref(), compiled.report());
    assert_eq!(run_back, perf);

    // Without with_trace the compile half is null and still round-trips.
    let doc = prof::trace_json(None, &perf);
    let (none_back, run_back) =
        prof::trace_from_json(&futhark::Json::parse(&doc.render()).expect("parses"))
            .expect("decodes");
    assert!(none_back.is_none());
    assert_eq!(run_back, perf);
}

#[test]
fn prof_render_shows_kernels_passes_and_counters() {
    let compiled = Compiler::new()
        .with_trace()
        .compile(QUICKSTART)
        .expect("compiles");
    let (_, perf) = compiled
        .run(Device::Gtx780, &quickstart_args(1024))
        .expect("runs");
    let text = prof::render(compiled.report(), &perf);
    assert!(text.contains("== futhark-prof =="));
    assert!(text.contains("coalesce"), "kernel table header present");
    assert!(text.contains("codegen"), "pass breakdown present");
    assert!(
        text.contains("rewrite counters:"),
        "counter section present"
    );
    let (hottest, _) = perf.kernels_by_time()[0];
    assert!(text.contains(hottest), "hottest kernel listed");
}

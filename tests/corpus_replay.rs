//! Replays every fixture in `tests/corpus/` through the differential
//! oracle. Fixtures are self-contained `.fut` files whose `-- input:`
//! header comments carry the arguments (see `futhark_fuzz::corpus`);
//! most are minimal reproducers the fuzzer shrank from past divergences,
//! plus a few hand-written regression anchors. A fixture passes when the
//! interpreter and the simulator agree bit for bit on both devices under
//! the whole ablation matrix — i.e. the bug it once witnessed stays
//! fixed.

use futhark_fuzz::{check_source, corpus};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_fixtures_stay_clean() {
    let dir = corpus_dir();
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} unreadable: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            (path.extension().and_then(|x| x.to_str()) == Some("fut")).then_some(path)
        })
        .collect();
    fixtures.sort();
    assert!(
        !fixtures.is_empty(),
        "no .fut fixtures in {}",
        dir.display()
    );
    for path in fixtures {
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let args = corpus::parse_fixture(&text)
            .unwrap_or_else(|e| panic!("{}: bad fixture header: {e}", path.display()));
        // The whole file is the program: the header lines are comments.
        if let Some(failure) = check_source(&text, &args).describe() {
            panic!("{}: {failure}", path.display());
        }
    }
}

//! Memory-planning integration tests: liveness-driven buffer reuse cuts
//! the peak device footprint, the double-buffered loop pattern loses its
//! per-iteration copies, planning never changes results, and exhausting
//! a device's global memory is a structured error rather than a panic.

use futhark::{
    Compiler, Device, Error, ExecError, PerfReport, PipelineOptions, SimError, TimelineEvent,
};
use futhark_core::{ArrayVal, Value};
use futhark_gpu::DeviceProfile;

/// A chain of maps and scans: the scans block full fusion, so the chain
/// keeps several same-sized intermediate arrays whose lifetimes do not
/// overlap — exactly what liveness-driven reuse exploits.
const SCAN_CHAIN: &str = "fun main (n: i64) (xs: [n]i64): i64 =\n\
                          let a = map (\\x -> x * 3 + 1) xs\n\
                          let b = scan (+) 0 a\n\
                          let c = map (\\x -> x - 7) b\n\
                          let d = scan (+) 0 c\n\
                          let e = map (\\x -> x / 2) d\n\
                          let s = reduce (+) 0 e\n\
                          in s";

/// The double-buffering pattern: each iteration copies the loop-carried
/// array and scatters into the copy.
const DOUBLE_BUFFER: &str = "fun main (n: i64) (iters: i64) (xs: [n]i64): [n]i64 =\n\
                             let r = loop (cur = xs) for i < iters do (\n\
                               let buf = copy cur\n\
                               let is = map (\\x -> (x + i) % n) cur\n\
                               let vs = map (\\x -> x + 1) cur\n\
                               let next = scatter buf is vs\n\
                               in next)\n\
                             in r";

fn i64_args(n: usize) -> Vec<Value> {
    vec![
        Value::i64(n as i64),
        Value::Array(ArrayVal::from_i64s(
            (0..n as i64).map(|i| i * 5 % 131).collect(),
        )),
    ]
}

fn run_with(src: &str, opts: PipelineOptions, args: &[Value]) -> (Vec<Value>, PerfReport) {
    Compiler::with_options(opts)
        .compile(src)
        .expect("compiles")
        .run(Device::Gtx780, args)
        .expect("runs")
}

fn no_memplan() -> PipelineOptions {
    PipelineOptions {
        memplan: false,
        ..PipelineOptions::default()
    }
}

fn interp(src: &str, args: &[Value]) -> Vec<Value> {
    let (prog, _) = futhark_frontend::parse_program(src).expect("parses");
    futhark_interp::Interpreter::new(&prog)
        .run_main(args)
        .expect("interprets")
}

/// Planning frees each intermediate at its last use and services the
/// next allocation from the free list, so the peak footprint of the
/// map/scan chain drops by at least 30% — with bit-identical results.
#[test]
fn planning_cuts_peak_footprint_by_thirty_percent() {
    let args = i64_args(4096);
    let (out_on, perf_on) = run_with(SCAN_CHAIN, PipelineOptions::default(), &args);
    let (out_off, perf_off) = run_with(SCAN_CHAIN, no_memplan(), &args);
    assert_eq!(out_on, out_off, "planning must not change results");
    assert_eq!(out_on, interp(SCAN_CHAIN, &args));
    let (on, off) = (perf_on.mem.peak_bytes, perf_off.mem.peak_bytes);
    assert!(
        on * 10 <= off * 7,
        "peak bytes should drop >= 30%: on={on} off={off}"
    );
    assert!(perf_on.mem.frees > 0, "planning inserts frees");
    assert!(perf_on.mem.reuses > 0, "freed buffers get reused");
    assert_eq!(perf_off.mem.frees, 0, "without planning nothing is freed");
    assert_eq!(perf_off.mem.reuses, 0);
    assert!(perf_on.mem.allocs > 0 && perf_on.mem.peak_bytes > 0);
    assert!(
        perf_on.mem.live_bytes <= perf_off.mem.live_bytes,
        "planning never leaves more live at the end: on={} off={}",
        perf_on.mem.live_bytes,
        perf_off.mem.live_bytes
    );
}

/// The double-buffered loop: copy elision removes every per-iteration
/// `copy` device op, the rotate steal keeps at most one `init_copy`
/// (the first iteration seeds the second buffer), and the values stay
/// bit-identical to the interpreter and the unplanned pipeline.
#[test]
fn double_buffered_loop_drops_per_iteration_copies() {
    let n = 64usize;
    let iters = 10i64;
    let args = vec![
        Value::i64(n as i64),
        Value::i64(iters),
        Value::Array(ArrayVal::from_i64s((0..n as i64).map(|i| i * 3).collect())),
    ];
    let (out_on, perf_on) = run_with(DOUBLE_BUFFER, PipelineOptions::default(), &args);
    let (out_off, perf_off) = run_with(DOUBLE_BUFFER, no_memplan(), &args);
    assert_eq!(out_on, out_off, "planning must not change results");
    assert_eq!(out_on, interp(DOUBLE_BUFFER, &args));

    let count_op = |perf: &PerfReport, name: &str| {
        perf.timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::DeviceOp { what, .. } if what == name))
            .count()
    };
    assert_eq!(
        count_op(&perf_on, "copy"),
        0,
        "the explicit copy must be elided"
    );
    assert!(
        count_op(&perf_on, "init_copy") <= 1,
        "rotation leaves at most the seeding copy"
    );
    assert!(
        count_op(&perf_off, "copy") >= iters as usize,
        "without planning every iteration copies"
    );
    assert!(perf_on.mem.frees > 0, "rotation frees the dead buffer");
    assert!(perf_on.mem.reuses > 0, "iterations steal the dead buffer");
    assert!(
        perf_on.mem.peak_bytes < perf_off.mem.peak_bytes,
        "double buffering caps the footprint: on={} off={}",
        perf_on.mem.peak_bytes,
        perf_off.mem.peak_bytes
    );
}

/// Every ablation-matrix configuration (including planning off) agrees
/// bit for bit on both fixtures above.
#[test]
fn whole_matrix_is_bit_identical_on_memplan_fixtures() {
    for (src, args) in [
        (SCAN_CHAIN, i64_args(257)),
        (
            DOUBLE_BUFFER,
            vec![
                Value::i64(17),
                Value::i64(6),
                Value::Array(ArrayVal::from_i64s((0..17).map(|i| i * 11 % 23).collect())),
            ],
        ),
    ] {
        let reference = interp(src, &args);
        for opts in PipelineOptions::ablation_matrix() {
            let (out, _) = run_with(src, opts, &args);
            assert_eq!(out, reference, "config {} diverged on\n{src}", opts.label());
        }
    }
}

/// A deliberately undersized device yields a structured
/// [`SimError::OutOfMemory`] — never a panic or unbounded host growth —
/// while the same program fits comfortably on a real profile.
#[test]
fn undersized_device_reports_out_of_memory() {
    let args = i64_args(4096);
    let compiled = Compiler::new().compile(SCAN_CHAIN).expect("compiles");

    let mut tiny = DeviceProfile::gtx780();
    tiny.name = "gtx780-tiny".into();
    tiny.global_mem_bytes = 8 * 1024; // two i64 arrays of 4096 do not fit
    match compiled.run_on(&tiny, &args) {
        Err(Error::Exec(ExecError::Sim(SimError::OutOfMemory {
            requested,
            live,
            capacity,
        }))) => {
            assert_eq!(capacity, 8 * 1024);
            assert!(requested > 0);
            assert!(live + requested > capacity);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }

    let (out, _) = compiled
        .run_on(&DeviceProfile::gtx780(), &args)
        .expect("fits on the real profile");
    assert_eq!(out, interp(SCAN_CHAIN, &args));
}

// ---------------------------------------------------------------------------
// Static peak prediction (admission control)
// ---------------------------------------------------------------------------

/// `predict_peak_bytes` is a lower bound on the measured peak across all
/// sixteen paper benchmarks: the daemon's admission control may reject a
/// job only when even its optimistic footprint cannot fit, so the
/// prediction must never exceed what a run actually uses — and it must
/// be non-trivial (at least the uploaded input bytes).
#[test]
fn predicted_peak_is_a_nontrivial_lower_bound_on_all_benchmarks() {
    let profile = Device::Gtx780.profile();
    for b in futhark_bench::all_benchmarks() {
        let compiled = b
            .compile(PipelineOptions::default())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", b.name));
        let (_, perf) = compiled
            .run(Device::Gtx780, &b.small_args)
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", b.name));
        let pred = futhark_gpu::predict_peak_bytes(&compiled.plan, &profile, &b.small_args);
        let input_bytes: u64 = b
            .small_args
            .iter()
            .map(|v| match v {
                Value::Array(a) => (a.data.len() * a.elem_type().byte_size()) as u64,
                _ => 0,
            })
            .sum();
        assert!(
            pred.peak_bytes <= perf.mem.peak_bytes,
            "{}: predicted {} exceeds measured peak {} (prediction must be \
             a lower bound)",
            b.name,
            pred.peak_bytes,
            perf.mem.peak_bytes
        );
        assert!(
            pred.peak_bytes >= input_bytes,
            "{}: predicted {} below the {} input bytes the run must upload",
            b.name,
            pred.peak_bytes,
            input_bytes
        );
    }
}

/// A straight-line program with fully known sizes predicts exactly: the
/// abstract walk sees every allocation the executor performs, so the
/// prediction equals the measured peak, and the `exact` flag says so.
#[test]
fn straight_line_prediction_is_exact() {
    let args = i64_args(4096);
    let compiled = Compiler::new().compile(SCAN_CHAIN).expect("compiles");
    let (_, perf) = compiled
        .run(Device::Gtx780, &args)
        .expect("runs on the default profile");
    let pred = futhark_gpu::predict_peak_bytes(&compiled.plan, &Device::Gtx780.profile(), &args);
    assert!(
        pred.exact,
        "no loops or unknowns — prediction should be exact"
    );
    assert_eq!(
        pred.peak_bytes, perf.mem.peak_bytes,
        "exact prediction must equal the measured peak"
    );
}

/// The admission-control scenario: a job whose predicted footprint alone
/// exceeds the device's capacity is detectable *before* execution — the
/// prediction for a huge `replicate` crosses `global_mem_bytes` while
/// actually running it would OOM mid-flight.
#[test]
fn prediction_flags_over_capacity_jobs_before_execution() {
    const HUGE: &str = "fun main (n: i64): [n]i64 = replicate n 7";
    let compiled = Compiler::new().compile(HUGE).expect("compiles");
    let profile = Device::Gtx780.profile();
    let n = 1i64 << 30; // 8 GiB of i64s vs a 3 GiB device
    let pred = futhark_gpu::predict_peak_bytes(&compiled.plan, &profile, &[Value::i64(n)]);
    assert!(
        pred.peak_bytes > profile.global_mem_bytes,
        "predicted {} should exceed capacity {}",
        pred.peak_bytes,
        profile.global_mem_bytes
    );
    // And a small instance of the same program is admissible and runs.
    let small = futhark_gpu::predict_peak_bytes(&compiled.plan, &profile, &[Value::i64(64)]);
    assert!(small.peak_bytes <= profile.global_mem_bytes);
    compiled
        .run(Device::Gtx780, &[Value::i64(64)])
        .expect("small instance runs");
}

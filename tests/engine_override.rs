//! Regression suite for the process-global-state bugs a long-lived
//! daemon exposed: `FUTHARK_SIM_ENGINE` and `FUTHARK_SIM_THREADS` used to
//! be latched in `OnceLock`s, so the first launch in a process pinned the
//! engine and host thread count forever — per-request `RunOptions`
//! overrides silently lost. These tests run lane-then-warp (and differing
//! thread counts) *in one process* and demand that every request gets the
//! configuration it asked for, with bit-identical results throughout.
//!
//! The uniform-path tallies double as the engine witness: only the warp
//! engine takes uniform fast-path decisions, so a run that reports
//! `uniform_hits + uniform_misses > 0` provably executed on the warp
//! engine, and a zero-tally run on a divergence-bearing program provably
//! did not. (Under the latched `OnceLock`, every run after the first
//! reported the first run's engine behaviour.)

use futhark::{Compiler, Device, PerfReport, RunOptions, SimEngine};
use futhark_core::{ArrayVal, Value};

/// A program with both a data-dependent branch and enough parallelism to
/// span several work-groups: divergence points exist (so the warp engine
/// records uniform-path decisions) and multi-threaded group execution has
/// real work to split.
const SRC: &str = "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
                   map (\\(x: i64) -> if x % 3 == 0 then x * 2 else x - 1) xs";

fn compile_and_args() -> (futhark::Compiled, Vec<Value>) {
    let n = 4096i64;
    let xs: Vec<i64> = (0..n).map(|i| i * 7 % 1001).collect();
    let compiled = Compiler::new().compile(SRC).expect("compiles");
    (
        compiled,
        vec![Value::i64(n), Value::Array(ArrayVal::from_i64s(xs))],
    )
}

fn run(
    compiled: &futhark::Compiled,
    args: &[Value],
    engine: SimEngine,
    threads: usize,
) -> (Vec<Value>, PerfReport) {
    let opts = RunOptions {
        threads,
        profile: false,
        engine,
    };
    compiled
        .run_with_opts(Device::Gtx780, args, opts)
        .expect("runs")
}

/// Lane first, then warp, then lane again — in one process. Before the
/// fix, the first run latched the engine: the second run would have
/// executed on the lane engine too and reported zero uniform decisions.
#[test]
fn engine_overrides_win_per_request_lane_then_warp() {
    let (compiled, args) = compile_and_args();

    let (lane_vals, lane_perf) = run(&compiled, &args, SimEngine::Lane, 1);
    assert_eq!(
        lane_perf.uniform_hits + lane_perf.uniform_misses,
        0,
        "lane engine must not report warp uniform-path decisions"
    );

    let (warp_vals, warp_perf) = run(&compiled, &args, SimEngine::Warp, 1);
    assert!(
        warp_perf.uniform_hits + warp_perf.uniform_misses > 0,
        "warp engine run recorded no uniform-path decisions — the lane \
         engine from the previous request leaked into this one"
    );

    // And back: the warp run must not have latched warp for later requests.
    let (lane2_vals, lane2_perf) = run(&compiled, &args, SimEngine::Lane, 1);
    assert_eq!(lane2_perf.uniform_hits + lane2_perf.uniform_misses, 0);

    // Observational equivalence across all three runs.
    assert_eq!(lane_vals, warp_vals);
    assert_eq!(lane_vals, lane2_vals);
    assert_eq!(lane_perf.stats, warp_perf.stats);
    assert_eq!(lane_perf.stats, lane2_perf.stats);
}

/// Differing thread counts in one process: every request's `threads`
/// setting must be honoured (before the fix the first request's count was
/// pinned), and results stay bit-identical regardless.
#[test]
fn thread_count_overrides_win_per_request() {
    let (compiled, args) = compile_and_args();
    let (base_vals, base_perf) = run(&compiled, &args, SimEngine::Warp, 1);
    for threads in [2, 4, 3, 1] {
        let (vals, perf) = run(&compiled, &args, SimEngine::Warp, threads);
        assert_eq!(vals, base_vals, "threads={threads} changed outputs");
        assert_eq!(
            perf, base_perf,
            "threads={threads} perturbed the report — group scheduling \
             must be observationally invisible"
        );
    }
}

/// Uniform-path tallies are per-run values: two identical warp runs report
/// identical tallies, and runs do not accumulate into each other (the old
/// process-wide atomics only ever grew).
#[test]
fn uniform_tallies_are_per_run_not_cumulative() {
    let (compiled, args) = compile_and_args();
    let (_, first) = run(&compiled, &args, SimEngine::Warp, 1);
    let (_, second) = run(&compiled, &args, SimEngine::Warp, 1);
    assert!(first.uniform_hits + first.uniform_misses > 0);
    assert_eq!(first.uniform_hits, second.uniform_hits);
    assert_eq!(first.uniform_misses, second.uniform_misses);
}

//! The warp execution engine must be observationally identical to the
//! per-lane reference engine: for any program, outputs, faults, and every
//! [`KernelStats`] counter are bit-identical between the two. This suite
//! checks that end to end over every corpus fixture, and then pins the
//! divergence machinery directly at the launch level: all-lanes-diverge
//! branch trees, a single active lane in a full grid, alternating masks,
//! partial warps and fully inactive warps at the grid tail, per-lane loop
//! trip counts, and identical fault reporting. The masked-lane tests
//! verify that inactive lanes never write registers, memory, or counters.

use futhark::{Compiled, Compiler, Device, PerfReport, RunOptions, SimEngine};
use futhark_core::{Buffer, CmpOp, Scalar, ScalarType, Value};
use futhark_fuzz::corpus;
use futhark_gpu::kernel::{KExp, KParam, KStm, Kernel};
use futhark_gpu::sim::{Arg, DeviceMemory, KernelStats};
use futhark_gpu::{launch_decoded_with, DecodedKernel, DeviceProfile, LaunchOpts};
use std::path::PathBuf;

/// Runs `compiled` on the given engine, normalising errors to display
/// strings so faulting programs can be compared too. The uniform-path
/// tallies are zeroed before comparison: they count warp-engine fast-path
/// decisions, so they are engine-dependent *by design* (the lane engine
/// always reports zero) and excluded from the bit-identity contract, which
/// covers outputs, faults, and every [`futhark::KernelStats`] counter.
fn outcome(
    compiled: &Compiled,
    device: Device,
    args: &[Value],
    engine: SimEngine,
) -> Result<(Vec<Value>, PerfReport), String> {
    let opts = RunOptions {
        engine,
        ..RunOptions::default()
    };
    compiled
        .run_with_opts(device, args, opts)
        .map(|(vals, mut perf)| {
            perf.uniform_hits = 0;
            perf.uniform_misses = 0;
            (vals, perf)
        })
        .map_err(|e| e.to_string())
}

#[test]
fn corpus_is_bit_identical_across_engines() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus dir readable")
        .filter_map(|entry| {
            let path = entry.expect("dir entry").path();
            (path.extension().and_then(|x| x.to_str()) == Some("fut")).then_some(path)
        })
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty());
    for path in fixtures {
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let args = corpus::parse_fixture(&text).expect("fixture header");
        let compiled = match Compiler::new().compile(&text) {
            Ok(c) => c,
            Err(_) => continue, // compile-time faults have no launches to compare
        };
        for device in [Device::Gtx780, Device::W8100] {
            let warp = outcome(&compiled, device, &args, SimEngine::Warp);
            let lane = outcome(&compiled, device, &args, SimEngine::Lane);
            assert_eq!(
                warp,
                lane,
                "{}: warp engine diverged from per-lane on {device:?}",
                path.display()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Launch-level divergence stress: hand-built kernels exercising specific
// mask shapes, run on both engines with fresh memory each time.
// ---------------------------------------------------------------------------

/// `a < b` on i64 kernel expressions.
fn lt(a: KExp, b: KExp) -> KExp {
    KExp::Cmp(CmpOp::Lt, Box::new(a), Box::new(b))
}

/// `a == b` on i64 kernel expressions.
fn eq(a: KExp, b: KExp) -> KExp {
    KExp::Cmp(CmpOp::Eq, Box::new(a), Box::new(b))
}

/// Runs one launch of `kernel` on the given engine against fresh device
/// memory and returns the stats plus the final contents of every buffer
/// argument.
fn run_launch(
    kernel: &Kernel,
    num_threads: u64,
    setup: &dyn Fn(&mut DeviceMemory) -> Vec<Arg>,
    engine: SimEngine,
) -> Result<(KernelStats, Vec<Buffer>), String> {
    let device = DeviceProfile::gtx780();
    let dk = DecodedKernel::decode(kernel).expect("decode");
    let mut mem = DeviceMemory::new();
    let args = setup(&mut mem);
    let opts = LaunchOpts {
        threads: 1,
        profile: false,
        engine,
    };
    let stats = launch_decoded_with(&device, &dk, num_threads, &args, &mut mem, opts)
        .map_err(|e| e.to_string())?
        .stats;
    let bufs = args
        .iter()
        .filter_map(|a| match a {
            Arg::Buffer(id) => Some(mem.download(*id).expect("download").clone()),
            _ => None,
        })
        .collect();
    Ok((stats, bufs))
}

/// Runs the kernel on both engines and asserts bit-identical stats,
/// buffers, and faults; returns the (shared) warp-engine observation.
fn engines_agree(
    label: &str,
    kernel: &Kernel,
    num_threads: u64,
    setup: &dyn Fn(&mut DeviceMemory) -> Vec<Arg>,
) -> Result<(KernelStats, Vec<Buffer>), String> {
    let warp = run_launch(kernel, num_threads, setup, SimEngine::Warp);
    let lane = run_launch(kernel, num_threads, setup, SimEngine::Lane);
    assert_eq!(warp, lane, "{label}: warp engine diverged from per-lane");
    warp
}

/// Uploads `n` copies of `fill` as an i64 buffer.
fn sentinel_buf(mem: &mut DeviceMemory, n: usize, fill: i64) -> Arg {
    Arg::Buffer(mem.upload(Buffer::I64(vec![fill; n])).expect("in capacity"))
}

fn i64s(buf: &Buffer) -> &[i64] {
    match buf {
        Buffer::I64(v) => v,
        other => panic!("expected i64 buffer, found {other:?}"),
    }
}

/// Every warp fully diverges: a two-level branch tree on lane-id residues
/// sends each lane down one of four paths, each writing a different
/// function of the lane id.
#[test]
fn all_lanes_diverge() {
    let n = 300usize;
    let path = |v: i64| KStm::GlobalWrite {
        buf: 0,
        index: KExp::GlobalId,
        value: KExp::GlobalId.mul(KExp::i64(v)).add(KExp::i64(v)),
    };
    let kernel = Kernel {
        name: "diverge4".into(),
        params: vec![
            KParam::Buffer(ScalarType::I64),
            KParam::Scalar(ScalarType::I64),
        ],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![KStm::If {
            cond: lt(KExp::GlobalId, KExp::ScalarArg(1)),
            then_s: vec![KStm::If {
                cond: eq(KExp::GlobalId.rem(KExp::i64(2)), KExp::i64(0)),
                then_s: vec![KStm::If {
                    cond: eq(KExp::GlobalId.rem(KExp::i64(4)), KExp::i64(0)),
                    then_s: vec![path(3)],
                    else_s: vec![path(5)],
                }],
                else_s: vec![KStm::If {
                    cond: eq(KExp::GlobalId.rem(KExp::i64(4)), KExp::i64(1)),
                    then_s: vec![path(7)],
                    else_s: vec![path(11)],
                }],
            }],
            else_s: vec![],
        }],
    };
    let setup =
        |mem: &mut DeviceMemory| vec![sentinel_buf(mem, n, -1), Arg::Scalar(Scalar::I64(n as i64))];
    let (_, bufs) = engines_agree("all_lanes_diverge", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    for (i, &x) in got.iter().enumerate() {
        let v = match i % 4 {
            0 => 3,
            2 => 5,
            1 => 7,
            _ => 11,
        };
        assert_eq!(x, i as i64 * v + v, "lane {i} took the wrong path");
    }
}

/// One active lane in a grid of 512: every other lane is masked off and
/// must not touch memory or the traffic counters.
#[test]
fn single_active_lane() {
    let n = 512usize;
    let kernel = Kernel {
        name: "one_lane".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![KStm::If {
            cond: eq(KExp::GlobalId, KExp::i64(7)),
            then_s: vec![KStm::GlobalWrite {
                buf: 0,
                index: KExp::i64(0),
                value: KExp::i64(42),
            }],
            else_s: vec![],
        }],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, n, -1)];
    let (stats, bufs) =
        engines_agree("single_active_lane", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    assert_eq!(got[0], 42);
    assert!(
        got[1..].iter().all(|&x| x == -1),
        "a masked lane wrote memory"
    );
    // Only the single active lane may count towards memory traffic.
    assert_eq!(
        stats.useful_bytes, 8,
        "masked lanes contributed to useful_bytes"
    );
    assert_eq!(stats.threads, n as u64);
}

/// Alternating mask: even lanes write, odd lanes sit out and must leave
/// their sentinel untouched.
#[test]
fn alternating_mask_writes() {
    let n = 200usize;
    let kernel = Kernel {
        name: "alternating".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![KStm::If {
            cond: eq(KExp::GlobalId.rem(KExp::i64(2)), KExp::i64(0)),
            then_s: vec![KStm::GlobalWrite {
                buf: 0,
                index: KExp::GlobalId,
                value: KExp::GlobalId.mul(KExp::i64(10)),
            }],
            else_s: vec![],
        }],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, n, -1)];
    let (_, bufs) = engines_agree("alternating_mask", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    for (i, &x) in got.iter().enumerate() {
        if i % 2 == 0 {
            assert_eq!(x, i as i64 * 10, "active lane {i} missing its write");
        } else {
            assert_eq!(x, -1, "masked lane {i} wrote memory");
        }
    }
}

/// Partial warp at the grid tail: 70 threads is two full warps plus a
/// 6-lane remainder; the ghost lanes of the tail warp must not write.
#[test]
fn partial_tail_warp() {
    let n = 70usize;
    let buf_len = 128usize;
    let kernel = Kernel {
        name: "tail".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![KStm::GlobalWrite {
            buf: 0,
            index: KExp::GlobalId,
            value: KExp::GlobalId.add(KExp::i64(1)),
        }],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, buf_len, -1)];
    let (_, bufs) = engines_agree("partial_tail_warp", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    for (i, &x) in got.iter().enumerate() {
        if i < n {
            assert_eq!(x, i as i64 + 1);
        } else {
            assert_eq!(x, -1, "ghost lane {i} past the grid end wrote memory");
        }
    }
}

/// Warps with no active lanes at all: a guard keeps only the first five
/// lanes of a large grid live, so whole warps (and whole groups) execute
/// the guarded body with an all-false mask — they must be a no-op for
/// memory and counters alike.
#[test]
fn empty_warps_at_grid_tail() {
    let n = 1024usize;
    let live = 5i64;
    let kernel = Kernel {
        name: "mostly_empty".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 2,
        num_priv: 0,
        prov_table: vec![],
        body: vec![KStm::If {
            cond: lt(KExp::GlobalId, KExp::i64(live)),
            then_s: vec![
                KStm::Assign {
                    var: 0,
                    exp: KExp::GlobalId.mul(KExp::GlobalId),
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(0),
                },
            ],
            else_s: vec![],
        }],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, n, -1)];
    let (stats, bufs) =
        engines_agree("empty_warps_at_grid_tail", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    for (i, &x) in got.iter().enumerate() {
        if (i as i64) < live {
            assert_eq!(x, (i as i64) * (i as i64));
        } else {
            assert_eq!(x, -1, "masked lane {i} wrote memory");
        }
    }
    assert_eq!(
        stats.useful_bytes,
        live as u64 * 8,
        "empty warps contributed to memory traffic"
    );
}

/// Masked lanes must not write registers either: every lane initialises
/// its register, even lanes overwrite it inside a branch, and the final
/// unconditional store observes the result. A masking bug that lets odd
/// lanes execute the branch body destroys their original value.
#[test]
fn masked_lanes_never_write_registers() {
    let n = 96usize;
    let kernel = Kernel {
        name: "reg_mask".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![
            KStm::Assign {
                var: 0,
                exp: KExp::GlobalId.mul(KExp::i64(5)),
            },
            KStm::If {
                cond: eq(KExp::GlobalId.rem(KExp::i64(2)), KExp::i64(0)),
                then_s: vec![KStm::Assign {
                    var: 0,
                    exp: KExp::i64(0),
                }],
                else_s: vec![],
            },
            KStm::GlobalWrite {
                buf: 0,
                index: KExp::GlobalId,
                value: KExp::Var(0),
            },
        ],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, n, -1)];
    let (_, bufs) =
        engines_agree("masked_register_writes", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    for (i, &x) in got.iter().enumerate() {
        let expect = if i % 2 == 0 { 0 } else { i as i64 * 5 };
        assert_eq!(x, expect, "lane {i}'s register was clobbered");
    }
}

/// Per-lane trip counts: each lane loops `GlobalId % 5` times, so every
/// warp's lanes peel off the loop at different iterations.
#[test]
fn per_lane_trip_counts() {
    let n = 128usize;
    let kernel = Kernel {
        name: "varloop".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 3,
        num_priv: 0,
        prov_table: vec![],
        body: vec![
            KStm::Assign {
                var: 0,
                exp: KExp::i64(0),
            },
            KStm::For {
                var: 1,
                bound: KExp::GlobalId.rem(KExp::i64(5)),
                body: vec![KStm::Assign {
                    var: 0,
                    exp: KExp::Var(0).add(KExp::Var(1)).add(KExp::i64(1)),
                }],
            },
            KStm::GlobalWrite {
                buf: 0,
                index: KExp::GlobalId,
                value: KExp::Var(0),
            },
        ],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, n, -1)];
    let (_, bufs) =
        engines_agree("per_lane_trip_counts", &kernel, n as u64, &setup).expect("clean");
    let got = i64s(&bufs[0]);
    for (i, &x) in got.iter().enumerate() {
        let trips = i as i64 % 5;
        let expect: i64 = (0..trips).map(|t| t + 1).sum();
        assert_eq!(x, expect, "lane {i} ran the wrong number of iterations");
    }
}

/// Faults must be identical across engines, including which lane's fault
/// wins: lane 90 reads out of bounds, everything else is fine.
#[test]
fn faults_are_identical_across_engines() {
    let n = 128usize;
    let small = 90usize;
    let kernel = Kernel {
        name: "oob".into(),
        params: vec![
            KParam::Buffer(ScalarType::I64),
            KParam::Buffer(ScalarType::I64),
        ],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![
            KStm::GlobalRead {
                var: 0,
                buf: 0,
                index: KExp::GlobalId,
            },
            KStm::GlobalWrite {
                buf: 1,
                index: KExp::GlobalId,
                value: KExp::Var(0),
            },
        ],
    };
    let setup =
        |mem: &mut DeviceMemory| vec![sentinel_buf(mem, small, 9), sentinel_buf(mem, n, -1)];
    let err = engines_agree("identical_faults", &kernel, n as u64, &setup)
        .expect_err("lane 90 must fault");
    assert!(
        err.contains("out of bounds") || err.contains("bounds"),
        "unexpected fault text: {err}"
    );
}

/// An empty grid (zero threads) launches no warps at all and must be a
/// clean no-op on both engines.
#[test]
fn zero_thread_launch() {
    let kernel = Kernel {
        name: "empty_grid".into(),
        params: vec![KParam::Buffer(ScalarType::I64)],
        locals: vec![],
        num_regs: 1,
        num_priv: 0,
        prov_table: vec![],
        body: vec![KStm::GlobalWrite {
            buf: 0,
            index: KExp::GlobalId,
            value: KExp::i64(1),
        }],
    };
    let setup = |mem: &mut DeviceMemory| vec![sentinel_buf(mem, 8, -1)];
    let (stats, bufs) = engines_agree("zero_thread_launch", &kernel, 0, &setup).expect("clean");
    assert_eq!(stats.threads, 0);
    assert!(i64s(&bufs[0]).iter().all(|&x| x == -1));
}

/// A divergence-heavy fuzz sample (nested parity branches, data-dependent
/// loop trip counts) is bit-identical across engines end to end — the
/// in-tree miniature of the CI campaign.
#[test]
fn divergent_fuzz_sample_is_engine_invariant() {
    use futhark_fuzz::{generate, GenConfig, Strategy};
    let cfg = GenConfig {
        strategy: Strategy::Divergent,
        ..GenConfig::default()
    };
    let mut compiled_ok = 0u64;
    for seed in 0..40u64 {
        let case = generate(seed, &cfg);
        let src = case.source();
        let compiled = match Compiler::new().compile(&src) {
            Ok(c) => c,
            Err(_) => continue,
        };
        compiled_ok += 1;
        let args = case.args();
        let device = [Device::Gtx780, Device::W8100][(seed % 2) as usize];
        let warp = outcome(&compiled, device, &args, SimEngine::Warp);
        let lane = outcome(&compiled, device, &args, SimEngine::Lane);
        assert_eq!(
            warp, lane,
            "seed {seed}: warp engine diverged from per-lane on {device:?}\n{src}"
        );
    }
    assert!(
        compiled_ok > 20,
        "sample degenerate: only {compiled_ok}/40 cases compiled"
    );
}

//! `FUTHARK_SIM_ENGINE`/`FUTHARK_SIM_THREADS` are *default-only
//! fallbacks*, re-read from the environment each time a default is built —
//! never latched in a `OnceLock` (the old behaviour, under which the first
//! read pinned the value for the life of the process, so a long-lived
//! daemon could never honour a changed default).
//!
//! This file holds the single test that mutates the process environment;
//! it is registered as its own integration-test binary so the mutation
//! cannot race other tests' environment reads.

use futhark::{sim_engine, RunOptions, SimEngine};

#[test]
fn env_is_a_default_only_fallback_reread_per_call() {
    // Engine: flip the variable back and forth; each read must see the
    // current value, not a snapshot from the first call.
    std::env::set_var("FUTHARK_SIM_ENGINE", "lane");
    assert_eq!(sim_engine(), SimEngine::Lane);
    assert_eq!(RunOptions::default().engine, SimEngine::Lane);

    std::env::set_var("FUTHARK_SIM_ENGINE", "warp");
    assert_eq!(sim_engine(), SimEngine::Warp);

    std::env::set_var("FUTHARK_SIM_ENGINE", "LANE"); // case-insensitive
    assert_eq!(sim_engine(), SimEngine::Lane);

    std::env::remove_var("FUTHARK_SIM_ENGINE");
    assert_eq!(
        sim_engine(),
        SimEngine::Warp,
        "unset means the warp default"
    );

    // Thread count: same contract. An unparsable value clamps to 1, a
    // removed variable falls back to available parallelism (>= 1).
    std::env::set_var("FUTHARK_SIM_THREADS", "3");
    assert_eq!(futhark_gpu::host_threads(), 3);
    assert_eq!(RunOptions::default().threads, 3);

    std::env::set_var("FUTHARK_SIM_THREADS", "5");
    assert_eq!(
        futhark_gpu::host_threads(),
        5,
        "second read must see the new value — it used to be latched"
    );

    std::env::set_var("FUTHARK_SIM_THREADS", "not-a-number");
    assert_eq!(futhark_gpu::host_threads(), 1);

    std::env::remove_var("FUTHARK_SIM_THREADS");
    assert!(futhark_gpu::host_threads() >= 1);

    // Explicit options always beat the environment.
    std::env::set_var("FUTHARK_SIM_ENGINE", "lane");
    std::env::set_var("FUTHARK_SIM_THREADS", "2");
    let opts = RunOptions {
        threads: 7,
        profile: false,
        engine: SimEngine::Warp,
    };
    assert_eq!(opts.engine, SimEngine::Warp);
    assert_eq!(opts.threads, 7);
    std::env::remove_var("FUTHARK_SIM_ENGINE");
    std::env::remove_var("FUTHARK_SIM_THREADS");
}

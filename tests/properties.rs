//! Property-based tests on the compiler's core invariants, driven by the
//! `futhark-fuzz` type-directed program generator (the external proptest
//! crate is not available offline; the in-tree generator covers a much
//! larger language surface than the original structured family, which
//! survives as [`Strategy::Chains`]):
//!
//! - compiled GPU execution matches the reference interpreter bit for bit
//!   on random full-language programs, on both device profiles, under the
//!   whole ablation matrix (the differential oracle);
//! - every optimisation pass individually preserves interpreter semantics
//!   and leaves the program well-typed;
//! - streaming SOACs are invariant to the chunk size (the `sFold`
//!   well-definedness argument of Section 2.1);
//! - the ablation matrix itself is well formed;
//! - the shrinker only ever produces smaller cases that still satisfy the
//!   failure predicate.

use futhark::{Compiler, Device, PipelineOptions};
use futhark_core::{ArrayVal, Rng64, Value};
use futhark_fuzz::{check_case, generate, shrink, GenConfig, Outcome, Strategy, TestCase};
use futhark_interp::Interpreter;

const CASES: u64 = 24;

fn chains_cfg() -> GenConfig {
    GenConfig {
        strategy: Strategy::Chains,
        ..GenConfig::default()
    }
}

fn full_cfg() -> GenConfig {
    GenConfig {
        strategy: Strategy::Full,
        ..GenConfig::default()
    }
}

fn assert_clean(case: &TestCase) {
    if let Some(failure) = check_case(case).describe() {
        panic!(
            "seed {} diverged: {failure}\n--- program ---\n{}",
            case.seed,
            case.source()
        );
    }
}

/// The old structured family (map/scan chains) still passes the full
/// differential oracle: interpreter vs simulator, 7 configs x 2 devices.
#[test]
fn map_scan_chains_match_interpreter_everywhere() {
    for seed in 0..CASES {
        assert_clean(&generate(0x1000 + seed, &chains_cfg()));
    }
}

/// Full-language programs (all SOACs, loops, branches, 2-D arrays,
/// in-place updates, filter/scatter) pass the differential oracle.
#[test]
fn full_language_programs_match_interpreter_everywhere() {
    for seed in 0..CASES {
        assert_clean(&generate(0x2000 + seed, &full_cfg()));
    }
}

/// Each optimisation pass, applied in pipeline order, preserves the
/// interpreter's results and keeps the program well-typed.
#[test]
fn each_pass_preserves_semantics() {
    for seed in 0..CASES {
        let case = generate(0x3000 + seed, &full_cfg());
        let src = case.source();
        let args = case.args();
        let (prog, mut ns) = futhark_frontend::parse_program(&src)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{src}"));
        let baseline = Interpreter::new(&prog).run_main(&args).expect("base");

        let mut p1 = prog.clone();
        futhark_opt::simplify::simplify_program(&mut p1, &mut ns);
        assert_eq!(
            Interpreter::new(&p1).run_main(&args).expect("simplified"),
            baseline,
            "simplify changed semantics for\n{src}"
        );
        futhark_check::check_program(&p1).expect("simplified program checks");

        let mut p2 = p1.clone();
        futhark_opt::fusion::fuse_program(&mut p2, &mut ns);
        assert_eq!(
            Interpreter::new(&p2).run_main(&args).expect("fused"),
            baseline,
            "fusion changed semantics for\n{src}"
        );
        futhark_check::check_program(&p2).expect("fused program checks");

        let mut p3 = p2.clone();
        futhark_opt::flatten::flatten_program(&mut p3, &mut ns);
        assert_eq!(
            Interpreter::new(&p3).run_main(&args).expect("flattened"),
            baseline,
            "flattening changed semantics for\n{src}"
        );
    }
}

#[test]
fn stream_red_is_chunk_invariant() {
    // Figure 4c's histogram: any partitioning yields the same counts.
    let src = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
               let zeros = replicate k 0\n\
               let counts = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
                 (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->\n\
                   loop (a = acc) for i < chunk do (\n\
                     let c = cs[i]\n\
                     let old = a[c]\n\
                     in a with [c] <- old + 1))\n\
                 zeros membership\n\
               in counts";
    let (prog, _) = futhark_frontend::parse_program(src).expect("parses");
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x4000 + case);
        let len = rng.gen_i64(1, 50) as usize;
        let data: Vec<i64> = (0..len).map(|_| rng.gen_i64(0, 8)).collect();
        let chunk = rng.gen_i64(1, 16) as usize;
        let args = vec![
            Value::i64(data.len() as i64),
            Value::i64(8),
            Value::Array(ArrayVal::from_i64s(data)),
        ];
        let whole = Interpreter::new(&prog).run_main(&args).expect("whole");
        let mut chunked_interp = Interpreter::new(&prog);
        chunked_interp.set_chunk_size(chunk);
        let chunked = chunked_interp.run_main(&args).expect("chunked");
        assert_eq!(whole, chunked);
        // And the GPU's own (thread-count dependent) partitioning agrees.
        let compiled = Compiler::new().compile(src).expect("compiles");
        let (gpu, _) = compiled.run(Device::Gtx780, &args).expect("runs");
        assert_eq!(gpu, whole);
    }
}

/// The ablation matrix the oracle iterates is well formed: seven
/// configurations with distinct labels, the first being the fully
/// optimised default, and the checker enabled throughout (disabling
/// verification is never part of an ablation).
#[test]
fn ablation_matrix_is_well_formed() {
    let matrix = PipelineOptions::ablation_matrix();
    assert_eq!(matrix.len(), 7);
    let labels: Vec<String> = matrix.iter().map(|o| o.label()).collect();
    for (i, l) in labels.iter().enumerate() {
        assert!(
            !labels[..i].contains(l),
            "duplicate ablation label {l:?} in {labels:?}"
        );
    }
    assert_eq!(matrix[0].label(), PipelineOptions::default().label());
    for opts in &matrix {
        assert!(opts.check, "ablations must keep the checker on");
    }
}

/// Shrinking never grows a case and always lands on one that still
/// satisfies the failure predicate (here synthetic, so the test does not
/// depend on a real compiler bug existing).
#[test]
fn shrinking_is_sound_and_monotone() {
    let mut exercised = 0;
    for seed in 0..CASES {
        let case = generate(0x5000 + seed, &full_cfg());
        let pred = |c: &TestCase| c.source().contains("scatter");
        if !pred(&case) {
            continue;
        }
        exercised += 1;
        let (small, stats) = shrink(&case, &mut |c| pred(c), 2000);
        assert!(pred(&small), "shrink lost the predicate");
        assert!(small.stages.len() <= case.stages.len());
        assert!(small.n <= case.n && small.m <= case.m);
        assert!(stats.attempts >= stats.accepted);
        // The shrunk program is still a valid, runnable program.
        assert!(
            !matches!(check_case(&small), Outcome::InterpError(_)),
            "shrunk program no longer runs:\n{}",
            small.source()
        );
    }
    assert!(exercised >= 3, "too few scatter-bearing seeds: {exercised}");
}

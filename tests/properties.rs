//! Property-based tests on the compiler's core invariants, driven by the
//! in-tree deterministic PRNG (the external proptest crate is not
//! available offline; the properties and case counts match the original
//! proptest suite):
//!
//! - every optimisation pass preserves interpreter semantics on randomly
//!   generated programs from a structured family;
//! - compiled GPU execution matches the interpreter on random data;
//! - streaming SOACs are invariant to the chunk size (the `sFold`
//!   well-definedness argument of Section 2.1);
//! - transformed programs still pass type and uniqueness checking.

use futhark::{Compiler, Device, PipelineOptions};
use futhark_bench::suite::Rng64;
use futhark_core::{ArrayVal, Value};
use futhark_interp::Interpreter;

const CASES: u64 = 24;

/// A small expression language over one input array, rendered to Futhark
/// source. Generates chains of maps/scans plus a reduction, which exercises
/// fusion (vertical + redomap), flattening, and the GPU backend.
#[derive(Debug, Clone)]
enum Stage {
    MapAdd(i64),
    MapMul(i64),
    MapSquareish,
    Scan,
}

fn gen_stage(rng: &mut Rng64) -> Stage {
    match rng.gen_i64(0, 4) {
        0 => Stage::MapAdd(rng.gen_i64(-5, 6)),
        1 => Stage::MapMul(rng.gen_i64(1, 4)),
        2 => Stage::MapSquareish,
        _ => Stage::Scan,
    }
}

fn gen_stages(rng: &mut Rng64, min: usize, max: usize) -> Vec<Stage> {
    let n = rng.gen_i64(min as i64, max as i64) as usize;
    (0..n).map(|_| gen_stage(rng)).collect()
}

fn gen_data(rng: &mut Rng64, lo: i64, hi: i64, max_len: usize) -> Vec<i64> {
    let n = rng.gen_i64(1, max_len as i64) as usize;
    (0..n).map(|_| rng.gen_i64(lo, hi)).collect()
}

fn render(stages: &[Stage], reduce_at_end: bool) -> String {
    let mut body = String::new();
    let mut cur = "xs".to_string();
    for (i, s) in stages.iter().enumerate() {
        let next = format!("t{i}");
        let line = match s {
            Stage::MapAdd(k) => {
                format!("  let {next} = map (\\v -> v + {k}) {cur}\n")
            }
            Stage::MapMul(k) => {
                format!("  let {next} = map (\\v -> v * {k}) {cur}\n")
            }
            Stage::MapSquareish => {
                format!("  let {next} = map (\\v -> v * v % 1000003) {cur}\n")
            }
            Stage::Scan => format!("  let {next} = scan (+) 0 {cur}\n"),
        };
        body.push_str(&line);
        cur = next;
    }
    if reduce_at_end {
        format!("fun main (n: i64) (xs: [n]i64): i64 =\n{body}  let r = reduce (+) 0 {cur}\n  in r")
    } else {
        format!("fun main (n: i64) (xs: [n]i64): [n]i64 =\n{body}  in {cur}")
    }
}

#[test]
fn compiled_pipeline_matches_interpreter() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1000 + case);
        let stages = gen_stages(&mut rng, 1, 5);
        let reduce_at_end = rng.gen_i64(0, 2) == 1;
        let data = gen_data(&mut rng, -100, 100, 40);
        let src = render(&stages, reduce_at_end);
        let args = vec![
            Value::i64(data.len() as i64),
            Value::Array(ArrayVal::from_i64s(data)),
        ];
        let interp = futhark::interpret(&src, &args).expect("interpreter");
        let compiled = Compiler::new()
            .compile(&src)
            .unwrap_or_else(|e| panic!("compile failed: {e}\n{src}"));
        let (gpu, _) = compiled
            .run(Device::Gtx780, &args)
            .unwrap_or_else(|e| panic!("gpu failed: {e}\n{src}"));
        assert_eq!(gpu.len(), interp.len());
        for (a, b) in gpu.iter().zip(&interp) {
            assert!(a.approx_eq(b, 1e-9), "{a} != {b} for\n{src}");
        }
    }
}

#[test]
fn each_pass_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x2000 + case);
        let stages = gen_stages(&mut rng, 1, 5);
        let data = gen_data(&mut rng, -50, 50, 30);
        let src = render(&stages, true);
        let (prog, mut ns) = futhark_frontend::parse_program(&src).expect("parses");
        let args = vec![
            Value::i64(data.len() as i64),
            Value::Array(ArrayVal::from_i64s(data)),
        ];
        let baseline = Interpreter::new(&prog).run_main(&args).expect("base");

        let mut p1 = prog.clone();
        futhark_opt::simplify::simplify_program(&mut p1, &mut ns);
        assert_eq!(
            Interpreter::new(&p1).run_main(&args).expect("simplified"),
            baseline
        );
        futhark_check::check_program(&p1).expect("simplified program checks");

        let mut p2 = p1.clone();
        futhark_opt::fusion::fuse_program(&mut p2, &mut ns);
        assert_eq!(
            Interpreter::new(&p2).run_main(&args).expect("fused"),
            baseline
        );
        futhark_check::check_program(&p2).expect("fused program checks");

        let mut p3 = p2.clone();
        futhark_opt::flatten::flatten_program(&mut p3, &mut ns);
        assert_eq!(
            Interpreter::new(&p3).run_main(&args).expect("flattened"),
            baseline
        );
    }
}

#[test]
fn stream_red_is_chunk_invariant() {
    // Figure 4c's histogram: any partitioning yields the same counts.
    let src = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
               let zeros = replicate k 0\n\
               let counts = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
                 (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->\n\
                   loop (a = acc) for i < chunk do (\n\
                     let c = cs[i]\n\
                     let old = a[c]\n\
                     in a with [c] <- old + 1))\n\
                 zeros membership\n\
               in counts";
    let (prog, _) = futhark_frontend::parse_program(src).expect("parses");
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x3000 + case);
        let data = gen_data(&mut rng, 0, 8, 50);
        let chunk = rng.gen_i64(1, 16) as usize;
        let args = vec![
            Value::i64(data.len() as i64),
            Value::i64(8),
            Value::Array(ArrayVal::from_i64s(data)),
        ];
        let whole = Interpreter::new(&prog).run_main(&args).expect("whole");
        let mut chunked_interp = Interpreter::new(&prog);
        chunked_interp.set_chunk_size(chunk);
        let chunked = chunked_interp.run_main(&args).expect("chunked");
        assert_eq!(whole, chunked);
        // And the GPU's own (thread-count dependent) partitioning agrees.
        let compiled = Compiler::new().compile(src).expect("compiles");
        let (gpu, _) = compiled.run(Device::Gtx780, &args).expect("runs");
        assert_eq!(gpu, whole);
    }
}

#[test]
fn ablation_switches_never_change_results() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x4000 + case);
        let stages = gen_stages(&mut rng, 1, 4);
        let data = gen_data(&mut rng, -20, 20, 25);
        let fusion = rng.gen_i64(0, 2) == 1;
        let coalescing = rng.gen_i64(0, 2) == 1;
        let tiling = rng.gen_i64(0, 2) == 1;
        let src = render(&stages, false);
        let args = vec![
            Value::i64(data.len() as i64),
            Value::Array(ArrayVal::from_i64s(data)),
        ];
        let interp = futhark::interpret(&src, &args).expect("interp");
        let opts = PipelineOptions {
            fusion,
            coalescing,
            tiling,
            ..PipelineOptions::default()
        };
        let compiled = Compiler::with_options(opts)
            .compile(&src)
            .expect("compiles");
        let (gpu, _) = compiled.run(Device::Gtx780, &args).expect("runs");
        for (a, b) in gpu.iter().zip(&interp) {
            assert!(a.approx_eq(b, 1e-9), "{opts:?}");
        }
    }
}

//! Schedule and autotuner integration tests.
//!
//! Pins the contract of the schedule-driven pipeline end to end: the
//! default schedule reproduces the classic pipeline exactly, the tuner
//! is deterministic and monotone, a tuned schedule beats the default by
//! a double-digit margin on a named paper benchmark without changing a
//! single output bit, and the schedules committed under `schedules/`
//! replay bit-for-bit.

use futhark::{schedule_from_json, Compiler, Device, Json, Schedule};
use futhark_bench::benchmark;
use futhark_tune::{evaluate, tune, TuneConfig};

/// The default schedule must compile to the very same artifact as the
/// classic option-driven pipeline: same outputs, same deterministic cost
/// counters.
#[test]
fn default_schedule_matches_classic_pipeline() {
    let b = benchmark("Backprop").expect("known benchmark");
    let classic = Compiler::new().compile(&b.source).expect("classic");
    let scheduled = Compiler::with_schedule(Schedule::default())
        .compile(&b.source)
        .expect("scheduled");
    let (vc, pc) = classic.run(Device::Gtx780, &b.small_args).expect("run");
    let (vs, ps) = scheduled.run(Device::Gtx780, &b.small_args).expect("run");
    assert_eq!(vc.len(), vs.len());
    for (a, b) in vc.iter().zip(&vs) {
        assert!(a.bit_eq(b), "default schedule changed an output");
    }
    assert_eq!(pc.total_us, ps.total_us);
    assert_eq!(pc.launches, ps.launches);
    assert_eq!(pc.stats, ps.stats);
}

/// Same seed, same program, same arguments: the tuner must return the
/// same schedule, score, and evaluation count.
#[test]
fn tuner_is_deterministic() {
    let b = benchmark("SRAD").expect("known benchmark");
    let cfg = TuneConfig {
        seed: 42,
        rounds: 2,
        site_samples: 4,
    };
    let x = tune(&b.source, &b.small_args, Device::Gtx780, &cfg).expect("tune");
    let y = tune(&b.source, &b.small_args, Device::Gtx780, &cfg).expect("tune");
    assert_eq!(x.schedule, y.schedule);
    assert_eq!(x.schedule.label(), y.schedule.label());
    assert_eq!(x.score, y.score);
    assert_eq!(x.evaluated, y.evaluated);
}

/// Every accepted hill-climb step strictly improves the lexicographic
/// objective; the final score is never worse than the default's.
#[test]
fn tuner_accepted_steps_are_monotone() {
    let b = benchmark("HotSpot").expect("known benchmark");
    let cfg = TuneConfig {
        seed: 0,
        rounds: 3,
        site_samples: 4,
    };
    let out = tune(&b.source, &b.small_args, Device::Gtx780, &cfg).expect("tune");
    let mut prev = out.default_score;
    for step in &out.steps {
        assert!(
            step.score.better_than(&prev),
            "accepted step {:?} did not improve on {:?}",
            step,
            prev
        );
        prev = step.score;
    }
    assert!(!out.default_score.better_than(&out.score));
}

/// Acceptance: on HotSpot, the tuned schedule beats the default by at
/// least 10% modelled time with bit-identical outputs.
#[test]
fn tuned_schedule_beats_default_on_hotspot() {
    let b = benchmark("HotSpot").expect("known benchmark");
    let cfg = TuneConfig {
        seed: 0,
        rounds: 2,
        site_samples: 4,
    };
    let out = tune(&b.source, &b.args, Device::Gtx780, &cfg).expect("tune");
    assert!(
        out.speedup() >= 0.10,
        "expected >= 10% modelled-time win on HotSpot, got {:.1}% \
         (default {:.1} µs, tuned {:.1} µs)",
        out.speedup() * 100.0,
        out.default_score.total_us,
        out.score.total_us
    );
    // Re-evaluate both schedules from scratch and compare outputs bit
    // for bit — the tuner's internal check, repeated externally.
    let (dv, ds, _) =
        evaluate(&b.source, &b.args, Device::Gtx780, &Schedule::default()).expect("default eval");
    let (tv, ts, _) =
        evaluate(&b.source, &b.args, Device::Gtx780, &out.schedule).expect("tuned eval");
    assert_eq!(dv.len(), tv.len());
    for (a, b) in dv.iter().zip(&tv) {
        assert!(a.bit_eq(b), "tuned schedule changed an output bit");
    }
    assert!(ts.total_us <= ds.total_us * 0.90);
}

/// The schedules committed under `schedules/` replay bit-for-bit: the
/// label still parses, the outputs still match the default schedule's
/// exactly, and the recorded modelled time is reproduced to the bit.
#[test]
fn committed_schedules_replay_bit_for_bit() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../schedules");
    for name in ["HotSpot", "LocVolCalib", "Fluid"] {
        let b = benchmark(name).expect("known benchmark");
        let text = std::fs::read_to_string(format!("{dir}/{name}.json"))
            .unwrap_or_else(|e| panic!("reading committed schedule for {name}: {e}"));
        let doc = Json::parse(&text).expect("committed schedule parses");
        let sched = schedule_from_json(doc.get("schedule").expect("schedule key"))
            .unwrap_or_else(|e| panic!("{name}: committed label rejected: {e}"));
        let recorded_us = doc
            .get("tuned_score")
            .and_then(|s| s.get("total_us"))
            .and_then(Json::as_f64)
            .expect("recorded tuned total_us");
        let (dv, ds, _) = evaluate(&b.source, &b.args, Device::Gtx780, &Schedule::default())
            .expect("default eval");
        let (tv, ts, _) = evaluate(&b.source, &b.args, Device::Gtx780, &sched).expect("tuned eval");
        assert_eq!(dv.len(), tv.len(), "{name}: arity changed");
        for (a, b) in dv.iter().zip(&tv) {
            assert!(a.bit_eq(b), "{name}: tuned output differs from default");
        }
        assert_eq!(
            ts.total_us, recorded_us,
            "{name}: committed modelled time drifted"
        );
        assert!(
            ts.total_us <= ds.total_us * 0.90,
            "{name}: committed schedule no longer a >=10% win \
             (default {} µs, tuned {} µs)",
            ds.total_us,
            ts.total_us
        );
    }
}

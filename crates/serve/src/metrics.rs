//! The daemon metrics registry: monotone counters, point-in-time
//! gauges, and fixed-bucket latency histograms, behind one short-lived
//! lock.
//!
//! Counters follow the `futhark_trace::Counters` dotted-key convention
//! (`jobs.admitted`, `cache.hits`, `accept.wakeups`); the full key set is
//! pre-declared in [`COUNTER_KEYS`] so every scrape — JSON or Prometheus
//! text — emits every counter (zeros included) in a deterministic order.
//! Histograms ([`futhark_trace::Histogram`]) cover the four stages of a
//! job's latency: queue wait, compile, execute, and end-to-end; each
//! observes wall-clock microseconds into fixed power-of-two buckets, so
//! quantile estimates carry a 2× bucket bound that `loadgen --scrape`
//! asserts against client-side measurements. Per-device counters track
//! jobs executed and busy microseconds; utilization gauges derive from
//! busy time over daemon uptime at scrape time.
//!
//! Gauges (in-flight jobs, device-queue depth, busy devices, cached
//! artifacts, uptime) are *sampled* by the daemon at scrape time from
//! the live scheduler state — the registry never caches a value that the
//! scheduler already owns.

use futhark_trace::{Counters, Exposition, Histogram, Json};
use std::sync::Mutex;

/// Every counter the registry exposes, in exposition order. Scrapes emit
/// all of them (zero when never bumped), so the schema of a scrape does
/// not depend on which code paths have fired yet.
pub const COUNTER_KEYS: [&str; 12] = [
    "jobs.received",
    "jobs.admitted",
    "jobs.rejected",
    "jobs.completed",
    "jobs.failed",
    "jobs.failed.compile",
    "jobs.failed.run",
    "protocol.errors",
    "queue.waits",
    "accept.wakeups",
    "cache.hits",
    "cache.misses",
];

/// Per-device monotone counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceCounters {
    /// Device name (pool-unique).
    pub name: String,
    /// Jobs executed on this device.
    pub jobs: u64,
    /// Wall-clock microseconds the device spent executing.
    pub busy_us: u64,
}

/// The registry contents (cloned out as a consistent snapshot).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters (dotted keys; see [`COUNTER_KEYS`]).
    pub counters: Counters,
    /// Wait between admission and device-slot acquisition.
    pub queue_wait_us: Histogram,
    /// Wall-clock compile time (cache misses only).
    pub compile_us: Histogram,
    /// Wall-clock execution time on a device slot.
    pub execute_us: Histogram,
    /// Received-to-response latency of admitted jobs.
    pub e2e_us: Histogram,
    /// Per-device execution counters, pool order.
    pub devices: Vec<DeviceCounters>,
}

/// Point-in-time values the daemon samples at scrape time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaugeSet {
    /// Microseconds since daemon start.
    pub uptime_us: f64,
    /// Jobs accepted and not yet answered.
    pub inflight: u64,
    /// Jobs waiting for a device slot.
    pub queue_depth: u64,
    /// Devices currently executing a job.
    pub devices_busy: u64,
    /// Artifacts in the compiled-artifact cache.
    pub cache_artifacts: u64,
    /// Per-device busy flags, pool order.
    pub device_busy: Vec<bool>,
}

/// The lock-cheap registry: one mutex, short critical sections, poison
/// recovered (a panicking job thread must not wedge future scrapes).
#[derive(Debug)]
pub struct Metrics {
    inner: Mutex<MetricsSnapshot>,
}

impl Metrics {
    /// A fresh registry for a pool of `device_names`.
    pub fn new(device_names: Vec<String>) -> Metrics {
        Metrics {
            inner: Mutex::new(MetricsSnapshot {
                devices: device_names
                    .into_iter()
                    .map(|name| DeviceCounters {
                        name,
                        jobs: 0,
                        busy_us: 0,
                    })
                    .collect(),
                ..MetricsSnapshot::default()
            }),
        }
    }

    /// Runs `f` under the registry lock (poison-recovering).
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsSnapshot) -> R) -> R {
        f(&mut crate::lock_ok(&self.inner))
    }

    /// Increments a counter by one.
    pub fn bump(&self, key: &str) {
        self.with(|m| m.counters.bump(key));
    }

    /// Increments a counter by `n`.
    pub fn add(&self, key: &str, n: u64) {
        self.with(|m| m.counters.add(key, n));
    }

    /// The current counter value.
    pub fn get(&self, key: &str) -> u64 {
        self.with(|m| m.counters.get(key))
    }

    /// A consistent copy of the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.with(|m| m.clone())
    }
}

fn histogram_json(h: &Histogram) -> Json {
    let mut j = h.to_json();
    if let Json::Obj(pairs) = &mut j {
        pairs.push(("p50_us".to_string(), Json::F64(h.p50())));
        pairs.push(("p99_us".to_string(), Json::F64(h.p99())));
    }
    j
}

/// Renders the full registry (snapshot + gauges + recorder summary) as
/// the JSON body of the `metrics` protocol op. `recorder` is the
/// already-serialised flight-recorder object.
pub fn registry_json(snap: &MetricsSnapshot, gauges: &GaugeSet, recorder: Json) -> Json {
    let mut counters: Vec<(&str, Json)> = COUNTER_KEYS
        .iter()
        .map(|&k| (k, Json::U64(snap.counters.get(k))))
        .collect();
    // Any counters outside the pre-declared set (future-proofing) follow
    // in their own sorted order.
    for (k, v) in snap.counters.iter() {
        if !COUNTER_KEYS.contains(&k) {
            counters.push((k, Json::U64(v)));
        }
    }
    let devices: Vec<Json> = snap
        .devices
        .iter()
        .zip(
            gauges
                .device_busy
                .iter()
                .copied()
                .chain(std::iter::repeat(false)),
        )
        .map(|(d, busy)| {
            let utilization = if gauges.uptime_us > 0.0 {
                (d.busy_us as f64 / gauges.uptime_us).min(1.0)
            } else {
                0.0
            };
            Json::obj(vec![
                ("name", Json::Str(d.name.clone())),
                ("jobs", Json::U64(d.jobs)),
                ("busy_us", Json::U64(d.busy_us)),
                ("busy", Json::Bool(busy)),
                ("utilization", Json::F64(utilization)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("counters", Json::obj(counters)),
        (
            "gauges",
            Json::obj(vec![
                ("uptime_us", Json::F64(gauges.uptime_us)),
                ("inflight", Json::U64(gauges.inflight)),
                ("queue_depth", Json::U64(gauges.queue_depth)),
                ("devices_busy", Json::U64(gauges.devices_busy)),
                ("cache_artifacts", Json::U64(gauges.cache_artifacts)),
            ]),
        ),
        (
            "histograms",
            Json::obj(vec![
                ("queue_wait_us", histogram_json(&snap.queue_wait_us)),
                ("compile_us", histogram_json(&snap.compile_us)),
                ("execute_us", histogram_json(&snap.execute_us)),
                ("e2e_us", histogram_json(&snap.e2e_us)),
            ]),
        ),
        ("devices", Json::Arr(devices)),
        ("recorder", recorder),
    ])
}

/// Renders the registry in the Prometheus text format, `futharkd_`
/// prefixed, deterministically ordered: counters first (declaration
/// order), then gauges, per-device families, and the four histograms.
pub fn registry_prometheus(snap: &MetricsSnapshot, gauges: &GaugeSet) -> String {
    let mut e = Exposition::new();
    for &key in &COUNTER_KEYS {
        let name = format!("futharkd_{}_total", key.replace('.', "_"));
        e.counter(
            &name,
            &format!("Monotone counter {key}"),
            snap.counters.get(key),
        );
    }
    e.gauge(
        "futharkd_inflight",
        "Jobs accepted and not yet answered",
        gauges.inflight,
    );
    e.gauge(
        "futharkd_queue_depth",
        "Jobs waiting for a device slot",
        gauges.queue_depth,
    );
    e.gauge(
        "futharkd_devices_busy",
        "Devices currently executing a job",
        gauges.devices_busy,
    );
    e.gauge(
        "futharkd_cache_artifacts",
        "Artifacts in the compiled-artifact cache",
        gauges.cache_artifacts,
    );
    e.header(
        "futharkd_uptime_us",
        "Microseconds since daemon start",
        "gauge",
    );
    e.sample_f64("futharkd_uptime_us", &[], gauges.uptime_us);
    e.header(
        "futharkd_device_jobs_total",
        "Jobs executed per device",
        "counter",
    );
    for d in &snap.devices {
        e.sample_u64("futharkd_device_jobs_total", &[("device", &d.name)], d.jobs);
    }
    e.header(
        "futharkd_device_busy_us_total",
        "Wall-clock microseconds spent executing per device",
        "counter",
    );
    for d in &snap.devices {
        e.sample_u64(
            "futharkd_device_busy_us_total",
            &[("device", &d.name)],
            d.busy_us,
        );
    }
    e.header(
        "futharkd_device_utilization",
        "Busy time over uptime per device",
        "gauge",
    );
    for d in &snap.devices {
        let u = if gauges.uptime_us > 0.0 {
            (d.busy_us as f64 / gauges.uptime_us).min(1.0)
        } else {
            0.0
        };
        e.sample_f64("futharkd_device_utilization", &[("device", &d.name)], u);
    }
    e.histogram(
        "futharkd_queue_wait_us",
        "Wait between admission and device-slot acquisition (µs)",
        &snap.queue_wait_us,
    );
    e.histogram(
        "futharkd_compile_us",
        "Wall-clock compile time on cache misses (µs)",
        &snap.compile_us,
    );
    e.histogram(
        "futharkd_execute_us",
        "Wall-clock execution time on a device slot (µs)",
        &snap.execute_us,
    );
    e.histogram(
        "futharkd_e2e_us",
        "Received-to-response latency of admitted jobs (µs)",
        &snap.e2e_us,
    );
    e.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrapes_emit_every_declared_counter_even_at_zero() {
        let m = Metrics::new(vec!["d0".into()]);
        m.bump("jobs.received");
        let j = registry_json(&m.snapshot(), &GaugeSet::default(), Json::Null);
        let counters = j.get("counters").unwrap();
        for key in COUNTER_KEYS {
            assert!(counters.get(key).is_some(), "missing {key}");
        }
        assert_eq!(counters.get("jobs.received").unwrap().as_u64(), Some(1));
        assert_eq!(counters.get("jobs.admitted").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn prometheus_rendering_is_deterministic_and_complete() {
        let m = Metrics::new(vec!["gtx780#0".into(), "gtx780#1".into()]);
        m.add("jobs.admitted", 3);
        m.with(|s| {
            s.e2e_us.observe_us(400.0);
            s.devices[1].jobs = 2;
            s.devices[1].busy_us = 500;
        });
        let g = GaugeSet {
            uptime_us: 1000.0,
            device_busy: vec![false, true],
            devices_busy: 1,
            ..GaugeSet::default()
        };
        let a = registry_prometheus(&m.snapshot(), &g);
        let b = registry_prometheus(&m.snapshot(), &g);
        assert_eq!(a, b);
        assert!(a.contains("futharkd_jobs_admitted_total 3"));
        assert!(
            a.contains("futharkd_jobs_rejected_total 0"),
            "zeros present"
        );
        assert!(a.contains("futharkd_device_busy_us_total{device=\"gtx780#1\"} 500"));
        assert!(a.contains("futharkd_device_utilization{device=\"gtx780#1\"} 0.5"));
        assert!(a.contains("futharkd_e2e_us_bucket{le=\"+Inf\"} 1"));
        assert!(a.contains("# TYPE futharkd_e2e_us histogram"));
    }

    #[test]
    fn registry_json_carries_quantiles_and_utilization() {
        let m = Metrics::new(vec!["d0".into()]);
        m.with(|s| {
            for _ in 0..10 {
                s.e2e_us.observe_us(200.0);
            }
            s.devices[0].busy_us = 250;
        });
        let g = GaugeSet {
            uptime_us: 1000.0,
            device_busy: vec![true],
            ..GaugeSet::default()
        };
        let j = registry_json(&m.snapshot(), &g, Json::Null);
        let e2e = j.get("histograms").unwrap().get("e2e_us").unwrap();
        assert_eq!(e2e.get("count").unwrap().as_u64(), Some(10));
        let p50 = e2e.get("p50_us").unwrap().as_f64().unwrap();
        assert!((100.0..=400.0).contains(&p50), "p50 within 2x: {p50}");
        let d = &j.get("devices").unwrap().as_arr().unwrap()[0];
        assert_eq!(d.get("utilization").unwrap().as_f64(), Some(0.25));
        assert_eq!(d.get("busy"), Some(&Json::Bool(true)));
    }
}

//! `futharkd` — the persistent compile-and-execute daemon.
//!
//! ```text
//! futharkd [--listen ADDR] [--device gtx780|w8100] [--devices N]
//!          [--workers N] [--capacity BYTES] [--cache N]
//!          [--accept-poll-ms MS] [--metrics FILE]
//! ```
//!
//! Without `--listen`, the daemon speaks the line-delimited JSON
//! protocol on stdin/stdout; with `--listen 127.0.0.1:8000` it serves
//! TCP connections. `--devices` replicates the chosen profile into a
//! pool (one concurrent job per device); `--capacity` overrides each
//! device's `global_mem_bytes` (useful for admission experiments).
//! `--accept-poll-ms` sets the TCP accept-loop poll interval (default
//! 20 ms; each idle wakeup is counted in the metrics registry).
//! `--metrics FILE` dumps the final Prometheus-style telemetry
//! exposition to FILE (`-` for stderr) when the daemon exits; the same
//! registry is available live through the `metrics` protocol op.

use futhark::DeviceProfile;
use futhark_serve::daemon::{serve_lines, serve_tcp};
use futhark_serve::{Daemon, DaemonConfig};
use std::net::TcpListener;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: futharkd [--listen ADDR] [--device gtx780|w8100] \
         [--devices N] [--workers N] [--capacity BYTES] [--cache N] \
         [--accept-poll-ms MS] [--metrics FILE]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut listen: Option<String> = None;
    let mut profile = DeviceProfile::gtx780();
    let mut devices = 1usize;
    let mut workers = 4usize;
    let mut capacity: Option<u64> = None;
    let mut cache = 128usize;
    let mut accept_poll_ms = DaemonConfig::default().accept_poll_ms;
    let mut metrics_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--listen" => listen = Some(val()),
            "--device" => {
                profile = match val().as_str() {
                    "gtx780" => DeviceProfile::gtx780(),
                    "w8100" => DeviceProfile::w8100(),
                    other => {
                        eprintln!("unknown device {other:?}");
                        return ExitCode::from(2);
                    }
                }
            }
            "--devices" => devices = val().parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = val().parse().unwrap_or_else(|_| usage()),
            "--capacity" => capacity = Some(val().parse().unwrap_or_else(|_| usage())),
            "--cache" => cache = val().parse().unwrap_or_else(|_| usage()),
            "--accept-poll-ms" => accept_poll_ms = val().parse().unwrap_or_else(|_| usage()),
            "--metrics" => metrics_out = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if let Some(c) = capacity {
        profile.global_mem_bytes = c;
    }
    let pool: Vec<DeviceProfile> = (0..devices.max(1))
        .map(|i| {
            let mut d = profile.clone();
            if devices > 1 {
                d.name = format!("{}#{i}", d.name);
            }
            d
        })
        .collect();
    let daemon = Daemon::new(DaemonConfig {
        devices: pool,
        workers,
        cache_capacity: cache,
        accept_poll_ms,
        ..DaemonConfig::default()
    });

    let served = match listen {
        Some(addr) => match TcpListener::bind(&addr) {
            Ok(l) => {
                eprintln!("futharkd: listening on {addr}");
                serve_tcp(&daemon, l)
            }
            Err(e) => {
                eprintln!("futharkd: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let stdin = std::io::stdin();
            serve_lines(&daemon, stdin.lock(), std::io::stdout())
        }
    };
    if let Some(path) = metrics_out {
        let text = daemon.metrics_prometheus();
        if path == "-" {
            eprint!("{text}");
        } else if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("futharkd: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("futharkd: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `futhark-serve`: the `futharkd` daemon — a persistent
//! compile-and-execute service over the simulated GPU pipeline.
//!
//! A long-lived server changes the engineering contract in three ways the
//! one-shot CLI never exercised, and this crate is built around them:
//!
//! 1. **Compilation is amortised, not repeated.** Submitting the same
//!    source twice must not pay the pipeline twice: compiled artifacts
//!    live in a content-addressed [`cache::ArtifactCache`], keyed on the
//!    FNV-1a hash of the source text together with the
//!    [`futhark::PipelineOptions`] configuration and the device profile.
//!    A response's span list makes the distinction observable — the
//!    `compile` span is absent on a cache hit.
//!
//! 2. **Memory admission happens before execution, not during.** Every
//!    job's device-memory footprint is predicted up front
//!    ([`futhark_gpu::predict_peak_bytes`], a lower bound, upgraded by
//!    *learned* measured peaks from earlier runs of the same artifact and
//!    argument shapes). A job whose footprint cannot fit any configured
//!    device is rejected at admission with the prediction attached;
//!    admissible jobs queue for a device with enough capacity. Execution
//!    itself runs against an uncapped arena, so a mid-flight
//!    `OutOfMemory` is impossible by construction — an underpredicted
//!    job fails *cleanly* post-run (and its measured peak is learned, so
//!    the next submission is rejected up front).
//!
//! 3. **No process-global state.** Engine choice, thread counts, and
//!    uniform-path tallies are all per-request ([`futhark::RunOptions`],
//!    [`futhark::PerfReport`]) — the daemon is the reason those moved off
//!    `OnceLock`s and process-wide atomics.
//!
//! The wire protocol is line-delimited JSON over stdio or TCP; see
//! [`proto`] for the request/response schema and the README's `futharkd`
//! section for examples.

pub mod cache;
pub mod daemon;
pub mod hash;
pub mod metrics;
pub mod proto;
pub mod recorder;

pub use cache::{ArtifactCache, CacheStats};
pub use daemon::{Daemon, DaemonConfig, ServeStats};
pub use metrics::{GaugeSet, Metrics, MetricsSnapshot};
pub use proto::{ErrorKind, MetricsFormat, Request, Response, RunRequest, Span};
pub use recorder::{EventKind, FlightRecorder, JobEvent};

/// Locks a mutex, recovering from poison: a panicking job thread must
/// not wedge every future `stats`/`metrics` call of a long-lived daemon.
/// The guarded data are counters and slot tables whose invariants hold
/// between mutations, so the poisoned value is safe to keep serving.
pub(crate) fn lock_ok<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

//! The content-addressed compiled-artifact cache.
//!
//! Artifacts are keyed on the FNV-1a hash of `(source text,
//! PipelineOptions, device profile)` — the full compilation input — so a
//! hit is sound by construction: any byte of source, any switch of the
//! pipeline, or a different target profile changes the key. Entries are
//! `Arc`-shared so concurrent jobs can execute the same artifact while
//! the cache lock is released.
//!
//! Beyond artifacts, the cache carries what admission control *learns*:
//! the measured peak bytes of finished runs, keyed per artifact and
//! argument-shape signature. The static predictor
//! ([`futhark_gpu::predict_peak_bytes`]) is a lower bound; a learned
//! measured peak is exact for the same artifact and shapes, so it takes
//! precedence on the next submission.
//!
//! Hit/miss counters are fields of this struct — per daemon, never
//! process-global (the warpstats lesson: a long-lived server can host
//! many tenants, and their statistics must not bleed together).

use crate::hash::Fnv1a;
use futhark::{Compiled, DeviceProfile, PipelineOptions, Schedule};
use futhark_core::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when the cache is cold).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    artifact: Arc<Compiled>,
    /// LRU clock value of the last touch.
    last_used: u64,
}

/// The content-addressed artifact cache plus learned peak footprints.
pub struct ArtifactCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry>,
    /// Measured peak bytes per `(artifact key, argument-shape signature)`.
    learned_peaks: HashMap<(u64, String), u64>,
    stats: CacheStats,
}

/// The content-addressed key of one compilation input.
pub fn artifact_key(source: &str, opts: &PipelineOptions, device: &DeviceProfile) -> u64 {
    artifact_key_sched(source, &opts.to_schedule(), device)
}

/// The content-addressed key of one compilation input, keyed on the full
/// [`Schedule`]. The schedule's canonical label is collision-free by
/// construction, so two distinct schedules can never share a key for the
/// same source and device.
pub fn artifact_key_sched(source: &str, sched: &Schedule, device: &DeviceProfile) -> u64 {
    let mut h = Fnv1a::default();
    h.update_str(source);
    h.update_str(&sched.label());
    h.update_str(&device.name);
    h.update(&device.global_mem_bytes.to_le_bytes());
    h.update(&(device.num_cus as u64).to_le_bytes());
    h.update(&(device.group_size as u64).to_le_bytes());
    h.finish()
}

/// The shape signature of an argument list: scalar types and array
/// shapes, without the data. Two calls with the same signature allocate
/// identically, so a measured peak transfers between them.
pub fn shape_signature(args: &[Value]) -> String {
    let mut s = String::new();
    for a in args {
        match a {
            Value::Scalar(k) => {
                // Integral scalars feed size computations, so their
                // *values* are part of the signature; other scalars only
                // contribute their type.
                match k.as_i64() {
                    Some(v) => s.push_str(&format!("{v};")),
                    None => s.push_str(&format!("{:?};", k.scalar_type())),
                }
            }
            Value::Array(arr) => {
                s.push_str(&format!("{:?}{:?};", arr.elem_type(), arr.shape));
            }
        }
    }
    s
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts.
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            capacity: capacity.max(1),
            clock: 0,
            entries: HashMap::new(),
            learned_peaks: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up an artifact, counting a hit or miss.
    pub fn get(&mut self, key: u64) -> Option<Arc<Compiled>> {
        self.clock += 1;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.last_used = self.clock;
                self.stats.hits += 1;
                Some(Arc::clone(&e.artifact))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly compiled artifact, evicting the least recently
    /// used entry when full.
    pub fn insert(&mut self, key: u64, artifact: Arc<Compiled>) {
        self.clock += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
                self.learned_peaks.retain(|(k, _), _| *k != victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                artifact,
                last_used: self.clock,
            },
        );
    }

    /// Records the measured peak of a finished run.
    pub fn learn_peak(&mut self, key: u64, sig: &str, measured: u64) {
        let e = self
            .learned_peaks
            .entry((key, sig.to_string()))
            .or_insert(0);
        *e = (*e).max(measured);
    }

    /// A previously measured peak for this artifact and shape signature.
    pub fn learned_peak(&self, key: u64, sig: &str) -> Option<u64> {
        self.learned_peaks.get(&(key, sig.to_string())).copied()
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futhark::{Compiler, Device};

    fn compile(src: &str) -> Arc<Compiled> {
        Arc::new(Compiler::new().compile(src).expect("compiles"))
    }

    #[test]
    fn keys_separate_source_options_and_device() {
        let gtx = Device::Gtx780.profile();
        let amd = Device::W8100.profile();
        let a = artifact_key(
            "fun main (x: i64): i64 = x",
            &PipelineOptions::default(),
            &gtx,
        );
        let b = artifact_key(
            "fun main (x: i64): i64 = x + 1",
            &PipelineOptions::default(),
            &gtx,
        );
        let c = artifact_key(
            "fun main (x: i64): i64 = x",
            &PipelineOptions {
                fusion: false,
                ..PipelineOptions::default()
            },
            &gtx,
        );
        let d = artifact_key(
            "fun main (x: i64): i64 = x",
            &PipelineOptions::default(),
            &amd,
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(
            a,
            artifact_key(
                "fun main (x: i64): i64 = x",
                &PipelineOptions::default(),
                &gtx
            )
        );
    }

    #[test]
    fn lru_evicts_the_oldest_and_counts() {
        let mut cache = ArtifactCache::new(2);
        let art = compile("fun main (x: i64): i64 = x");
        cache.insert(1, Arc::clone(&art));
        cache.insert(2, Arc::clone(&art));
        assert!(cache.get(1).is_some()); // 1 is now fresher than 2
        cache.insert(3, art); // evicts 2
        assert!(cache.get(2).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn learned_peaks_key_on_shapes_and_keep_the_max() {
        use futhark_core::ArrayVal;
        let mut cache = ArtifactCache::new(2);
        let sig_a =
            shape_signature(&[Value::i64(8), Value::Array(ArrayVal::from_i64s(vec![0; 8]))]);
        let sig_b = shape_signature(&[
            Value::i64(16),
            Value::Array(ArrayVal::from_i64s(vec![0; 16])),
        ]);
        assert_ne!(sig_a, sig_b);
        // Same shapes, different data: same signature.
        assert_eq!(
            sig_a,
            shape_signature(&[Value::i64(8), Value::Array(ArrayVal::from_i64s(vec![7; 8]))])
        );
        cache.learn_peak(1, &sig_a, 100);
        cache.learn_peak(1, &sig_a, 80);
        assert_eq!(cache.learned_peak(1, &sig_a), Some(100));
        assert_eq!(cache.learned_peak(1, &sig_b), None);
    }
}

//! The flight recorder: a bounded ring buffer of structured per-job
//! lifecycle events.
//!
//! Every `run` job emits events as it moves through the daemon —
//! `received` → `admitted`/`rejected` → `started(device)` →
//! `finished`/`failed` — each stamped with a monotone sequence number
//! and a timestamp relative to daemon start. The ring keeps the most
//! recent [`FlightRecorder::capacity`] events (old ones are dropped, and
//! the drop count is reported), while *totals per event kind* are
//! tracked unboundedly, so ledger invariants ("finished + failed-run
//! events == jobs admitted") survive ring overflow.
//!
//! The recorder is also the source of the daemon timeline: a
//! [`chrome_trace`] export lays jobs out on one track per device plus a
//! queue track (with a queue-depth counter track), loadable in Perfetto.

use futhark_trace::{ChromeTrace, Counters, Json};
use std::collections::VecDeque;

/// One recorded lifecycle step of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// Monotone sequence number over the daemon's lifetime (0-based).
    pub seq: u64,
    /// Microseconds since daemon start.
    pub ts_us: f64,
    /// The job's correlation id.
    pub job: String,
    /// What happened.
    pub kind: EventKind,
}

/// The lifecycle step taken.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// The run request was parsed and registered in flight.
    Received,
    /// Admission rejected the job: no device fits the prediction.
    Rejected {
        /// Predicted peak device bytes.
        predicted_peak_bytes: u64,
        /// The largest capacity in the pool.
        capacity: u64,
    },
    /// Admission passed; the job joins the device queue.
    Admitted {
        /// Content-addressed artifact key.
        artifact_key: u64,
        /// Argument shape signature.
        shapes: String,
        /// Whether the artifact cache served the compile.
        cache_hit: bool,
        /// Predicted peak device bytes (learned or static bound).
        predicted_peak_bytes: u64,
        /// Jobs already waiting for a device slot at admission time.
        queue_depth: u64,
    },
    /// A device slot was acquired; execution begins.
    Started {
        /// Pool index of the executing device.
        device: usize,
    },
    /// Execution completed within capacity.
    Finished {
        /// Pool index of the executing device.
        device: usize,
        /// The admission-time prediction, for comparison.
        predicted_peak_bytes: u64,
        /// Measured peak device bytes.
        measured_peak_bytes: u64,
        /// Modelled execution time, microseconds.
        total_us: f64,
    },
    /// The job failed; `stage` says where (`compile`, `run`, or
    /// `capacity` for post-run capacity violations).
    Failed {
        /// Failure stage.
        stage: &'static str,
        /// Executing device, when one was assigned.
        device: Option<usize>,
    },
}

impl EventKind {
    /// The event's wire/counter name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Received => "received",
            EventKind::Rejected { .. } => "rejected",
            EventKind::Admitted { .. } => "admitted",
            EventKind::Started { .. } => "started",
            EventKind::Finished { .. } => "finished",
            EventKind::Failed { .. } => "failed",
        }
    }
}

impl JobEvent {
    /// Serialises one event (flat object; kind-specific fields inline).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seq", Json::U64(self.seq)),
            ("ts_us", Json::F64(self.ts_us)),
            ("job", Json::Str(self.job.clone())),
            ("event", Json::Str(self.kind.name().into())),
        ];
        match &self.kind {
            EventKind::Received => {}
            EventKind::Rejected {
                predicted_peak_bytes,
                capacity,
            } => {
                pairs.push(("predicted_peak_bytes", Json::U64(*predicted_peak_bytes)));
                pairs.push(("capacity", Json::U64(*capacity)));
            }
            EventKind::Admitted {
                artifact_key,
                shapes,
                cache_hit,
                predicted_peak_bytes,
                queue_depth,
            } => {
                pairs.push(("artifact_key", Json::U64(*artifact_key)));
                pairs.push(("shapes", Json::Str(shapes.clone())));
                pairs.push(("cache_hit", Json::Bool(*cache_hit)));
                pairs.push(("predicted_peak_bytes", Json::U64(*predicted_peak_bytes)));
                pairs.push(("queue_depth", Json::U64(*queue_depth)));
            }
            EventKind::Started { device } => {
                pairs.push(("device", Json::U64(*device as u64)));
            }
            EventKind::Finished {
                device,
                predicted_peak_bytes,
                measured_peak_bytes,
                total_us,
            } => {
                pairs.push(("device", Json::U64(*device as u64)));
                pairs.push(("predicted_peak_bytes", Json::U64(*predicted_peak_bytes)));
                pairs.push(("measured_peak_bytes", Json::U64(*measured_peak_bytes)));
                pairs.push(("total_us", Json::F64(*total_us)));
            }
            EventKind::Failed { stage, device } => {
                pairs.push(("stage", Json::Str((*stage).into())));
                if let Some(d) = device {
                    pairs.push(("device", Json::U64(*d as u64)));
                }
            }
        }
        Json::obj(pairs)
    }
}

/// The bounded ring of recent events plus unbounded per-kind totals.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<JobEvent>,
    next_seq: u64,
    dropped: u64,
    totals: Counters,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
            totals: Counters::new(),
        }
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one lifecycle event, evicting the oldest when full.
    pub fn record(&mut self, ts_us: f64, job: &str, kind: EventKind) {
        self.totals.bump(kind.name());
        let ev = JobEvent {
            seq: self.next_seq,
            ts_us,
            job: job.to_string(),
            kind,
        };
        self.next_seq += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Events recorded over the daemon's lifetime.
    pub fn total_events(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Lifetime totals per event kind (`received`, `admitted`, …) —
    /// unaffected by ring eviction.
    pub fn totals(&self) -> &Counters {
        &self.totals
    }

    /// The most recent `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<&JobEvent> {
        let skip = self.ring.len().saturating_sub(n);
        self.ring.iter().skip(skip).collect()
    }

    /// Serialises the recorder: totals, drop accounting, and the last
    /// `tail_n` events.
    pub fn to_json(&self, tail_n: usize) -> Json {
        Json::obj(vec![
            ("capacity", Json::U64(self.capacity as u64)),
            ("total_events", Json::U64(self.total_events())),
            ("dropped", Json::U64(self.dropped)),
            ("totals", self.totals.to_json()),
            (
                "events",
                Json::Arr(self.tail(tail_n).iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }

    /// Exports the ring as a Chrome/Perfetto timeline: one track per
    /// device (execution slices, predicted vs measured bytes in the
    /// detail pane), one queue track (admission → start wait slices),
    /// and a queue-depth counter track sampled at each admission. Jobs
    /// whose start or end events were evicted from the ring are skipped.
    pub fn chrome_trace(&self, device_names: &[String]) -> ChromeTrace {
        const PID: u64 = 1;
        const QUEUE_TID: u64 = 0;
        let mut t = ChromeTrace::new();
        t.name_lane(PID, QUEUE_TID, "queue");
        for (i, name) in device_names.iter().enumerate() {
            t.name_lane(PID, 1 + i as u64, &format!("device {name}"));
        }
        // Collect per-job milestones from whatever survives in the ring.
        struct Times {
            admitted: Option<f64>,
            started: Option<(f64, usize)>,
        }
        let mut jobs: std::collections::HashMap<&str, Times> = std::collections::HashMap::new();
        for ev in &self.ring {
            let entry = jobs.entry(ev.job.as_str()).or_insert(Times {
                admitted: None,
                started: None,
            });
            match &ev.kind {
                EventKind::Admitted { queue_depth, .. } => {
                    entry.admitted = Some(ev.ts_us);
                    t.counter("queue_depth", PID, QUEUE_TID, ev.ts_us, *queue_depth);
                }
                EventKind::Started { device } => entry.started = Some((ev.ts_us, *device)),
                EventKind::Finished {
                    device,
                    predicted_peak_bytes,
                    measured_peak_bytes,
                    total_us,
                } => {
                    if let Some((t0, d)) = entry.started {
                        debug_assert_eq!(d, *device);
                        t.complete(
                            &ev.job,
                            "job",
                            PID,
                            1 + *device as u64,
                            t0,
                            (ev.ts_us - t0).max(0.0),
                            vec![
                                ("predicted_peak_bytes", Json::U64(*predicted_peak_bytes)),
                                ("measured_peak_bytes", Json::U64(*measured_peak_bytes)),
                                ("modelled_us", Json::F64(*total_us)),
                            ],
                        );
                    }
                    if let Some(ta) = entry.admitted {
                        if let Some((t0, _)) = entry.started {
                            t.complete(
                                &format!("{} (queued)", ev.job),
                                "queue",
                                PID,
                                QUEUE_TID,
                                ta,
                                (t0 - ta).max(0.0),
                                vec![],
                            );
                        }
                    }
                }
                EventKind::Failed {
                    device: Some(d), ..
                } => {
                    if let Some((t0, _)) = entry.started {
                        t.complete(
                            &format!("{} (failed)", ev.job),
                            "job",
                            PID,
                            1 + *d as u64,
                            t0,
                            (ev.ts_us - t0).max(0.0),
                            vec![],
                        );
                    }
                }
                _ => {}
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_but_totals_do_not() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10 {
            r.record(i as f64, &format!("j{i}"), EventKind::Received);
        }
        assert_eq!(r.tail(100).len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.total_events(), 10);
        assert_eq!(r.totals().get("received"), 10);
        // Tail is the most recent events, oldest first.
        let seqs: Vec<u64> = r.tail(2).iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![8, 9]);
    }

    #[test]
    fn events_serialise_with_kind_fields() {
        let mut r = FlightRecorder::new(8);
        r.record(
            1.0,
            "a",
            EventKind::Admitted {
                artifact_key: 0xfeed,
                shapes: "8;I64[8];".into(),
                cache_hit: true,
                predicted_peak_bytes: 64,
                queue_depth: 2,
            },
        );
        r.record(2.0, "a", EventKind::Started { device: 1 });
        let j = r.to_json(16);
        let evs = j.get("events").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].get("event").unwrap().as_str(), Some("admitted"));
        assert_eq!(evs[0].get("queue_depth").unwrap().as_u64(), Some(2));
        assert_eq!(evs[0].get("cache_hit"), Some(&Json::Bool(true)));
        assert_eq!(evs[1].get("device").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("total_events").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn chrome_trace_lays_jobs_on_device_and_queue_tracks() {
        let mut r = FlightRecorder::new(64);
        r.record(0.0, "a", EventKind::Received);
        r.record(
            1.0,
            "a",
            EventKind::Admitted {
                artifact_key: 1,
                shapes: String::new(),
                cache_hit: false,
                predicted_peak_bytes: 64,
                queue_depth: 0,
            },
        );
        r.record(5.0, "a", EventKind::Started { device: 0 });
        r.record(
            9.0,
            "a",
            EventKind::Finished {
                device: 0,
                predicted_peak_bytes: 64,
                measured_peak_bytes: 64,
                total_us: 3.0,
            },
        );
        let t = r.chrome_trace(&["gtx780#0".to_string()]);
        let doc = t.to_json();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 lane names + 1 counter + queue slice + device slice.
        assert_eq!(events.len(), 5);
        let device_slice = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("cat").and_then(Json::as_str) == Some("job")
            })
            .expect("device slice");
        assert_eq!(device_slice.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(device_slice.get("dur").unwrap().as_f64(), Some(4.0));
        assert!(events.iter().any(|e| {
            e.get("cat").and_then(Json::as_str) == Some("queue")
                && e.get("dur").and_then(Json::as_f64) == Some(4.0)
        }));
    }
}

//! The `futharkd` wire protocol: line-delimited JSON.
//!
//! Each request is one JSON object on one line; each response is one JSON
//! object on one line, correlated by the client-chosen `id`. Three
//! operations exist:
//!
//! - `{"op":"run", "id":..., "source":..., "args":[...], ...}` —
//!   compile (or hit the artifact cache) and execute a program.
//! - `{"op":"stats", "id":...}` — server counters: cache hits/misses,
//!   jobs completed/rejected/failed, per-device capacities.
//! - `{"op":"metrics", "id":..., "format":..., "tail":...}` — the full
//!   telemetry registry. `format` is `"json"` (default: counters,
//!   gauges, latency histograms, per-device counters, and the flight
//!   recorder's most recent `tail` events), `"prometheus"` (the
//!   plaintext exposition under a `text` key), or `"chrome"` (the
//!   daemon timeline as a Chrome/Perfetto trace document).
//! - `{"op":"shutdown", "id":...}` — stop accepting work, drain the
//!   queue, reply, exit.
//!
//! Values cross the wire in a typed encoding: scalars as
//! `{"i64": 42}` / `{"f32": 1.5}` / `{"bool": true}` …, arrays as
//! `{"array": {"elem": "i64", "shape": [2,3], "data": [...]}}`.
//!
//! A successful `run` response carries the outputs, a span list (wall
//! timings per stage; the `compile` span is **absent** on a cache hit),
//! the cache verdict, the admission prediction, and a perf summary. A
//! failed `run` carries a structured error with a `kind` of
//! `"admission"`, `"compile"`, `"run"`, or `"protocol"`; admission
//! errors include `predicted_peak_bytes` and the best device `capacity`
//! the job did not fit.

use futhark::{schedule_from_json, PipelineOptions, Schedule, SimEngine};
use futhark_core::{ArrayVal, Buffer, Scalar, ScalarType, Value};
use futhark_trace::Json;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile-and-execute (boxed: a run carries source, args, and an
    /// optional schedule, far larger than the control-plane variants).
    Run(Box<RunRequest>),
    /// Server counters.
    Stats {
        /// Correlation id.
        id: String,
    },
    /// The telemetry registry and flight recorder.
    Metrics {
        /// Correlation id.
        id: String,
        /// Requested rendering.
        format: MetricsFormat,
        /// Flight-recorder tail length for the JSON format.
        tail: usize,
    },
    /// Drain and exit.
    Shutdown {
        /// Correlation id.
        id: String,
    },
}

/// The rendering of a `metrics` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The full registry as JSON (default).
    Json,
    /// Prometheus plaintext exposition (under a `text` key).
    Prometheus,
    /// The daemon timeline as a Chrome/Perfetto trace document.
    Chrome,
}

/// A `run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// Futhark source text (must define `main`).
    pub source: String,
    /// Entry arguments.
    pub args: Vec<Value>,
    /// Pipeline configuration (defaults to everything on).
    pub options: PipelineOptions,
    /// Explicit compilation schedule. When present it subsumes
    /// `options`; when absent the pipeline derives the schedule from
    /// `options` (the default schedule for default options).
    pub schedule: Option<Schedule>,
    /// Host worker threads for group execution (default 1 — a server
    /// parallelises across jobs, not within them).
    pub threads: usize,
    /// Group-execution engine (default warp).
    pub engine: SimEngine,
    /// Whether to collect per-site profile counters.
    pub profile: bool,
}

/// One timed stage of a job's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stage name: `queue`, `compile`, or `execute`.
    pub name: &'static str,
    /// Wall-clock duration in microseconds.
    pub us: f64,
}

/// Structured failure categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Rejected before execution: the predicted footprint fits no device.
    Admission,
    /// The pipeline rejected the program.
    Compile,
    /// Execution failed (including post-run capacity violations).
    Run,
    /// The request line was not a valid protocol message.
    Protocol,
}

impl ErrorKind {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Admission => "admission",
            ErrorKind::Compile => "compile",
            ErrorKind::Run => "run",
            ErrorKind::Protocol => "protocol",
        }
    }
}

/// A server response.
#[derive(Debug, Clone)]
pub enum Response {
    /// A completed `run`.
    RunOk {
        /// Echoed correlation id.
        id: String,
        /// Entry results.
        outputs: Vec<Value>,
        /// Timed stages; no `compile` span on a cache hit.
        spans: Vec<Span>,
        /// Whether the artifact cache served the compile.
        cache_hit: bool,
        /// The admission-time footprint prediction (bytes).
        predicted_peak_bytes: u64,
        /// The device the job ran on.
        device: String,
        /// Admitted jobs already waiting for a device slot when this job
        /// joined the queue — a single response explains its own
        /// latency without a `metrics` scrape.
        queue_depth_at_admission: u64,
        /// Measured peak device bytes.
        measured_peak_bytes: u64,
        /// Modelled execution time in microseconds.
        total_us: f64,
    },
    /// A failed request.
    Error {
        /// Echoed correlation id (empty if the line had none).
        id: String,
        /// Failure category.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
        /// For admission errors: the predicted footprint.
        predicted_peak_bytes: Option<u64>,
        /// For admission/run capacity errors: the largest capacity tried.
        capacity: Option<u64>,
    },
    /// Server counters.
    Stats {
        /// Echoed correlation id.
        id: String,
        /// The counters object (already JSON-shaped).
        body: Json,
    },
    /// The telemetry registry.
    Metrics {
        /// Echoed correlation id.
        id: String,
        /// The rendered registry (shape depends on the requested
        /// [`MetricsFormat`]).
        body: Json,
    },
    /// Shutdown acknowledged; the queue has drained.
    ShutdownOk {
        /// Echoed correlation id.
        id: String,
        /// Jobs completed over the server's lifetime.
        jobs_completed: u64,
    },
}

/// Encodes a value for the wire.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Scalar(s) => scalar_to_json(s),
        Value::Array(a) => Json::obj(vec![(
            "array",
            Json::obj(vec![
                ("elem", Json::Str(elem_name(a.elem_type()).into())),
                (
                    "shape",
                    Json::Arr(a.shape.iter().map(|&d| Json::U64(d as u64)).collect()),
                ),
                ("data", buffer_to_json(&a.data)),
            ]),
        )]),
    }
}

fn scalar_to_json(s: &Scalar) -> Json {
    match s {
        Scalar::Bool(b) => Json::obj(vec![("bool", Json::Bool(*b))]),
        Scalar::I32(k) => Json::obj(vec![("i32", Json::I64(*k as i64))]),
        Scalar::I64(k) => Json::obj(vec![("i64", Json::I64(*k))]),
        Scalar::F32(x) => Json::obj(vec![("f32", Json::F64(*x as f64))]),
        Scalar::F64(x) => Json::obj(vec![("f64", Json::F64(*x))]),
    }
}

fn buffer_to_json(b: &Buffer) -> Json {
    Json::Arr(match b {
        Buffer::Bool(v) => v.iter().map(|&x| Json::Bool(x)).collect(),
        Buffer::I32(v) => v.iter().map(|&x| Json::I64(x as i64)).collect(),
        Buffer::I64(v) => v.iter().map(|&x| Json::I64(x)).collect(),
        Buffer::F32(v) => v.iter().map(|&x| Json::F64(x as f64)).collect(),
        Buffer::F64(v) => v.iter().map(|&x| Json::F64(x)).collect(),
    })
}

fn elem_name(t: ScalarType) -> &'static str {
    match t {
        ScalarType::Bool => "bool",
        ScalarType::I32 => "i32",
        ScalarType::I64 => "i64",
        ScalarType::F32 => "f32",
        ScalarType::F64 => "f64",
    }
}

fn elem_of_name(s: &str) -> Option<ScalarType> {
    Some(match s {
        "bool" => ScalarType::Bool,
        "i32" => ScalarType::I32,
        "i64" => ScalarType::I64,
        "f32" => ScalarType::F32,
        "f64" => ScalarType::F64,
        _ => return None,
    })
}

/// Decodes a wire value.
pub fn value_from_json(j: &Json) -> Option<Value> {
    if let Some(a) = j.get("array") {
        let elem = elem_of_name(a.get("elem")?.as_str()?)?;
        let shape: Vec<usize> = a
            .get("shape")?
            .as_arr()?
            .iter()
            .map(|d| d.as_u64().map(|d| d as usize))
            .collect::<Option<_>>()?;
        let data = a.get("data")?.as_arr()?;
        if shape.iter().product::<usize>() != data.len() {
            return None;
        }
        let buf = match elem {
            ScalarType::Bool => Buffer::Bool(
                data.iter()
                    .map(|x| match x {
                        Json::Bool(b) => Some(*b),
                        _ => None,
                    })
                    .collect::<Option<_>>()?,
            ),
            ScalarType::I32 => Buffer::I32(
                data.iter()
                    .map(|x| as_i64(x).and_then(|k| i32::try_from(k).ok()))
                    .collect::<Option<_>>()?,
            ),
            ScalarType::I64 => Buffer::I64(data.iter().map(as_i64).collect::<Option<_>>()?),
            ScalarType::F32 => Buffer::F32(
                data.iter()
                    .map(|x| x.as_f64().map(|f| f as f32))
                    .collect::<Option<_>>()?,
            ),
            ScalarType::F64 => Buffer::F64(data.iter().map(Json::as_f64).collect::<Option<_>>()?),
        };
        return Some(Value::Array(ArrayVal::new(shape, buf)));
    }
    let s = if let Some(b) = j.get("bool") {
        match b {
            Json::Bool(x) => Scalar::Bool(*x),
            _ => return None,
        }
    } else if let Some(k) = j.get("i32") {
        Scalar::I32(i32::try_from(as_i64(k)?).ok()?)
    } else if let Some(k) = j.get("i64") {
        Scalar::I64(as_i64(k)?)
    } else if let Some(x) = j.get("f32") {
        Scalar::F32(x.as_f64()? as f32)
    } else if let Some(x) = j.get("f64") {
        Scalar::F64(x.as_f64()?)
    } else {
        return None;
    };
    Some(Value::Scalar(s))
}

fn as_i64(j: &Json) -> Option<i64> {
    match j {
        Json::I64(k) => Some(*k),
        Json::U64(k) => i64::try_from(*k).ok(),
        _ => None,
    }
}

/// Parses a request line. `Err` carries a protocol-error message (and the
/// correlation id when one was recoverable).
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let j = Json::parse(line).map_err(|e| (String::new(), format!("invalid JSON: {e}")))?;
    let id = j
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| (id.clone(), "missing \"op\"".to_string()))?;
    match op {
        "stats" => Ok(Request::Stats { id }),
        "metrics" => {
            let format = match j.get("format").and_then(Json::as_str) {
                None | Some("json") => MetricsFormat::Json,
                Some("prometheus") => MetricsFormat::Prometheus,
                Some("chrome") => MetricsFormat::Chrome,
                Some(other) => {
                    return Err((id, format!("metrics: unknown format {other:?}")));
                }
            };
            let tail = match j.get("tail") {
                Some(t) => t
                    .as_u64()
                    .ok_or_else(|| (id.clone(), "metrics: \"tail\" must be >= 0".to_string()))?
                    as usize,
                None => 64,
            };
            Ok(Request::Metrics { id, format, tail })
        }
        "shutdown" => Ok(Request::Shutdown { id }),
        "run" => {
            let source = j
                .get("source")
                .and_then(Json::as_str)
                .ok_or_else(|| (id.clone(), "run: missing \"source\"".to_string()))?
                .to_string();
            let args = match j.get("args") {
                Some(a) => a
                    .as_arr()
                    .ok_or_else(|| (id.clone(), "run: \"args\" must be an array".to_string()))?
                    .iter()
                    .map(value_from_json)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| (id.clone(), "run: malformed argument value".to_string()))?,
                None => Vec::new(),
            };
            let options = match j.get("options") {
                Some(o) => options_from_json(o)
                    .ok_or_else(|| (id.clone(), "run: malformed \"options\"".to_string()))?,
                None => PipelineOptions::default(),
            };
            let schedule = match j.get("schedule") {
                Some(s) => Some(
                    schedule_from_json(s)
                        .map_err(|e| (id.clone(), format!("run: malformed \"schedule\": {e}")))?,
                ),
                None => None,
            };
            let threads = match j.get("threads") {
                Some(t) => t
                    .as_u64()
                    .filter(|&t| t >= 1)
                    .ok_or_else(|| (id.clone(), "run: \"threads\" must be >= 1".to_string()))?
                    as usize,
                None => 1,
            };
            let engine = match j.get("engine").and_then(Json::as_str) {
                None => SimEngine::Warp,
                Some("warp") => SimEngine::Warp,
                Some("lane") => SimEngine::Lane,
                Some(other) => {
                    return Err((id, format!("run: unknown engine {other:?}")));
                }
            };
            let profile = matches!(j.get("profile"), Some(Json::Bool(true)));
            Ok(Request::Run(Box::new(RunRequest {
                id,
                source,
                args,
                options,
                schedule,
                threads,
                engine,
                profile,
            })))
        }
        other => Err((id, format!("unknown op {other:?}"))),
    }
}

/// Partial-object pipeline options: absent switches keep their defaults.
fn options_from_json(j: &Json) -> Option<PipelineOptions> {
    let mut o = PipelineOptions::default();
    for (k, v) in j.as_obj()? {
        let b = match v {
            Json::Bool(b) => *b,
            _ => return None,
        };
        match k.as_str() {
            "simplify" => o.simplify = b,
            "fusion" => o.fusion = b,
            "coalescing" => o.coalescing = b,
            "tiling" => o.tiling = b,
            "memplan" => o.memplan = b,
            "check" => o.check = b,
            _ => return None,
        }
    }
    Some(o)
}

impl Response {
    /// Renders the response as one compact JSON line (no newline).
    pub fn to_json(&self) -> Json {
        match self {
            Response::RunOk {
                id,
                outputs,
                spans,
                cache_hit,
                predicted_peak_bytes,
                device,
                queue_depth_at_admission,
                measured_peak_bytes,
                total_us,
            } => Json::obj(vec![
                ("id", Json::Str(id.clone())),
                ("status", Json::Str("ok".into())),
                (
                    "outputs",
                    Json::Arr(outputs.iter().map(value_to_json).collect()),
                ),
                (
                    "spans",
                    Json::Arr(
                        spans
                            .iter()
                            .map(|s| {
                                Json::obj(vec![
                                    ("name", Json::Str(s.name.into())),
                                    ("us", Json::F64(s.us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "cache",
                    Json::Str(if *cache_hit { "hit" } else { "miss" }.into()),
                ),
                ("predicted_peak_bytes", Json::U64(*predicted_peak_bytes)),
                ("device", Json::Str(device.clone())),
                (
                    "queue_depth_at_admission",
                    Json::U64(*queue_depth_at_admission),
                ),
                ("measured_peak_bytes", Json::U64(*measured_peak_bytes)),
                ("total_us", Json::F64(*total_us)),
            ]),
            Response::Error {
                id,
                kind,
                message,
                predicted_peak_bytes,
                capacity,
            } => {
                let mut pairs = vec![
                    ("id", Json::Str(id.clone())),
                    ("status", Json::Str("error".into())),
                    ("kind", Json::Str(kind.as_str().into())),
                    ("message", Json::Str(message.clone())),
                ];
                if let Some(p) = predicted_peak_bytes {
                    pairs.push(("predicted_peak_bytes", Json::U64(*p)));
                }
                if let Some(c) = capacity {
                    pairs.push(("capacity", Json::U64(*c)));
                }
                Json::obj(pairs)
            }
            Response::Stats { id, body } => Json::obj(vec![
                ("id", Json::Str(id.clone())),
                ("status", Json::Str("ok".into())),
                ("stats", body.clone()),
            ]),
            Response::Metrics { id, body } => Json::obj(vec![
                ("id", Json::Str(id.clone())),
                ("status", Json::Str("ok".into())),
                ("metrics", body.clone()),
            ]),
            Response::ShutdownOk { id, jobs_completed } => Json::obj(vec![
                ("id", Json::Str(id.clone())),
                ("status", Json::Str("ok".into())),
                ("shutdown", Json::Bool(true)),
                ("jobs_completed", Json::U64(*jobs_completed)),
            ]),
        }
    }

    /// Renders as a wire line.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        let vals = vec![
            Value::i64(-3),
            Value::Scalar(Scalar::Bool(true)),
            Value::Scalar(Scalar::F32(1.5)),
            Value::Scalar(Scalar::F64(-0.25)),
            Value::Scalar(Scalar::I32(7)),
            Value::Array(ArrayVal::from_i64s(vec![1, 2, 3])),
            Value::Array(ArrayVal::new(
                vec![2, 2],
                Buffer::F64(vec![0.5, 1.5, 2.5, 3.5]),
            )),
            Value::Array(ArrayVal::new(vec![2], Buffer::Bool(vec![true, false]))),
        ];
        for v in vals {
            let j = value_to_json(&v);
            let parsed = Json::parse(&j.render()).expect("valid JSON");
            let back = value_from_json(&parsed).expect("decodes");
            assert!(v.bit_eq(&back), "{v:?} did not round-trip");
        }
    }

    #[test]
    fn run_request_parses_with_defaults() {
        let line =
            r#"{"op":"run","id":"j1","source":"fun main (x: i64): i64 = x","args":[{"i64":5}]}"#;
        match parse_request(line).expect("parses") {
            Request::Run(r) => {
                assert_eq!(r.id, "j1");
                assert_eq!(r.threads, 1);
                assert_eq!(r.engine, SimEngine::Warp);
                assert!(!r.profile);
                assert_eq!(r.options, PipelineOptions::default());
                assert_eq!(r.args, vec![Value::i64(5)]);
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn metrics_request_parses_formats_and_tail() {
        match parse_request(r#"{"op":"metrics","id":"m"}"#).expect("parses") {
            Request::Metrics { id, format, tail } => {
                assert_eq!(id, "m");
                assert_eq!(format, MetricsFormat::Json);
                assert_eq!(tail, 64);
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        match parse_request(r#"{"op":"metrics","id":"p","format":"prometheus","tail":5}"#)
            .expect("parses")
        {
            Request::Metrics { format, tail, .. } => {
                assert_eq!(format, MetricsFormat::Prometheus);
                assert_eq!(tail, 5);
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        match parse_request(r#"{"op":"metrics","id":"c","format":"chrome"}"#).expect("parses") {
            Request::Metrics { format, .. } => assert_eq!(format, MetricsFormat::Chrome),
            other => panic!("expected metrics, got {other:?}"),
        }
        let (id, msg) = parse_request(r#"{"op":"metrics","id":"x","format":"xml"}"#).unwrap_err();
        assert_eq!(id, "x");
        assert!(msg.contains("unknown format"));
    }

    #[test]
    fn malformed_lines_are_protocol_errors_with_recovered_ids() {
        assert!(parse_request("not json").is_err());
        let (id, msg) = parse_request(r#"{"id":"x","op":"nope"}"#).unwrap_err();
        assert_eq!(id, "x");
        assert!(msg.contains("unknown op"));
        let (id, _) = parse_request(r#"{"id":"y","op":"run"}"#).unwrap_err();
        assert_eq!(id, "y");
    }
}

//! The daemon: admission control, device-slot scheduling, and the
//! blocking request handler that the stdio and TCP front-ends share.
//!
//! ## Job lifecycle
//!
//! ```text
//! parse ──> compile (artifact cache) ──> admission ──> queue ──> execute
//!   │             │                          │            │         │
//!   │protocol err │compile err               │reject      │wait for │run err /
//!   ▼             ▼                          ▼ (predicted │a device ▼ capacity err
//!  error         error                      error  fits   │slot    error
//!                                           no device)    ▼
//! ```
//!
//! Admission compares the job's predicted peak device bytes — a learned
//! measured peak when this artifact has run on these argument shapes
//! before, otherwise the static lower bound
//! [`futhark_gpu::predict_peak_bytes`] — against each device's capacity.
//! A job that fits no device is rejected *before* any device time is
//! spent, with the prediction in the error. Admitted jobs block until a
//! device with sufficient capacity frees up, then execute against an
//! **uncapped** arena clone of that device, so the simulator's
//! `OutOfMemory` cannot fire mid-flight; if the measured peak turns out
//! to exceed the real capacity (the static bound is a lower bound, so
//! underprediction is possible), the job fails cleanly after the fact
//! and the measured peak is learned — the next submission with the same
//! artifact and shapes is rejected at admission.

use crate::cache::{artifact_key, shape_signature, ArtifactCache, CacheStats};
use crate::proto::{self, ErrorKind, Request, Response, RunRequest, Span};
use futhark::{Compiler, DeviceProfile, RunOptions};
use futhark_trace::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The simulated device pool; one job runs per device at a time.
    pub devices: Vec<DeviceProfile>,
    /// Maximum requests in flight (compiling or executing) at once.
    pub workers: usize,
    /// Artifact-cache capacity (entries).
    pub cache_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            devices: vec![DeviceProfile::gtx780()],
            workers: 4,
            cache_capacity: 128,
        }
    }
}

/// Lifetime counters, reported by the `stats` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs that ran to completion within capacity.
    pub jobs_completed: u64,
    /// Jobs rejected at admission.
    pub jobs_rejected: u64,
    /// Jobs that failed in compilation, execution, or post-run capacity
    /// accounting.
    pub jobs_failed: u64,
    /// Malformed request lines.
    pub protocol_errors: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

/// Scheduler state under the mutex: per-device busy flags and the
/// in-flight job count the drain waits on.
struct Sched {
    busy: Vec<bool>,
    inflight: u64,
    draining: bool,
}

struct Inner {
    cfg: DaemonConfig,
    cache: Mutex<ArtifactCache>,
    sched: Mutex<Sched>,
    cond: Condvar,
    counters: Mutex<ServeStats>,
    /// Set once a shutdown response has been sent; front-ends exit.
    stopped: AtomicBool,
}

/// The persistent compile-and-execute service. Cheap to clone-by-`Arc`;
/// [`Daemon::handle`] is blocking and safe to call from many threads.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
}

impl Daemon {
    /// Builds a daemon over a device pool.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn new(cfg: DaemonConfig) -> Daemon {
        assert!(!cfg.devices.is_empty(), "daemon needs at least one device");
        let n = cfg.devices.len();
        let cache_capacity = cfg.cache_capacity;
        Daemon {
            inner: Arc::new(Inner {
                cfg,
                cache: Mutex::new(ArtifactCache::new(cache_capacity)),
                sched: Mutex::new(Sched {
                    busy: vec![false; n],
                    inflight: 0,
                    draining: false,
                }),
                cond: Condvar::new(),
                counters: Mutex::new(ServeStats::default()),
                stopped: AtomicBool::new(false),
            }),
        }
    }

    /// The device class admission and compilation are resolved against:
    /// the most capacious profile in the pool (for a homogeneous pool,
    /// simply *the* profile).
    fn class_profile(&self) -> &DeviceProfile {
        self.inner
            .cfg
            .devices
            .iter()
            .max_by_key(|d| d.global_mem_bytes)
            .expect("non-empty pool")
    }

    /// Whether a shutdown has completed.
    pub fn stopped(&self) -> bool {
        self.inner.stopped.load(Ordering::SeqCst)
    }

    /// Jobs currently accepted and not yet answered (queued or running).
    pub fn inflight(&self) -> u64 {
        self.inner.sched.lock().expect("sched lock").inflight
    }

    /// Lifetime counters (including current cache stats).
    pub fn stats(&self) -> ServeStats {
        let mut s = *self.inner.counters.lock().expect("counters lock");
        s.cache = self.inner.cache.lock().expect("cache lock").stats();
        s
    }

    /// Handles one request, blocking until the response is ready. Safe to
    /// call concurrently; `run` jobs queue on the device pool.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Stats { id } => Response::Stats {
                id: id.clone(),
                body: self.stats_json(),
            },
            Request::Shutdown { id } => self.shutdown(id),
            Request::Run(r) => self.run(r),
        }
    }

    /// Parses and handles one wire line, returning the response line.
    pub fn handle_line(&self, line: &str) -> String {
        match proto::parse_request(line) {
            Ok(req) => self.handle(&req).render(),
            Err((id, message)) => {
                self.inner
                    .counters
                    .lock()
                    .expect("counters lock")
                    .protocol_errors += 1;
                Response::Error {
                    id,
                    kind: ErrorKind::Protocol,
                    message,
                    predicted_peak_bytes: None,
                    capacity: None,
                }
                .render()
            }
        }
    }

    fn stats_json(&self) -> Json {
        let s = self.stats();
        let sched = self.inner.sched.lock().expect("sched lock");
        let devices: Vec<Json> = self
            .inner
            .cfg
            .devices
            .iter()
            .zip(&sched.busy)
            .map(|(d, &busy)| {
                Json::obj(vec![
                    ("name", Json::Str(d.name.clone())),
                    ("capacity_bytes", Json::U64(d.global_mem_bytes)),
                    ("busy", Json::Bool(busy)),
                ])
            })
            .collect();
        let artifacts = self.inner.cache.lock().expect("cache lock").len();
        Json::obj(vec![
            ("jobs_completed", Json::U64(s.jobs_completed)),
            ("jobs_rejected", Json::U64(s.jobs_rejected)),
            ("jobs_failed", Json::U64(s.jobs_failed)),
            ("protocol_errors", Json::U64(s.protocol_errors)),
            ("inflight", Json::U64(sched.inflight)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::U64(s.cache.hits)),
                    ("misses", Json::U64(s.cache.misses)),
                    ("evictions", Json::U64(s.cache.evictions)),
                    ("hit_rate", Json::F64(s.cache.hit_rate())),
                    ("artifacts", Json::U64(artifacts as u64)),
                ]),
            ),
            ("devices", Json::Arr(devices)),
        ])
    }

    /// Drain: refuse new work, wait for in-flight jobs, acknowledge.
    fn shutdown(&self, id: &str) -> Response {
        let mut sched = self.inner.sched.lock().expect("sched lock");
        sched.draining = true;
        self.inner.cond.notify_all();
        while sched.inflight > 0 {
            sched = self.inner.cond.wait(sched).expect("sched lock");
        }
        drop(sched);
        self.inner.stopped.store(true, Ordering::SeqCst);
        Response::ShutdownOk {
            id: id.to_string(),
            jobs_completed: self.stats().jobs_completed,
        }
    }

    fn run(&self, r: &RunRequest) -> Response {
        // Register as in flight (or refuse when draining) before any
        // work, so a shutdown drains exactly the accepted jobs.
        {
            let mut sched = self.inner.sched.lock().expect("sched lock");
            if sched.draining {
                return Response::Error {
                    id: r.id.clone(),
                    kind: ErrorKind::Protocol,
                    message: "server is shutting down".into(),
                    predicted_peak_bytes: None,
                    capacity: None,
                };
            }
            sched.inflight += 1;
        }
        let resp = self.run_inflight(r);
        let mut sched = self.inner.sched.lock().expect("sched lock");
        sched.inflight -= 1;
        self.inner.cond.notify_all();
        drop(sched);
        resp
    }

    fn run_inflight(&self, r: &RunRequest) -> Response {
        let mut spans = Vec::new();
        let class = self.class_profile().clone();
        let key = artifact_key(&r.source, &r.options, &class);

        // Compile, or hit the artifact cache. The lock is held only for
        // the lookup/insert, not for compilation — concurrent misses of
        // the same key may compile twice, but both insert the same
        // content-addressed artifact, so the race is benign.
        let cached = self.inner.cache.lock().expect("cache lock").get(key);
        let (artifact, cache_hit) = match cached {
            Some(a) => (a, true),
            None => {
                let t0 = Instant::now();
                let compiled = Compiler::with_options(r.options).compile(&r.source);
                let us = t0.elapsed().as_secs_f64() * 1e6;
                match compiled {
                    Ok(c) => {
                        spans.push(Span {
                            name: "compile",
                            us,
                        });
                        let a = Arc::new(c);
                        self.inner
                            .cache
                            .lock()
                            .expect("cache lock")
                            .insert(key, Arc::clone(&a));
                        (a, false)
                    }
                    Err(e) => {
                        self.inner
                            .counters
                            .lock()
                            .expect("counters lock")
                            .jobs_failed += 1;
                        return Response::Error {
                            id: r.id.clone(),
                            kind: ErrorKind::Compile,
                            message: e.to_string(),
                            predicted_peak_bytes: None,
                            capacity: None,
                        };
                    }
                }
            }
        };

        // Admission: learned measured peak (exact for these shapes) or
        // the static lower bound.
        let sig = shape_signature(&r.args);
        let predicted = {
            let cache = self.inner.cache.lock().expect("cache lock");
            cache.learned_peak(key, &sig)
        }
        .unwrap_or_else(|| {
            futhark_gpu::predict_peak_bytes(&artifact.plan, &class, &r.args).peak_bytes
        });
        let best_capacity = class.global_mem_bytes;
        if !self
            .inner
            .cfg
            .devices
            .iter()
            .any(|d| predicted <= d.global_mem_bytes)
        {
            self.inner
                .counters
                .lock()
                .expect("counters lock")
                .jobs_rejected += 1;
            return Response::Error {
                id: r.id.clone(),
                kind: ErrorKind::Admission,
                message: format!(
                    "predicted peak {predicted} bytes exceeds every device \
                     capacity (best {best_capacity} bytes)"
                ),
                predicted_peak_bytes: Some(predicted),
                capacity: Some(best_capacity),
            };
        }

        // Queue for a device whose capacity covers the prediction.
        let tq = Instant::now();
        let dev_idx = {
            let mut sched = self.inner.sched.lock().expect("sched lock");
            loop {
                let free = (0..self.inner.cfg.devices.len()).find(|&i| {
                    !sched.busy[i] && predicted <= self.inner.cfg.devices[i].global_mem_bytes
                });
                match free {
                    Some(i) => {
                        sched.busy[i] = true;
                        break i;
                    }
                    None => sched = self.inner.cond.wait(sched).expect("sched lock"),
                }
            }
        };
        spans.push(Span {
            name: "queue",
            us: tq.elapsed().as_secs_f64() * 1e6,
        });

        // Execute against an uncapped arena: admission already vouched
        // for the footprint, and removing the cap makes a mid-flight
        // OutOfMemory structurally impossible — underprediction surfaces
        // as a clean post-run capacity failure instead.
        let device = &self.inner.cfg.devices[dev_idx];
        let mut uncapped = device.clone();
        uncapped.global_mem_bytes = u64::MAX;
        let opts = RunOptions {
            threads: r.threads,
            profile: r.profile,
            engine: r.engine,
        };
        let te = Instant::now();
        let result = artifact.run_on_with_opts(&uncapped, &r.args, opts);
        spans.push(Span {
            name: "execute",
            us: te.elapsed().as_secs_f64() * 1e6,
        });

        // Release the device slot.
        {
            let mut sched = self.inner.sched.lock().expect("sched lock");
            sched.busy[dev_idx] = false;
            self.inner.cond.notify_all();
        }

        match result {
            Ok((outputs, perf)) => {
                let measured = perf.mem.peak_bytes;
                self.inner
                    .cache
                    .lock()
                    .expect("cache lock")
                    .learn_peak(key, &sig, measured);
                if measured > device.global_mem_bytes {
                    self.inner
                        .counters
                        .lock()
                        .expect("counters lock")
                        .jobs_failed += 1;
                    return Response::Error {
                        id: r.id.clone(),
                        kind: ErrorKind::Run,
                        message: format!(
                            "measured peak {measured} bytes exceeds device \
                             capacity {} (prediction was {predicted}; the \
                             measured peak is now learned, so resubmission \
                             is rejected at admission)",
                            device.global_mem_bytes
                        ),
                        predicted_peak_bytes: Some(predicted),
                        capacity: Some(device.global_mem_bytes),
                    };
                }
                self.inner
                    .counters
                    .lock()
                    .expect("counters lock")
                    .jobs_completed += 1;
                Response::RunOk {
                    id: r.id.clone(),
                    outputs,
                    spans,
                    cache_hit,
                    predicted_peak_bytes: predicted,
                    device: device.name.clone(),
                    measured_peak_bytes: measured,
                    total_us: perf.total_us,
                }
            }
            Err(e) => {
                self.inner
                    .counters
                    .lock()
                    .expect("counters lock")
                    .jobs_failed += 1;
                Response::Error {
                    id: r.id.clone(),
                    kind: ErrorKind::Run,
                    message: e.to_string(),
                    predicted_peak_bytes: Some(predicted),
                    capacity: Some(device.global_mem_bytes),
                }
            }
        }
    }
}

/// Serves line-delimited JSON over a reader/writer pair (the stdio
/// front-end, also used over TCP streams). Requests are handled
/// concurrently up to the configured worker count; responses are written
/// as they complete (correlate by `id`). Returns after a `shutdown`
/// response has been written, or at end of input (which also drains).
pub fn serve_lines<R, W>(daemon: &Daemon, reader: R, writer: W) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let writer = Mutex::new(writer);
    let write_line = |line: &str| -> std::io::Result<()> {
        let mut w = writer.lock().expect("writer lock");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    };
    let workers = daemon.inner.cfg.workers.max(1);
    let slots = (Mutex::new(0usize), Condvar::new());
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut shutdown_line: Option<String> = None;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // A shutdown drains: stop dispatching, join the scope's
            // outstanding handlers (scope exit), then acknowledge.
            if matches!(proto::parse_request(&line), Ok(Request::Shutdown { .. })) {
                shutdown_line = Some(line);
                break;
            }
            // Throttle to `workers` concurrent handlers.
            {
                let mut active = slots.0.lock().expect("slots lock");
                while *active >= workers {
                    active = slots.1.wait(active).expect("slots lock");
                }
                *active += 1;
            }
            let daemon = daemon.clone();
            let write_line = &write_line;
            let slots = &slots;
            scope.spawn(move || {
                let resp = daemon.handle_line(&line);
                let _ = write_line(&resp);
                let mut active = slots.0.lock().expect("slots lock");
                *active -= 1;
                slots.1.notify_one();
            });
        }
        // Wait for all dispatched handlers before acknowledging the
        // shutdown (or returning at EOF).
        {
            let mut active = slots.0.lock().expect("slots lock");
            while *active > 0 {
                active = slots.1.wait(active).expect("slots lock");
            }
        }
        if let Some(line) = shutdown_line {
            write_line(&daemon.handle_line(&line))?;
        }
        Ok(())
    })
}

/// Serves connections on a TCP listener, one thread per connection, until
/// a `shutdown` request completes on any of them.
pub fn serve_tcp(daemon: &Daemon, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            if daemon.stopped() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let daemon = daemon.clone();
                    scope.spawn(move || {
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        });
                        let _ = serve_lines(&daemon, reader, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
    })
}

//! The daemon: admission control, device-slot scheduling, and the
//! blocking request handler that the stdio and TCP front-ends share.
//!
//! ## Job lifecycle
//!
//! ```text
//! parse ──> compile (artifact cache) ──> admission ──> queue ──> execute
//!   │             │                          │            │         │
//!   │protocol err │compile err               │reject      │wait for │run err /
//!   ▼             ▼                          ▼ (predicted │a device ▼ capacity err
//!  error         error                      error  fits   │slot    error
//!                                           no device)    ▼
//! ```
//!
//! Admission compares the job's predicted peak device bytes — a learned
//! measured peak when this artifact has run on these argument shapes
//! before, otherwise the static lower bound
//! [`futhark_gpu::predict_peak_bytes`] — against each device's capacity.
//! A job that fits no device is rejected *before* any device time is
//! spent, with the prediction in the error. Admitted jobs block until a
//! device with sufficient capacity frees up, then execute against an
//! **uncapped** arena clone of that device, so the simulator's
//! `OutOfMemory` cannot fire mid-flight; if the measured peak turns out
//! to exceed the real capacity (the static bound is a lower bound, so
//! underprediction is possible), the job fails cleanly after the fact
//! and the measured peak is learned — the next submission with the same
//! artifact and shapes is rejected at admission.
//!
//! ## Telemetry
//!
//! Every lifecycle edge above feeds the [`crate::metrics::Metrics`]
//! registry (counters, latency histograms for queue-wait / compile /
//! execute / end-to-end, per-device busy time) and the
//! [`crate::recorder::FlightRecorder`] ring (structured per-job events).
//! The `metrics` protocol op — and `futharkd --metrics` — surface the
//! registry as JSON, Prometheus text, or a Chrome/Perfetto daemon
//! timeline; `stats` is a compatibility projection of the same registry.
//! All daemon locks recover from poison ([`crate::lock_ok`]): one
//! panicking job thread must not wedge every future scrape.

use crate::cache::{artifact_key_sched, shape_signature, ArtifactCache, CacheStats};
use crate::lock_ok;
use crate::metrics::{registry_json, registry_prometheus, GaugeSet, Metrics};
use crate::proto::{self, ErrorKind, MetricsFormat, Request, Response, RunRequest, Span};
use crate::recorder::{EventKind, FlightRecorder};
use futhark::{Compiler, DeviceProfile, RunOptions};
use futhark_trace::{ChromeTrace, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// The simulated device pool; one job runs per device at a time.
    pub devices: Vec<DeviceProfile>,
    /// Maximum requests in flight (compiling or executing) at once.
    pub workers: usize,
    /// Artifact-cache capacity (entries).
    pub cache_capacity: usize,
    /// TCP accept-loop poll interval, milliseconds ([`serve_tcp`] sleeps
    /// this long when no connection is pending; each sleep counts one
    /// `accept.wakeups`).
    pub accept_poll_ms: u64,
    /// Flight-recorder ring capacity (events).
    pub recorder_capacity: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            devices: vec![DeviceProfile::gtx780()],
            workers: 4,
            cache_capacity: 128,
            accept_poll_ms: 20,
            recorder_capacity: 256,
        }
    }
}

/// Lifetime counters, reported by the `stats` op. Since the metrics
/// registry landed this is a *projection* of the registry, kept for
/// backward compatibility of the `stats` protocol op and embedders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs that ran to completion within capacity.
    pub jobs_completed: u64,
    /// Jobs rejected at admission.
    pub jobs_rejected: u64,
    /// Jobs that failed in compilation, execution, or post-run capacity
    /// accounting.
    pub jobs_failed: u64,
    /// Malformed request lines.
    pub protocol_errors: u64,
    /// Artifact-cache counters.
    pub cache: CacheStats,
}

/// Scheduler state under the mutex: per-device busy flags, the
/// in-flight job count the drain waits on, and the device-queue depth.
struct Sched {
    busy: Vec<bool>,
    inflight: u64,
    /// Admitted jobs currently blocked waiting for a device slot.
    waiting: u64,
    draining: bool,
}

struct Inner {
    cfg: DaemonConfig,
    cache: Mutex<ArtifactCache>,
    sched: Mutex<Sched>,
    cond: Condvar,
    metrics: Metrics,
    recorder: Mutex<FlightRecorder>,
    start: Instant,
    /// Set once a shutdown response has been sent; front-ends exit.
    stopped: AtomicBool,
}

/// The persistent compile-and-execute service. Cheap to clone-by-`Arc`;
/// [`Daemon::handle`] is blocking and safe to call from many threads.
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
}

impl Daemon {
    /// Builds a daemon over a device pool.
    ///
    /// # Panics
    /// Panics if the pool is empty.
    pub fn new(cfg: DaemonConfig) -> Daemon {
        assert!(!cfg.devices.is_empty(), "daemon needs at least one device");
        let n = cfg.devices.len();
        let cache_capacity = cfg.cache_capacity;
        let recorder_capacity = cfg.recorder_capacity;
        let device_names = cfg.devices.iter().map(|d| d.name.clone()).collect();
        Daemon {
            inner: Arc::new(Inner {
                cfg,
                cache: Mutex::new(ArtifactCache::new(cache_capacity)),
                sched: Mutex::new(Sched {
                    busy: vec![false; n],
                    inflight: 0,
                    waiting: 0,
                    draining: false,
                }),
                cond: Condvar::new(),
                metrics: Metrics::new(device_names),
                recorder: Mutex::new(FlightRecorder::new(recorder_capacity)),
                start: Instant::now(),
                stopped: AtomicBool::new(false),
            }),
        }
    }

    /// The device class admission and compilation are resolved against:
    /// the most capacious profile in the pool (for a homogeneous pool,
    /// simply *the* profile).
    fn class_profile(&self) -> &DeviceProfile {
        self.inner
            .cfg
            .devices
            .iter()
            .max_by_key(|d| d.global_mem_bytes)
            .expect("non-empty pool")
    }

    /// Whether a shutdown has completed.
    pub fn stopped(&self) -> bool {
        self.inner.stopped.load(Ordering::SeqCst)
    }

    /// Jobs currently accepted and not yet answered (queued or running).
    pub fn inflight(&self) -> u64 {
        lock_ok(&self.inner.sched).inflight
    }

    /// Microseconds since the daemon was built.
    fn now_us(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64() * 1e6
    }

    /// The metrics registry (counters, histograms, per-device busy time).
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    fn record(&self, job: &str, kind: EventKind) {
        lock_ok(&self.inner.recorder).record(self.now_us(), job, kind);
    }

    /// Lifetime counters (a projection of the metrics registry, plus
    /// current cache stats).
    pub fn stats(&self) -> ServeStats {
        let m = &self.inner.metrics;
        ServeStats {
            jobs_completed: m.get("jobs.completed"),
            jobs_rejected: m.get("jobs.rejected"),
            jobs_failed: m.get("jobs.failed"),
            protocol_errors: m.get("protocol.errors"),
            cache: lock_ok(&self.inner.cache).stats(),
        }
    }

    /// Samples the point-in-time gauges from the live scheduler state.
    pub fn gauges(&self) -> GaugeSet {
        let sched = lock_ok(&self.inner.sched);
        let device_busy = sched.busy.clone();
        let devices_busy = device_busy.iter().filter(|&&b| b).count() as u64;
        let inflight = sched.inflight;
        let queue_depth = sched.waiting;
        drop(sched);
        GaugeSet {
            uptime_us: self.now_us(),
            inflight,
            queue_depth,
            devices_busy,
            cache_artifacts: lock_ok(&self.inner.cache).len() as u64,
            device_busy,
        }
    }

    /// Synchronises cache counters into the registry, then snapshots it.
    fn scrape(&self) -> crate::metrics::MetricsSnapshot {
        let cache = lock_ok(&self.inner.cache).stats();
        self.inner.metrics.with(|m| {
            // Cache counters live in the ArtifactCache; mirror them so a
            // scrape is one self-contained document. Counters only grow,
            // so setting by delta keeps the registry monotone.
            let dh = cache.hits.saturating_sub(m.counters.get("cache.hits"));
            let dm = cache.misses.saturating_sub(m.counters.get("cache.misses"));
            m.counters.add("cache.hits", dh);
            m.counters.add("cache.misses", dm);
            m.clone()
        })
    }

    /// The full registry as JSON: counters, gauges, the four latency
    /// histograms, per-device counters, and the flight-recorder tail
    /// (most recent `tail` events).
    pub fn metrics_json(&self, tail: usize) -> Json {
        let snap = self.scrape();
        let gauges = self.gauges();
        let recorder = lock_ok(&self.inner.recorder).to_json(tail);
        registry_json(&snap, &gauges, recorder)
    }

    /// The registry in the Prometheus plaintext exposition format.
    pub fn metrics_prometheus(&self) -> String {
        let snap = self.scrape();
        let gauges = self.gauges();
        registry_prometheus(&snap, &gauges)
    }

    /// The daemon timeline as a Chrome/Perfetto trace: one track per
    /// device, one for the queue, plus a queue-depth counter track.
    pub fn metrics_chrome(&self) -> ChromeTrace {
        let names: Vec<String> = self
            .inner
            .cfg
            .devices
            .iter()
            .map(|d| d.name.clone())
            .collect();
        lock_ok(&self.inner.recorder).chrome_trace(&names)
    }

    /// Handles one request, blocking until the response is ready. Safe to
    /// call concurrently; `run` jobs queue on the device pool.
    pub fn handle(&self, req: &Request) -> Response {
        match req {
            Request::Stats { id } => Response::Stats {
                id: id.clone(),
                body: self.stats_json(),
            },
            Request::Metrics { id, format, tail } => Response::Metrics {
                id: id.clone(),
                body: match format {
                    MetricsFormat::Json => self.metrics_json(*tail),
                    MetricsFormat::Prometheus => {
                        Json::obj(vec![("text", Json::Str(self.metrics_prometheus()))])
                    }
                    MetricsFormat::Chrome => self.metrics_chrome().to_json(),
                },
            },
            Request::Shutdown { id } => self.shutdown(id),
            Request::Run(r) => self.run(r),
        }
    }

    /// Parses and handles one wire line, returning the response line.
    pub fn handle_line(&self, line: &str) -> String {
        match proto::parse_request(line) {
            Ok(req) => self.handle(&req).render(),
            Err((id, message)) => {
                self.inner.metrics.bump("protocol.errors");
                Response::Error {
                    id,
                    kind: ErrorKind::Protocol,
                    message,
                    predicted_peak_bytes: None,
                    capacity: None,
                }
                .render()
            }
        }
    }

    /// The `stats` body: unchanged key set from before the registry
    /// landed, now derived from it.
    fn stats_json(&self) -> Json {
        let s = self.stats();
        let sched = lock_ok(&self.inner.sched);
        let inflight = sched.inflight;
        let devices: Vec<Json> = self
            .inner
            .cfg
            .devices
            .iter()
            .zip(&sched.busy)
            .map(|(d, &busy)| {
                Json::obj(vec![
                    ("name", Json::Str(d.name.clone())),
                    ("capacity_bytes", Json::U64(d.global_mem_bytes)),
                    ("busy", Json::Bool(busy)),
                ])
            })
            .collect();
        drop(sched);
        let artifacts = lock_ok(&self.inner.cache).len();
        Json::obj(vec![
            ("jobs_completed", Json::U64(s.jobs_completed)),
            ("jobs_rejected", Json::U64(s.jobs_rejected)),
            ("jobs_failed", Json::U64(s.jobs_failed)),
            ("protocol_errors", Json::U64(s.protocol_errors)),
            ("inflight", Json::U64(inflight)),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::U64(s.cache.hits)),
                    ("misses", Json::U64(s.cache.misses)),
                    ("evictions", Json::U64(s.cache.evictions)),
                    ("hit_rate", Json::F64(s.cache.hit_rate())),
                    ("artifacts", Json::U64(artifacts as u64)),
                ]),
            ),
            ("devices", Json::Arr(devices)),
        ])
    }

    /// Drain: refuse new work, wait for in-flight jobs, acknowledge.
    fn shutdown(&self, id: &str) -> Response {
        let mut sched = lock_ok(&self.inner.sched);
        sched.draining = true;
        self.inner.cond.notify_all();
        while sched.inflight > 0 {
            sched = self
                .inner
                .cond
                .wait(sched)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(sched);
        self.inner.stopped.store(true, Ordering::SeqCst);
        Response::ShutdownOk {
            id: id.to_string(),
            jobs_completed: self.stats().jobs_completed,
        }
    }

    fn run(&self, r: &RunRequest) -> Response {
        // Register as in flight (or refuse when draining) before any
        // work, so a shutdown drains exactly the accepted jobs.
        {
            let mut sched = lock_ok(&self.inner.sched);
            if sched.draining {
                return Response::Error {
                    id: r.id.clone(),
                    kind: ErrorKind::Protocol,
                    message: "server is shutting down".into(),
                    predicted_peak_bytes: None,
                    capacity: None,
                };
            }
            sched.inflight += 1;
        }
        let resp = self.run_inflight(r);
        let mut sched = lock_ok(&self.inner.sched);
        sched.inflight -= 1;
        self.inner.cond.notify_all();
        drop(sched);
        resp
    }

    fn run_inflight(&self, r: &RunRequest) -> Response {
        let t_received = Instant::now();
        self.inner.metrics.bump("jobs.received");
        self.record(&r.id, EventKind::Received);
        let mut spans = Vec::new();
        let class = self.class_profile().clone();
        // The effective schedule — explicit if the request carried one,
        // otherwise derived from the options — keys the artifact cache,
        // so two schedules for the same source occupy distinct entries.
        let sched = r
            .schedule
            .clone()
            .unwrap_or_else(|| r.options.to_schedule());
        let key = artifact_key_sched(&r.source, &sched, &class);

        // Compile, or hit the artifact cache. The lock is held only for
        // the lookup/insert, not for compilation — concurrent misses of
        // the same key may compile twice, but both insert the same
        // content-addressed artifact, so the race is benign.
        let cached = lock_ok(&self.inner.cache).get(key);
        let (artifact, cache_hit) = match cached {
            Some(a) => (a, true),
            None => {
                let t0 = Instant::now();
                let compiled = Compiler::with_schedule(sched.clone()).compile(&r.source);
                let us = t0.elapsed().as_secs_f64() * 1e6;
                match compiled {
                    Ok(c) => {
                        spans.push(Span {
                            name: "compile",
                            us,
                        });
                        self.inner.metrics.with(|m| m.compile_us.observe_us(us));
                        let a = Arc::new(c);
                        lock_ok(&self.inner.cache).insert(key, Arc::clone(&a));
                        (a, false)
                    }
                    Err(e) => {
                        self.inner.metrics.with(|m| {
                            m.counters.bump("jobs.failed");
                            m.counters.bump("jobs.failed.compile");
                        });
                        self.record(
                            &r.id,
                            EventKind::Failed {
                                stage: "compile",
                                device: None,
                            },
                        );
                        return Response::Error {
                            id: r.id.clone(),
                            kind: ErrorKind::Compile,
                            message: e.to_string(),
                            predicted_peak_bytes: None,
                            capacity: None,
                        };
                    }
                }
            }
        };

        // Admission: learned measured peak (exact for these shapes) or
        // the static lower bound.
        let sig = shape_signature(&r.args);
        let predicted =
            { lock_ok(&self.inner.cache).learned_peak(key, &sig) }.unwrap_or_else(|| {
                futhark_gpu::predict_peak_bytes(&artifact.plan, &class, &r.args).peak_bytes
            });
        let best_capacity = class.global_mem_bytes;
        if !self
            .inner
            .cfg
            .devices
            .iter()
            .any(|d| predicted <= d.global_mem_bytes)
        {
            self.inner.metrics.bump("jobs.rejected");
            self.record(
                &r.id,
                EventKind::Rejected {
                    predicted_peak_bytes: predicted,
                    capacity: best_capacity,
                },
            );
            return Response::Error {
                id: r.id.clone(),
                kind: ErrorKind::Admission,
                message: format!(
                    "predicted peak {predicted} bytes exceeds every device \
                     capacity (best {best_capacity} bytes)"
                ),
                predicted_peak_bytes: Some(predicted),
                capacity: Some(best_capacity),
            };
        }

        // Queue for a device whose capacity covers the prediction.
        // `queue_depth_at_admission` is how many admitted jobs were
        // already waiting for a slot when this one joined the queue.
        let tq = Instant::now();
        let (dev_idx, queue_depth_at_admission) = {
            let mut sched = lock_ok(&self.inner.sched);
            let depth = sched.waiting;
            self.inner.metrics.bump("jobs.admitted");
            self.record(
                &r.id,
                EventKind::Admitted {
                    artifact_key: key,
                    shapes: sig.clone(),
                    cache_hit,
                    predicted_peak_bytes: predicted,
                    queue_depth: depth,
                },
            );
            let mut waited = false;
            let idx = loop {
                let free = (0..self.inner.cfg.devices.len()).find(|&i| {
                    !sched.busy[i] && predicted <= self.inner.cfg.devices[i].global_mem_bytes
                });
                match free {
                    Some(i) => {
                        sched.busy[i] = true;
                        if waited {
                            sched.waiting -= 1;
                        }
                        break i;
                    }
                    None => {
                        if !waited {
                            waited = true;
                            sched.waiting += 1;
                            self.inner.metrics.bump("queue.waits");
                        }
                        sched = self
                            .inner
                            .cond
                            .wait(sched)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            };
            (idx, depth)
        };
        let queue_us = tq.elapsed().as_secs_f64() * 1e6;
        spans.push(Span {
            name: "queue",
            us: queue_us,
        });
        self.inner
            .metrics
            .with(|m| m.queue_wait_us.observe_us(queue_us));
        self.record(&r.id, EventKind::Started { device: dev_idx });

        // Execute against an uncapped arena: admission already vouched
        // for the footprint, and removing the cap makes a mid-flight
        // OutOfMemory structurally impossible — underprediction surfaces
        // as a clean post-run capacity failure instead.
        let device = &self.inner.cfg.devices[dev_idx];
        let mut uncapped = device.clone();
        uncapped.global_mem_bytes = u64::MAX;
        let opts = RunOptions {
            threads: r.threads,
            profile: r.profile,
            engine: r.engine,
        };
        let te = Instant::now();
        let result = artifact.run_on_with_opts(&uncapped, &r.args, opts);
        let execute_us = te.elapsed().as_secs_f64() * 1e6;
        spans.push(Span {
            name: "execute",
            us: execute_us,
        });
        self.inner.metrics.with(|m| {
            m.execute_us.observe_us(execute_us);
            m.devices[dev_idx].jobs += 1;
            m.devices[dev_idx].busy_us += execute_us.round() as u64;
        });

        // Release the device slot.
        {
            let mut sched = lock_ok(&self.inner.sched);
            sched.busy[dev_idx] = false;
            self.inner.cond.notify_all();
        }

        let e2e_us = t_received.elapsed().as_secs_f64() * 1e6;
        self.inner.metrics.with(|m| m.e2e_us.observe_us(e2e_us));
        match result {
            Ok((outputs, perf)) => {
                let measured = perf.mem.peak_bytes;
                lock_ok(&self.inner.cache).learn_peak(key, &sig, measured);
                if measured > device.global_mem_bytes {
                    self.inner.metrics.with(|m| {
                        m.counters.bump("jobs.failed");
                        m.counters.bump("jobs.failed.run");
                    });
                    self.record(
                        &r.id,
                        EventKind::Failed {
                            stage: "capacity",
                            device: Some(dev_idx),
                        },
                    );
                    return Response::Error {
                        id: r.id.clone(),
                        kind: ErrorKind::Run,
                        message: format!(
                            "measured peak {measured} bytes exceeds device \
                             capacity {} (prediction was {predicted}; the \
                             measured peak is now learned, so resubmission \
                             is rejected at admission)",
                            device.global_mem_bytes
                        ),
                        predicted_peak_bytes: Some(predicted),
                        capacity: Some(device.global_mem_bytes),
                    };
                }
                self.inner.metrics.bump("jobs.completed");
                self.record(
                    &r.id,
                    EventKind::Finished {
                        device: dev_idx,
                        predicted_peak_bytes: predicted,
                        measured_peak_bytes: measured,
                        total_us: perf.total_us,
                    },
                );
                Response::RunOk {
                    id: r.id.clone(),
                    outputs,
                    spans,
                    cache_hit,
                    predicted_peak_bytes: predicted,
                    device: device.name.clone(),
                    queue_depth_at_admission,
                    measured_peak_bytes: measured,
                    total_us: perf.total_us,
                }
            }
            Err(e) => {
                self.inner.metrics.with(|m| {
                    m.counters.bump("jobs.failed");
                    m.counters.bump("jobs.failed.run");
                });
                self.record(
                    &r.id,
                    EventKind::Failed {
                        stage: "run",
                        device: Some(dev_idx),
                    },
                );
                Response::Error {
                    id: r.id.clone(),
                    kind: ErrorKind::Run,
                    message: e.to_string(),
                    predicted_peak_bytes: Some(predicted),
                    capacity: Some(device.global_mem_bytes),
                }
            }
        }
    }
}

/// Serves line-delimited JSON over a reader/writer pair (the stdio
/// front-end, also used over TCP streams). Requests are handled
/// concurrently up to the configured worker count; responses are written
/// as they complete (correlate by `id`). Returns after a `shutdown`
/// response has been written, or at end of input (which also drains).
pub fn serve_lines<R, W>(daemon: &Daemon, reader: R, writer: W) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let writer = Mutex::new(writer);
    let write_line = |line: &str| -> std::io::Result<()> {
        let mut w = lock_ok(&writer);
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()
    };
    let workers = daemon.inner.cfg.workers.max(1);
    let slots = (Mutex::new(0usize), Condvar::new());
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut shutdown_line: Option<String> = None;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // A shutdown drains: stop dispatching, join the scope's
            // outstanding handlers (scope exit), then acknowledge.
            if matches!(proto::parse_request(&line), Ok(Request::Shutdown { .. })) {
                shutdown_line = Some(line);
                break;
            }
            // Throttle to `workers` concurrent handlers.
            {
                let mut active = lock_ok(&slots.0);
                while *active >= workers {
                    active = slots.1.wait(active).unwrap_or_else(|e| e.into_inner());
                }
                *active += 1;
            }
            let daemon = daemon.clone();
            let write_line = &write_line;
            let slots = &slots;
            scope.spawn(move || {
                let resp = daemon.handle_line(&line);
                let _ = write_line(&resp);
                let mut active = lock_ok(&slots.0);
                *active -= 1;
                slots.1.notify_one();
            });
        }
        // Wait for all dispatched handlers before acknowledging the
        // shutdown (or returning at EOF).
        {
            let mut active = lock_ok(&slots.0);
            while *active > 0 {
                active = slots.1.wait(active).unwrap_or_else(|e| e.into_inner());
            }
        }
        if let Some(line) = shutdown_line {
            write_line(&daemon.handle_line(&line))?;
        }
        Ok(())
    })
}

/// Serves connections on a TCP listener, one thread per connection, until
/// a `shutdown` request completes on any of them. The accept loop polls
/// at [`DaemonConfig::accept_poll_ms`]; every idle wakeup counts one
/// `accept.wakeups` in the metrics registry.
pub fn serve_tcp(daemon: &Daemon, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let poll = Duration::from_millis(daemon.inner.cfg.accept_poll_ms.max(1));
    std::thread::scope(|scope| -> std::io::Result<()> {
        loop {
            if daemon.stopped() {
                return Ok(());
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let daemon = daemon.clone();
                    scope.spawn(move || {
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => return,
                        });
                        let _ = serve_lines(&daemon, reader, stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    daemon.inner.metrics.bump("accept.wakeups");
                    std::thread::sleep(poll);
                }
                Err(e) => return Err(e),
            }
        }
    })
}

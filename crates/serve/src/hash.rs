//! Content hashing for the artifact cache: FNV-1a 64, the classic
//! non-cryptographic byte hash. Collisions are astronomically unlikely at
//! cache scale, and the function is dependency-free and deterministic
//! across platforms — exactly what a content-addressed key needs.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a 64 hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Feeds bytes into the hash.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a length-prefixed string — the prefix keeps concatenated
    /// fields from aliasing (`("ab","c")` vs `("a","bc")`).
    pub fn update_str(&mut self, s: &str) -> &mut Self {
        self.update(&(s.len() as u64).to_le_bytes());
        self.update(s.as_bytes())
    }

    /// The hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::default();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut a = Fnv1a::default();
        a.update_str("ab").update_str("c");
        let mut b = Fnv1a::default();
        b.update_str("a").update_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}

//! Integration tests for `futharkd`: the artifact cache is observable
//! through the span list, concurrent mixed-tenant execution is
//! bit-identical to sequential, admission control rejects over-capacity
//! jobs before execution with the prediction attached, shutdown drains
//! the queue, the TCP front-end round-trips, and job failures are job
//! errors — never daemon deaths.

use futhark::DeviceProfile;
use futhark_serve::daemon::{serve_lines, serve_tcp};
use futhark_serve::{Daemon, DaemonConfig};
use futhark_trace::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

const MAP_SRC: &str = "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
                       map (\\(x: i64) -> if x % 3 == 0 then x * 2 else x - 1) xs";
const SCAN_SRC: &str = "fun main (n: i64) (xs: [n]i64): i64 =\n\
                        let a = map (\\x -> x * 3 + 1) xs\n\
                        let b = scan (+) 0 a\n\
                        in reduce (+) 0 b";
const REPL_SRC: &str = "fun main (n: i64): [n]i64 = replicate n 7";

fn daemon(devices: usize) -> Daemon {
    Daemon::new(DaemonConfig {
        devices: (0..devices)
            .map(|i| {
                let mut d = DeviceProfile::gtx780();
                d.name = format!("gtx780#{i}");
                d
            })
            .collect(),
        workers: devices.max(2),
        cache_capacity: 32,
        ..DaemonConfig::default()
    })
}

fn run_line(id: &str, source: &str, n: i64, with_array: bool) -> String {
    let args = if with_array {
        let xs: Vec<String> = (0..n).map(|i| (i * 7 % 1001).to_string()).collect();
        format!(
            r#"[{{"i64":{n}}},{{"array":{{"elem":"i64","shape":[{n}],"data":[{}]}}}}]"#,
            xs.join(",")
        )
    } else {
        format!(r#"[{{"i64":{n}}}]"#)
    };
    format!(
        r#"{{"op":"run","id":"{id}","source":{},"args":{args}}}"#,
        quote(source)
    )
}

fn quote(s: &str) -> String {
    Json::Str(s.to_string()).render()
}

fn parse(resp: &str) -> Json {
    Json::parse(resp).unwrap_or_else(|e| panic!("bad response JSON {resp:?}: {e}"))
}

fn span_names(j: &Json) -> Vec<String> {
    j.get("spans")
        .and_then(Json::as_arr)
        .expect("spans array")
        .iter()
        .map(|s| {
            s.get("name")
                .and_then(Json::as_str)
                .expect("span name")
                .to_string()
        })
        .collect()
}

/// Repeat submission of the same source hits the artifact cache: the
/// second response reports `"cache":"hit"` and its span list has no
/// `compile` entry, while outputs stay identical.
#[test]
fn repeat_submission_hits_the_cache_and_skips_compile() {
    let d = daemon(1);
    let first = parse(&d.handle_line(&run_line("a", MAP_SRC, 64, true)));
    let second = parse(&d.handle_line(&run_line("b", MAP_SRC, 64, true)));

    assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    assert!(span_names(&first).contains(&"compile".to_string()));

    assert_eq!(second.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    assert!(
        !span_names(&second).contains(&"compile".to_string()),
        "cache hit must not carry a compile span, got {:?}",
        span_names(&second)
    );
    assert_eq!(first.get("outputs"), second.get("outputs"));

    let stats = d.stats();
    assert_eq!(stats.cache.hits, 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.jobs_completed, 2);
}

/// Different pipeline options are different artifacts: flipping a switch
/// is a miss, not a stale hit.
#[test]
fn options_are_part_of_the_cache_key() {
    let d = daemon(1);
    let with_fusion = run_line("a", MAP_SRC, 32, true);
    let without = format!(
        r#"{{"op":"run","id":"b","source":{},"args":[{{"i64":4}},{{"array":{{"elem":"i64","shape":[4],"data":[1,2,3,4]}}}}],"options":{{"fusion":false}}}}"#,
        quote(MAP_SRC)
    );
    parse(&d.handle_line(&with_fusion));
    let second = parse(&d.handle_line(&without));
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(d.stats().cache.misses, 2);
}

/// Schedules are part of the cache key: two schedules for the same
/// source occupy distinct cache entries, an explicit default schedule
/// shares the implicit default's entry, and every schedule computes the
/// same outputs.
#[test]
fn schedules_occupy_distinct_cache_entries() {
    use futhark::Schedule;
    let d = daemon(1);
    let line_with_schedule = |id: &str, sched: &Schedule| {
        let xs: Vec<String> = (0..32).map(|i| (i * 7 % 1001).to_string()).collect();
        format!(
            r#"{{"op":"run","id":"{id}","source":{},"args":[{{"i64":32}},{{"array":{{"elem":"i64","shape":[32],"data":[{}]}}}}],"schedule":{}}}"#,
            quote(MAP_SRC),
            xs.join(","),
            quote(&sched.label())
        )
    };
    let default = Schedule::default();
    let unfused = Schedule {
        fusion_pass: false,
        ..Schedule::default()
    };

    // Implicit default compiles once…
    let implicit = parse(&d.handle_line(&run_line("a", MAP_SRC, 32, true)));
    assert_eq!(implicit.get("cache").and_then(Json::as_str), Some("miss"));
    // …and an explicit default schedule is the *same* artifact: a hit.
    let explicit = parse(&d.handle_line(&line_with_schedule("b", &default)));
    assert_eq!(
        explicit.get("cache").and_then(Json::as_str),
        Some("hit"),
        "explicit default schedule must share the implicit entry"
    );
    // A different schedule for the same source is a different artifact.
    let other = parse(&d.handle_line(&line_with_schedule("c", &unfused)));
    assert_eq!(
        other.get("cache").and_then(Json::as_str),
        Some("miss"),
        "a distinct schedule must occupy a distinct cache entry"
    );
    // …which is itself cached under its own key.
    let again = parse(&d.handle_line(&line_with_schedule("d", &unfused)));
    assert_eq!(again.get("cache").and_then(Json::as_str), Some("hit"));

    // Both entries live side by side and agree on outputs.
    let stats = d.stats();
    assert_eq!(stats.cache.misses, 2);
    assert_eq!(stats.cache.hits, 2);
    assert_eq!(implicit.get("outputs"), other.get("outputs"));
    assert_eq!(other.get("outputs"), again.get("outputs"));

    // A malformed schedule label is a protocol error, not a daemon death.
    let bad = format!(
        r#"{{"op":"run","id":"e","source":{},"args":[{{"i64":4}},{{"array":{{"elem":"i64","shape":[4],"data":[1,2,3,4]}}}}],"schedule":"sched1,bogus"}}"#,
        quote(MAP_SRC)
    );
    let j = parse(&d.handle_line(&bad));
    assert_eq!(j.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(j.get("kind").and_then(Json::as_str), Some("protocol"));
}

/// Concurrent mixed-tenant load produces bit-identical responses to the
/// same jobs run sequentially: no cross-request state (engine, thread
/// count, uniform tallies, cache) bleeds between tenants.
#[test]
fn concurrent_mixed_tenants_match_sequential_bit_for_bit() {
    // Tenant mix: two programs, three sizes, both engines.
    let mut jobs = Vec::new();
    for (p, src) in [("map", MAP_SRC), ("scan", SCAN_SRC)] {
        for n in [16i64, 64, 256] {
            for engine in ["warp", "lane"] {
                let id = format!("{p}-{n}-{engine}");
                let line = {
                    let xs: Vec<String> = (0..n).map(|i| (i * 7 % 1001).to_string()).collect();
                    format!(
                        r#"{{"op":"run","id":"{id}","source":{},"args":[{{"i64":{n}}},{{"array":{{"elem":"i64","shape":[{n}],"data":[{}]}}}}],"engine":"{engine}"}}"#,
                        quote(src),
                        xs.join(",")
                    )
                };
                jobs.push((id, line));
            }
        }
    }

    // Sequential reference on a fresh daemon.
    let seq = daemon(1);
    let mut expect = std::collections::BTreeMap::new();
    for (id, line) in &jobs {
        let j = parse(&seq.handle_line(line));
        assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"), "{id}");
        expect.insert(id.clone(), j.get("outputs").expect("outputs").clone());
    }

    // Concurrent run on a pool of four devices.
    let conc = daemon(4);
    let got = std::sync::Mutex::new(std::collections::BTreeMap::new());
    std::thread::scope(|scope| {
        for (id, line) in &jobs {
            let conc = conc.clone();
            let got = &got;
            scope.spawn(move || {
                let j = parse(&conc.handle_line(line));
                assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"), "{id}");
                got.lock()
                    .expect("results lock")
                    .insert(id.clone(), j.get("outputs").expect("outputs").clone());
            });
        }
    });
    let got = got.into_inner().expect("results lock");
    assert_eq!(got.len(), expect.len());
    for (id, out) in &expect {
        assert_eq!(
            got.get(id),
            Some(out),
            "{id}: concurrent outputs differ from sequential"
        );
    }
}

/// A job whose predicted footprint exceeds every device's capacity is
/// rejected at admission — before any device time — with the prediction
/// and the capacity in the structured error.
#[test]
fn over_capacity_jobs_are_rejected_at_admission() {
    let d = daemon(1);
    let n = 1i64 << 30; // 8 GiB of i64s vs the 3 GiB GTX 780 profile
    let resp = parse(&d.handle_line(&run_line("big", REPL_SRC, n, false)));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(resp.get("kind").and_then(Json::as_str), Some("admission"));
    let predicted = resp
        .get("predicted_peak_bytes")
        .and_then(Json::as_u64)
        .expect("admission error carries predicted_peak_bytes");
    let capacity = resp
        .get("capacity")
        .and_then(Json::as_u64)
        .expect("admission error carries capacity");
    assert!(predicted > capacity);
    assert_eq!(capacity, DeviceProfile::gtx780().global_mem_bytes);
    let stats = d.stats();
    assert_eq!(stats.jobs_rejected, 1);
    assert_eq!(stats.jobs_completed, 0);

    // The same program at an admissible size still runs.
    let ok = parse(&d.handle_line(&run_line("small", REPL_SRC, 64, false)));
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
}

/// Shutdown drains: jobs accepted before the shutdown complete and get
/// their responses; the acknowledgement arrives only after the queue is
/// empty; later submissions are refused.
#[test]
fn shutdown_drains_queued_jobs_first() {
    // A host loop of several hundred launches: slow enough that all four
    // jobs are still in flight (one running, three queued on the single
    // device) when the shutdown arrives.
    const SLOW_SRC: &str = "fun main (n: i64) (k: i64) (xs: [n]i64): [n]i64 =\n\
                            loop (cur = xs) for i < k do map (\\x -> x * 3 + 1) cur";
    let slow_line = |id: &str| {
        let n = 1024;
        let xs: Vec<String> = (0..n).map(|i| (i % 97).to_string()).collect();
        format!(
            r#"{{"op":"run","id":"{id}","source":{},"args":[{{"i64":{n}}},{{"i64":400}},{{"array":{{"elem":"i64","shape":[{n}],"data":[{}]}}}}]}}"#,
            quote(SLOW_SRC),
            xs.join(",")
        )
    };
    let d = daemon(1); // one device => later jobs genuinely queue
    let jobs = 4;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..jobs {
            let d = d.clone();
            let line = slow_line(&format!("j{i}"));
            handles.push(scope.spawn(move || parse(&d.handle_line(&line))));
        }
        // Wait until every job is registered in flight, then shut down.
        let t0 = Instant::now();
        while d.inflight() < jobs && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(d.inflight(), jobs, "jobs should be queued before shutdown");
        let ack = parse(&d.handle_line(r#"{"op":"shutdown","id":"bye"}"#));
        assert_eq!(ack.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            ack.get("jobs_completed").and_then(Json::as_u64),
            Some(jobs),
            "shutdown must drain every accepted job before acknowledging"
        );
        for h in handles {
            let j = h.join().expect("job thread");
            assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));
        }
    });
    // After the drain, new work is refused.
    let refused = parse(&d.handle_line(&run_line("late", MAP_SRC, 16, true)));
    assert_eq!(refused.get("status").and_then(Json::as_str), Some("error"));
    assert!(d.stopped());
}

/// The line front-end over an in-memory stream: concurrent responses,
/// the shutdown acknowledgement last, all ids answered.
#[test]
fn serve_lines_answers_every_request_and_acks_shutdown_last() {
    let d = daemon(2);
    let mut input = String::new();
    for i in 0..5 {
        input.push_str(&run_line(&format!("r{i}"), MAP_SRC, 32, true));
        input.push('\n');
    }
    input.push_str(r#"{"op":"stats","id":"s"}"#);
    input.push('\n');
    input.push_str(r#"{"op":"shutdown","id":"z"}"#);
    input.push('\n');

    let mut out: Vec<u8> = Vec::new();
    serve_lines(&d, std::io::Cursor::new(input), &mut out).expect("serves");
    let lines: Vec<Json> = String::from_utf8(out)
        .expect("utf8")
        .lines()
        .map(parse)
        .collect();
    assert_eq!(lines.len(), 7);
    let mut ids: Vec<&str> = lines
        .iter()
        .map(|j| j.get("id").and_then(Json::as_str).expect("id"))
        .collect();
    let last = ids.pop();
    assert_eq!(last, Some("z"), "shutdown acknowledgement must come last");
    ids.sort_unstable();
    assert_eq!(ids, vec!["r0", "r1", "r2", "r3", "r4", "s"]);
    for j in &lines {
        assert_eq!(j.get("status").and_then(Json::as_str), Some("ok"));
    }
}

/// TCP round-trip: a client connects, runs a job twice (second is a
/// cache hit), reads stats, shuts the server down.
#[test]
fn tcp_round_trip_with_cache_and_shutdown() {
    let d = daemon(1);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let d = d.clone();
        std::thread::spawn(move || serve_tcp(&d, listener))
    };

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let mut send = |line: &str| {
        stream.write_all(line.as_bytes()).expect("write");
        stream.write_all(b"\n").expect("write");
    };
    let mut recv = || {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        parse(&line)
    };

    send(&run_line("t1", MAP_SRC, 48, true));
    let first = recv();
    assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));

    send(&run_line("t2", MAP_SRC, 48, true));
    let second = recv();
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(first.get("outputs"), second.get("outputs"));

    send(r#"{"op":"stats","id":"st"}"#);
    let stats = recv();
    let cache = stats
        .get("stats")
        .and_then(|s| s.get("cache"))
        .expect("cache stats");
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));

    send(r#"{"op":"shutdown","id":"down"}"#);
    let ack = recv();
    assert_eq!(ack.get("id").and_then(Json::as_str), Some("down"));
    assert_eq!(ack.get("status").and_then(Json::as_str), Some("ok"));
    server.join().expect("server thread").expect("serve_tcp");
}

/// Failures are job-scoped: a compile error, a runtime fault, and a
/// malformed line each produce a structured error response, and the
/// daemon keeps serving afterwards.
#[test]
fn failures_are_job_errors_not_daemon_deaths() {
    let d = daemon(1);

    let bad_compile = format!(
        r#"{{"op":"run","id":"c","source":{},"args":[]}}"#,
        quote("fun main (x: i64): i64 = y")
    );
    let j = parse(&d.handle_line(&bad_compile));
    assert_eq!(j.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(j.get("kind").and_then(Json::as_str), Some("compile"));

    // Out-of-bounds host read: a runtime fault, reported as kind "run".
    let oob = format!(
        r#"{{"op":"run","id":"o","source":{},"args":[{{"i64":4}},{{"array":{{"elem":"i64","shape":[4],"data":[1,2,3,4]}}}}]}}"#,
        quote("fun main (n: i64) (xs: [n]i64): i64 = xs[n]")
    );
    let j = parse(&d.handle_line(&oob));
    assert_eq!(j.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(j.get("kind").and_then(Json::as_str), Some("run"));

    let j = parse(&d.handle_line("this is not json"));
    assert_eq!(j.get("kind").and_then(Json::as_str), Some("protocol"));

    // Still alive and correct.
    let ok = parse(&d.handle_line(&run_line("alive", MAP_SRC, 16, true)));
    assert_eq!(ok.get("status").and_then(Json::as_str), Some("ok"));
    let stats = d.stats();
    assert_eq!(stats.jobs_failed, 2);
    assert_eq!(stats.protocol_errors, 1);
    assert_eq!(stats.jobs_completed, 1);
}

//! Telemetry integration tests: the ledger balances across mixed job
//! outcomes (histogram counts == jobs admitted == recorder finished +
//! run-stage failures), gauges drain back to zero, concurrent scrapes
//! are well-formed and monotone, the Prometheus and Chrome renderings
//! are reachable through the protocol, run responses carry placement
//! metadata, and the TCP accept loop counts its wakeups.

use futhark::DeviceProfile;
use futhark_serve::daemon::serve_tcp;
use futhark_serve::metrics::COUNTER_KEYS;
use futhark_serve::{Daemon, DaemonConfig};
use futhark_trace::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const MAP_SRC: &str = "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
                       map (\\(x: i64) -> if x % 3 == 0 then x * 2 else x - 1) xs";
const SCAN_SRC: &str = "fun main (n: i64) (xs: [n]i64): i64 =\n\
                        let a = map (\\x -> x * 3 + 1) xs\n\
                        let b = scan (+) 0 a\n\
                        in reduce (+) 0 b";
const REPL_SRC: &str = "fun main (n: i64): [n]i64 = replicate n 7";
const OOB_SRC: &str = "fun main (n: i64) (xs: [n]i64): i64 = xs[n]";

fn daemon(devices: usize) -> Daemon {
    Daemon::new(DaemonConfig {
        devices: (0..devices)
            .map(|i| {
                let mut d = DeviceProfile::gtx780();
                d.name = format!("gtx780#{i}");
                d
            })
            .collect(),
        workers: devices.max(2),
        cache_capacity: 32,
        ..DaemonConfig::default()
    })
}

fn quote(s: &str) -> String {
    Json::Str(s.to_string()).render()
}

fn run_line(id: &str, source: &str, n: i64, with_array: bool) -> String {
    let args = if with_array {
        let xs: Vec<String> = (0..n).map(|i| (i * 7 % 1001).to_string()).collect();
        format!(
            r#"[{{"i64":{n}}},{{"array":{{"elem":"i64","shape":[{n}],"data":[{}]}}}}]"#,
            xs.join(",")
        )
    } else {
        format!(r#"[{{"i64":{n}}}]"#)
    };
    format!(
        r#"{{"op":"run","id":"{id}","source":{},"args":{args}}}"#,
        quote(source)
    )
}

fn parse(resp: &str) -> Json {
    Json::parse(resp).unwrap_or_else(|e| panic!("bad response JSON {resp:?}: {e}"))
}

/// Scrapes the registry through the protocol and returns the body.
fn scrape(d: &Daemon) -> Json {
    let resp = parse(&d.handle_line(r#"{"op":"metrics","id":"m","tail":512}"#));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    resp.get("metrics").expect("metrics body").clone()
}

fn counter(m: &Json, key: &str) -> u64 {
    m.get("counters")
        .and_then(|c| c.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("counter {key} missing"))
}

fn hist_count(m: &Json, name: &str) -> u64 {
    m.get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("histogram {name} missing"))
}

fn recorder_total(m: &Json, kind: &str) -> u64 {
    m.get("recorder")
        .and_then(|r| r.get("totals"))
        .and_then(|t| t.get(kind))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// Mixed outcomes — successes (with a cache hit), a compile error, an
/// admission rejection, and a runtime fault — and the ledger balances:
/// every admitted job is observed exactly once by each latency
/// histogram, and recorder totals agree with the counters.
#[test]
fn ledger_balances_across_mixed_outcomes() {
    let d = daemon(1);
    let ok = |resp: &Json| resp.get("status").and_then(Json::as_str) == Some("ok");

    assert!(ok(&parse(
        &d.handle_line(&run_line("g1", MAP_SRC, 32, true))
    )));
    assert!(ok(&parse(
        &d.handle_line(&run_line("g2", MAP_SRC, 32, true))
    ))); // cache hit
    assert!(ok(&parse(
        &d.handle_line(&run_line("g3", SCAN_SRC, 32, true))
    )));
    let bad = format!(
        r#"{{"op":"run","id":"c","source":{},"args":[]}}"#,
        quote("fun main (x: i64): i64 = y")
    );
    assert!(!ok(&parse(&d.handle_line(&bad)))); // compile error
    assert!(!ok(&parse(&d.handle_line(&run_line(
        "r",
        REPL_SRC,
        1 << 30,
        false
    ))))); // rejected
    assert!(!ok(&parse(
        &d.handle_line(&run_line("o", OOB_SRC, 4, true))
    ))); // run fault

    let m = scrape(&d);
    assert_eq!(counter(&m, "jobs.received"), 6);
    assert_eq!(counter(&m, "jobs.admitted"), 4);
    assert_eq!(counter(&m, "jobs.completed"), 3);
    assert_eq!(counter(&m, "jobs.rejected"), 1);
    assert_eq!(counter(&m, "jobs.failed"), 2);
    assert_eq!(counter(&m, "jobs.failed.compile"), 1);
    assert_eq!(counter(&m, "jobs.failed.run"), 1);

    // Histogram ledger: one observation per admitted job, whatever the
    // outcome; the compile histogram sees every successful compile (a
    // failed compile is a cache miss with nothing to time).
    for h in ["queue_wait_us", "execute_us", "e2e_us"] {
        assert_eq!(hist_count(&m, h), 4, "{h}");
    }
    assert_eq!(
        hist_count(&m, "compile_us"),
        counter(&m, "cache.misses") - counter(&m, "jobs.failed.compile")
    );

    // Recorder totals agree with the counters.
    assert_eq!(recorder_total(&m, "received"), 6);
    assert_eq!(recorder_total(&m, "admitted"), 4);
    assert_eq!(recorder_total(&m, "started"), 4);
    assert_eq!(recorder_total(&m, "finished"), 3);
    assert_eq!(recorder_total(&m, "rejected"), 1);
    assert_eq!(recorder_total(&m, "failed"), 2);
    // finished + run-stage failures == admitted (compile failures never
    // reach admission).
    assert_eq!(
        recorder_total(&m, "finished") + recorder_total(&m, "failed")
            - counter(&m, "jobs.failed.compile"),
        counter(&m, "jobs.admitted")
    );

    // The tail carries the full lifecycle of the last successful job.
    let events = m
        .get("recorder")
        .and_then(|r| r.get("events"))
        .and_then(Json::as_arr)
        .expect("recorder events");
    let g3: Vec<&str> = events
        .iter()
        .filter(|e| e.get("job").and_then(Json::as_str) == Some("g3"))
        .map(|e| e.get("event").and_then(Json::as_str).expect("event kind"))
        .collect();
    assert_eq!(g3, vec!["received", "admitted", "started", "finished"]);
    let fin = events
        .iter()
        .find(|e| {
            e.get("job").and_then(Json::as_str) == Some("g3")
                && e.get("event").and_then(Json::as_str) == Some("finished")
        })
        .expect("finished event");
    assert!(fin
        .get("predicted_peak_bytes")
        .and_then(Json::as_u64)
        .is_some());
    assert!(fin
        .get("measured_peak_bytes")
        .and_then(Json::as_u64)
        .is_some());
}

/// After a concurrent burst drains, every point-in-time gauge is back to
/// zero and per-device busy flags are down; device utilization is a
/// fraction of uptime.
#[test]
fn gauges_return_to_zero_after_drain() {
    let d = daemon(2);
    std::thread::scope(|scope| {
        for i in 0..4 {
            let d = d.clone();
            scope.spawn(move || {
                for j in 0..3 {
                    let resp =
                        parse(&d.handle_line(&run_line(&format!("t{i}-{j}"), MAP_SRC, 64, true)));
                    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
                }
            });
        }
    });
    let m = scrape(&d);
    let gauges = m.get("gauges").expect("gauges");
    for g in ["inflight", "queue_depth", "devices_busy"] {
        assert_eq!(
            gauges.get(g).and_then(Json::as_u64),
            Some(0),
            "{g} after drain"
        );
    }
    assert!(
        gauges
            .get("uptime_us")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    assert!(
        gauges
            .get("cache_artifacts")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );
    let devices = m.get("devices").and_then(Json::as_arr).expect("devices");
    assert_eq!(devices.len(), 2);
    let mut device_jobs = 0;
    for dev in devices {
        assert_eq!(dev.get("busy"), Some(&Json::Bool(false)));
        let u = dev
            .get("utilization")
            .and_then(Json::as_f64)
            .expect("utilization");
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
        device_jobs += dev.get("jobs").and_then(Json::as_u64).expect("device jobs");
    }
    assert_eq!(device_jobs, counter(&m, "jobs.admitted"));
}

/// Sixteen clients scraping while jobs run: every scrape parses, carries
/// the full declared counter set, and each client's consecutive scrapes
/// are monotone (counters never go backwards, admitted never trails the
/// end-to-end histogram).
#[test]
fn concurrent_scrapes_are_well_formed_and_monotone() {
    let d = daemon(2);
    std::thread::scope(|scope| {
        for i in 0..4 {
            let d = d.clone();
            scope.spawn(move || {
                for j in 0..6 {
                    d.handle_line(&run_line(&format!("w{i}-{j}"), MAP_SRC, 48, true));
                }
            });
        }
        for _ in 0..16 {
            let d = d.clone();
            scope.spawn(move || {
                let mut prev_received = 0u64;
                let mut prev_e2e = 0u64;
                for _ in 0..5 {
                    let m = scrape(&d);
                    for key in COUNTER_KEYS {
                        assert!(
                            m.get("counters").and_then(|c| c.get(key)).is_some(),
                            "scrape missing declared counter {key}"
                        );
                    }
                    let received = counter(&m, "jobs.received");
                    let e2e = hist_count(&m, "e2e_us");
                    assert!(received >= prev_received, "jobs.received went backwards");
                    assert!(e2e >= prev_e2e, "e2e count went backwards");
                    assert!(
                        counter(&m, "jobs.admitted") >= e2e,
                        "admitted ({}) behind e2e observations ({e2e})",
                        counter(&m, "jobs.admitted")
                    );
                    prev_received = received;
                    prev_e2e = e2e;
                }
            });
        }
    });
    // Final state: everything drained and balanced.
    let m = scrape(&d);
    assert_eq!(counter(&m, "jobs.completed"), 24);
    assert_eq!(hist_count(&m, "e2e_us"), 24);
}

/// The Prometheus rendering is reachable through the protocol and has
/// the text-format shape: typed families, zero-valued counters present,
/// cumulative buckets ending at `+Inf`.
#[test]
fn prometheus_rendering_through_the_protocol() {
    let d = daemon(1);
    parse(&d.handle_line(&run_line("a", MAP_SRC, 32, true)));
    let resp = parse(&d.handle_line(r#"{"op":"metrics","id":"p","format":"prometheus"}"#));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    let text = resp
        .get("metrics")
        .and_then(|m| m.get("text"))
        .and_then(Json::as_str)
        .expect("prometheus text body");
    assert!(text.contains("# TYPE futharkd_jobs_received_total counter"));
    assert!(text.contains("futharkd_jobs_received_total 1"));
    assert!(
        text.contains("futharkd_jobs_rejected_total 0"),
        "zeros rendered"
    );
    assert!(text.contains("# TYPE futharkd_e2e_us histogram"));
    assert!(text.contains("futharkd_e2e_us_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("futharkd_e2e_us_count 1"));
    assert!(text.contains("futharkd_device_jobs_total{device=\"gtx780#0\"} 1"));
    // Counters are monotone between scrapes: a second scrape renders the
    // same counter lines (only time-derived gauges may move).
    let again = parse(&d.handle_line(r#"{"op":"metrics","id":"p2","format":"prometheus"}"#));
    let text2 = again
        .get("metrics")
        .and_then(|m| m.get("text"))
        .and_then(Json::as_str)
        .expect("prometheus text body");
    for line in text.lines().filter(|l| l.contains("_total")) {
        assert!(text2.contains(line), "counter line changed: {line}");
    }
}

/// The Chrome export lays finished jobs on named device tracks with a
/// queue track and queue-depth counter samples.
#[test]
fn chrome_timeline_through_the_protocol() {
    let d = daemon(2);
    parse(&d.handle_line(&run_line("a", MAP_SRC, 32, true)));
    parse(&d.handle_line(&run_line("b", SCAN_SRC, 32, true)));
    let resp = parse(&d.handle_line(r#"{"op":"metrics","id":"c","format":"chrome"}"#));
    let events = resp
        .get("metrics")
        .and_then(|m| m.get("traceEvents"))
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    assert!(names.contains(&"queue"), "queue track named, got {names:?}");
    assert!(names.contains(&"device gtx780#0"));
    assert!(names.contains(&"device gtx780#1"));
    let slices = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("cat").and_then(Json::as_str) == Some("job")
        })
        .count();
    assert_eq!(slices, 2, "one execution slice per finished job");
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(Json::as_str) == Some("C")));
}

/// Run responses report where the job landed and how deep the device
/// queue was at admission.
#[test]
fn run_response_carries_placement_metadata() {
    let d = daemon(1);
    let resp = parse(&d.handle_line(&run_line("a", MAP_SRC, 32, true)));
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(resp.get("device").and_then(Json::as_str), Some("gtx780#0"));
    assert_eq!(
        resp.get("queue_depth_at_admission").and_then(Json::as_u64),
        Some(0)
    );
}

/// `stats` is derived from the registry but keeps its original key set
/// and values.
#[test]
fn stats_agrees_with_the_registry() {
    let d = daemon(1);
    parse(&d.handle_line(&run_line("a", MAP_SRC, 32, true)));
    parse(&d.handle_line(&run_line("b", MAP_SRC, 32, true)));
    let stats = parse(&d.handle_line(r#"{"op":"stats","id":"s"}"#));
    let body = stats.get("stats").expect("stats body");
    let m = scrape(&d);
    assert_eq!(
        body.get("jobs_completed").and_then(Json::as_u64),
        Some(counter(&m, "jobs.completed"))
    );
    assert_eq!(
        body.get("cache")
            .and_then(|c| c.get("hits"))
            .and_then(Json::as_u64),
        Some(counter(&m, "cache.hits"))
    );
}

/// The TCP accept loop polls at the configured interval and counts its
/// idle wakeups in the registry.
#[test]
fn accept_loop_wakeups_are_counted() {
    let d = Daemon::new(DaemonConfig {
        devices: vec![DeviceProfile::gtx780()],
        workers: 2,
        cache_capacity: 8,
        accept_poll_ms: 1,
        ..DaemonConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = {
        let d = d.clone();
        std::thread::spawn(move || serve_tcp(&d, listener))
    };
    // Let the accept loop spin idle for a few polls before connecting.
    std::thread::sleep(Duration::from_millis(50));

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    stream
        .write_all(format!("{}\n", run_line("t", MAP_SRC, 16, true)).as_bytes())
        .expect("write");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert_eq!(
        parse(&line).get("status").and_then(Json::as_str),
        Some("ok")
    );
    stream
        .write_all(b"{\"op\":\"shutdown\",\"id\":\"z\"}\n")
        .expect("write");
    line.clear();
    reader.read_line(&mut line).expect("read");
    server.join().expect("server thread").expect("serve_tcp");

    assert!(
        d.metrics().get("accept.wakeups") > 0,
        "idle polls must be counted"
    );
}

//! Scalar operator semantics shared by the interpreter and the GPU
//! simulator.

use crate::InterpError;
use futhark_core::{BinOp, CmpOp, Scalar, ScalarType, UnOp};

type SResult = Result<Scalar, InterpError>;

fn type_err(msg: impl Into<String>) -> InterpError {
    InterpError::Type(msg.into())
}

// Futhark's `/` and `%` on integers are *floored* division and modulo
// (rounding toward negative infinity, remainder taking the sign of the
// divisor), not Rust's truncating `/`/`%`.  The helpers below are the single
// definition of that semantics: the interpreter, the GPU simulator's decoded
// tape, and the simplifier's constant folder all call them, so the three
// evaluators cannot drift apart.  (That sharing is also why the differential
// fuzzer never caught the original truncation bug — both sides of the oracle
// computed the same wrong answer.)
//
// `i64::MIN / -1` (and the i32 analogue) overflows; consistent with every
// other arithmetic op here it wraps: `wrapping_div` yields `MIN` with
// remainder 0, which the floored adjustment leaves untouched.

/// Floored division on `i64`. The divisor must be non-zero.
#[inline]
pub fn floor_div_i64(x: i64, y: i64) -> i64 {
    let q = x.wrapping_div(y);
    let r = x.wrapping_rem(y);
    if r != 0 && (r < 0) != (y < 0) {
        q.wrapping_sub(1)
    } else {
        q
    }
}

/// Floored modulo on `i64` (result has the divisor's sign). The divisor must
/// be non-zero.
#[inline]
pub fn floor_mod_i64(x: i64, y: i64) -> i64 {
    let r = x.wrapping_rem(y);
    if r != 0 && (r < 0) != (y < 0) {
        r.wrapping_add(y)
    } else {
        r
    }
}

/// Floored division on `i32`. The divisor must be non-zero.
#[inline]
pub fn floor_div_i32(x: i32, y: i32) -> i32 {
    let q = x.wrapping_div(y);
    let r = x.wrapping_rem(y);
    if r != 0 && (r < 0) != (y < 0) {
        q.wrapping_sub(1)
    } else {
        q
    }
}

/// Floored modulo on `i32` (result has the divisor's sign). The divisor must
/// be non-zero.
#[inline]
pub fn floor_mod_i32(x: i32, y: i32) -> i32 {
    let r = x.wrapping_rem(y);
    if r != 0 && (r < 0) != (y < 0) {
        r.wrapping_add(y)
    } else {
        r
    }
}

// Float→int conversion edge cases are defined explicitly rather than
// inherited from whatever `as` does: NaN converts to 0, and values outside
// the target range (including ±inf) saturate to the target's MIN/MAX.  Both
// the interpreter ([`eval_convert`]) and the simulator's decoded-tape
// `Convert` op route through these two functions.

/// Converts an `f64` to `i32` with explicit edge-case semantics: NaN → 0,
/// out-of-range (including ±inf) saturates.
#[inline]
pub fn f64_to_i32(x: f64) -> i32 {
    if x.is_nan() {
        0
    } else if x >= i32::MAX as f64 {
        i32::MAX
    } else if x <= i32::MIN as f64 {
        i32::MIN
    } else {
        x as i32
    }
}

/// Converts an `f64` to `i64` with explicit edge-case semantics: NaN → 0,
/// out-of-range (including ±inf) saturates.
///
/// The upper bound uses `>=` because `i64::MAX as f64` rounds *up* to
/// 2^63, which is the first double no longer representable in `i64`.
#[inline]
pub fn f64_to_i64(x: f64) -> i64 {
    if x.is_nan() {
        0
    } else if x >= i64::MAX as f64 {
        i64::MAX
    } else if x <= i64::MIN as f64 {
        // `i64::MIN as f64` is exactly -2^63, which *is* representable, so
        // `<=` keeps it (and everything below saturates to it).
        i64::MIN
    } else {
        x as i64
    }
}

/// Evaluates a binary operator on two scalars of the same type.
///
/// # Errors
///
/// Returns [`InterpError::DivisionByZero`] for integer division/remainder by
/// zero and [`InterpError::Type`] on operand type mismatches.
pub fn eval_binop(op: BinOp, a: Scalar, b: Scalar) -> SResult {
    use BinOp::*;
    use Scalar::*;
    match (a, b) {
        (I32(x), I32(y)) => Ok(I32(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                floor_div_i32(x, y)
            }
            Rem => {
                if y == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                floor_mod_i32(x, y)
            }
            Min => x.min(y),
            Max => x.max(y),
            Pow | Atan2 => return Err(type_err("pow/atan2 on integers")),
            And | Or => return Err(type_err("logical op on integers")),
        })),
        (I64(x), I64(y)) => Ok(I64(match op {
            Add => x.wrapping_add(y),
            Sub => x.wrapping_sub(y),
            Mul => x.wrapping_mul(y),
            Div => {
                if y == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                floor_div_i64(x, y)
            }
            Rem => {
                if y == 0 {
                    return Err(InterpError::DivisionByZero);
                }
                floor_mod_i64(x, y)
            }
            Min => x.min(y),
            Max => x.max(y),
            Pow | Atan2 => return Err(type_err("pow/atan2 on integers")),
            And | Or => return Err(type_err("logical op on integers")),
        })),
        (F32(x), F32(y)) => Ok(F32(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
            Min => x.min(y),
            Max => x.max(y),
            Pow => x.powf(y),
            Atan2 => x.atan2(y),
            And | Or => return Err(type_err("logical op on floats")),
        })),
        (F64(x), F64(y)) => Ok(F64(match op {
            Add => x + y,
            Sub => x - y,
            Mul => x * y,
            Div => x / y,
            Rem => x % y,
            Min => x.min(y),
            Max => x.max(y),
            Pow => x.powf(y),
            Atan2 => x.atan2(y),
            And | Or => return Err(type_err("logical op on floats")),
        })),
        (Bool(x), Bool(y)) => Ok(Bool(match op {
            And => x && y,
            Or => x || y,
            _ => return Err(type_err("arithmetic on booleans")),
        })),
        (a, b) => Err(type_err(format!(
            "operand type mismatch: {:?} vs {:?}",
            a.scalar_type(),
            b.scalar_type()
        ))),
    }
}

/// Evaluates a comparison on two scalars of the same type.
///
/// # Errors
///
/// Returns [`InterpError::Type`] on operand type mismatches.
pub fn eval_cmp(op: CmpOp, a: Scalar, b: Scalar) -> SResult {
    use Scalar::*;
    fn cmp<T: PartialOrd>(op: CmpOp, x: T, y: T) -> bool {
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
    let r = match (a, b) {
        (I32(x), I32(y)) => cmp(op, x, y),
        (I64(x), I64(y)) => cmp(op, x, y),
        (F32(x), F32(y)) => cmp(op, x, y),
        (F64(x), F64(y)) => cmp(op, x, y),
        (Bool(x), Bool(y)) => cmp(op, x, y),
        (a, b) => {
            return Err(type_err(format!(
                "comparison type mismatch: {:?} vs {:?}",
                a.scalar_type(),
                b.scalar_type()
            )))
        }
    };
    Ok(Scalar::Bool(r))
}

/// Evaluates a unary operator.
///
/// # Errors
///
/// Returns [`InterpError::Type`] when the operand type does not support the
/// operator.
pub fn eval_unop(op: UnOp, a: Scalar) -> SResult {
    use Scalar::*;
    use UnOp::*;
    match (op, a) {
        (Neg, I32(x)) => Ok(I32(x.wrapping_neg())),
        (Neg, I64(x)) => Ok(I64(x.wrapping_neg())),
        (Neg, F32(x)) => Ok(F32(-x)),
        (Neg, F64(x)) => Ok(F64(-x)),
        (Not, Bool(x)) => Ok(Bool(!x)),
        (Abs, I32(x)) => Ok(I32(x.wrapping_abs())),
        (Abs, I64(x)) => Ok(I64(x.wrapping_abs())),
        (Abs, F32(x)) => Ok(F32(x.abs())),
        (Abs, F64(x)) => Ok(F64(x.abs())),
        (Signum, I32(x)) => Ok(I32(x.signum())),
        (Signum, I64(x)) => Ok(I64(x.signum())),
        (Signum, F32(x)) => Ok(F32(if x > 0.0 {
            1.0
        } else if x < 0.0 {
            -1.0
        } else {
            0.0
        })),
        (Signum, F64(x)) => Ok(F64(if x > 0.0 {
            1.0
        } else if x < 0.0 {
            -1.0
        } else {
            0.0
        })),
        (Sqrt, F32(x)) => Ok(F32(x.sqrt())),
        (Sqrt, F64(x)) => Ok(F64(x.sqrt())),
        (Exp, F32(x)) => Ok(F32(x.exp())),
        (Exp, F64(x)) => Ok(F64(x.exp())),
        (Log, F32(x)) => Ok(F32(x.ln())),
        (Log, F64(x)) => Ok(F64(x.ln())),
        (Sin, F32(x)) => Ok(F32(x.sin())),
        (Sin, F64(x)) => Ok(F64(x.sin())),
        (Cos, F32(x)) => Ok(F32(x.cos())),
        (Cos, F64(x)) => Ok(F64(x.cos())),
        (Tanh, F32(x)) => Ok(F32(x.tanh())),
        (Tanh, F64(x)) => Ok(F64(x.tanh())),
        (op, a) => Err(type_err(format!("unary {op:?} on {:?}", a.scalar_type()))),
    }
}

/// Converts a scalar to the given type.
///
/// # Errors
///
/// Returns [`InterpError::Type`] for boolean conversions.
pub fn eval_convert(t: ScalarType, a: Scalar) -> SResult {
    use Scalar::*;
    let x = match a {
        I32(v) => v as f64,
        I64(v) => v as f64,
        F32(v) => v as f64,
        F64(v) => v,
        Bool(_) => return Err(type_err("conversion from bool")),
    };
    Ok(match t {
        ScalarType::I32 => I32(match a {
            I64(v) => v as i32,
            I32(v) => v,
            _ => f64_to_i32(x),
        }),
        ScalarType::I64 => I64(match a {
            I32(v) => v as i64,
            I64(v) => v,
            _ => f64_to_i64(x),
        }),
        ScalarType::F32 => F32(x as f32),
        ScalarType::F64 => F64(x),
        ScalarType::Bool => return Err(type_err("conversion to bool")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Add, Scalar::I64(2), Scalar::I64(3)).unwrap(),
            Scalar::I64(5)
        );
        assert_eq!(
            eval_binop(BinOp::Rem, Scalar::I32(7), Scalar::I32(4)).unwrap(),
            Scalar::I32(3)
        );
        assert!(matches!(
            eval_binop(BinOp::Div, Scalar::I64(1), Scalar::I64(0)),
            Err(InterpError::DivisionByZero)
        ));
    }

    #[test]
    fn floored_division_and_modulo() {
        // Quotient rounds toward -inf; remainder takes the divisor's sign.
        for &(x, y, q, r) in &[
            (7i64, 2i64, 3i64, 1i64),
            (-7, 2, -4, 1),
            (7, -2, -4, -1),
            (-7, -2, 3, -1),
            (6, 3, 2, 0),
            (-6, 3, -2, 0),
            (i64::MIN, -1, i64::MIN, 0), // wraps, like every other op
            (i64::MIN, 2, i64::MIN / 2, 0),
            (i64::MAX, -1, -i64::MAX, 0),
        ] {
            assert_eq!(
                eval_binop(BinOp::Div, Scalar::I64(x), Scalar::I64(y)).unwrap(),
                Scalar::I64(q),
                "{x} / {y}"
            );
            assert_eq!(
                eval_binop(BinOp::Rem, Scalar::I64(x), Scalar::I64(y)).unwrap(),
                Scalar::I64(r),
                "{x} % {y}"
            );
            // The defining identity: x == (x / y) * y + (x % y), wrapping.
            assert_eq!(q.wrapping_mul(y).wrapping_add(r), x);
        }
        for &(x, y, q, r) in &[
            (-7i32, 2i32, -4i32, 1i32),
            (7, -2, -4, -1),
            (i32::MIN, -1, i32::MIN, 0),
        ] {
            assert_eq!(
                eval_binop(BinOp::Div, Scalar::I32(x), Scalar::I32(y)).unwrap(),
                Scalar::I32(q)
            );
            assert_eq!(
                eval_binop(BinOp::Rem, Scalar::I32(x), Scalar::I32(y)).unwrap(),
                Scalar::I32(r)
            );
        }
        assert!(matches!(
            eval_binop(BinOp::Rem, Scalar::I32(5), Scalar::I32(0)),
            Err(InterpError::DivisionByZero)
        ));
    }

    #[test]
    fn float_to_int_edge_cases() {
        // NaN → 0; ±inf and out-of-range saturate — explicitly, not as a
        // side effect of Rust's `as`.
        for t in [ScalarType::I32, ScalarType::I64] {
            assert_eq!(
                eval_convert(t, Scalar::F64(f64::NAN)).unwrap(),
                eval_convert(t, Scalar::F64(0.0)).unwrap()
            );
        }
        assert_eq!(
            eval_convert(ScalarType::I32, Scalar::F64(f64::INFINITY)).unwrap(),
            Scalar::I32(i32::MAX)
        );
        assert_eq!(
            eval_convert(ScalarType::I32, Scalar::F64(f64::NEG_INFINITY)).unwrap(),
            Scalar::I32(i32::MIN)
        );
        assert_eq!(
            eval_convert(ScalarType::I32, Scalar::F64(1e12)).unwrap(),
            Scalar::I32(i32::MAX)
        );
        assert_eq!(
            eval_convert(ScalarType::I32, Scalar::F64(-1e12)).unwrap(),
            Scalar::I32(i32::MIN)
        );
        assert_eq!(
            eval_convert(ScalarType::I64, Scalar::F64(1e300)).unwrap(),
            Scalar::I64(i64::MAX)
        );
        assert_eq!(
            eval_convert(ScalarType::I64, Scalar::F64(-1e300)).unwrap(),
            Scalar::I64(i64::MIN)
        );
        // -2^63 is exactly representable and must convert exactly.
        assert_eq!(
            eval_convert(ScalarType::I64, Scalar::F64(i64::MIN as f64)).unwrap(),
            Scalar::I64(i64::MIN)
        );
        // 2^63 (what `i64::MAX as f64` rounds to) is out of range → MAX.
        assert_eq!(
            eval_convert(ScalarType::I64, Scalar::F64(i64::MAX as f64)).unwrap(),
            Scalar::I64(i64::MAX)
        );
        assert_eq!(
            eval_convert(ScalarType::I32, Scalar::F32(-3.9)).unwrap(),
            Scalar::I32(-3)
        );
    }

    #[test]
    fn float_arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Pow, Scalar::F64(2.0), Scalar::F64(10.0)).unwrap(),
            Scalar::F64(1024.0)
        );
        assert_eq!(
            eval_binop(BinOp::Min, Scalar::F32(1.5), Scalar::F32(-1.0)).unwrap(),
            Scalar::F32(-1.0)
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            eval_cmp(CmpOp::Lt, Scalar::I64(1), Scalar::I64(2)).unwrap(),
            Scalar::Bool(true)
        );
        assert_eq!(
            eval_cmp(CmpOp::Ge, Scalar::F32(1.0), Scalar::F32(1.0)).unwrap(),
            Scalar::Bool(true)
        );
        assert!(eval_cmp(CmpOp::Eq, Scalar::I64(1), Scalar::I32(1)).is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(
            eval_unop(UnOp::Neg, Scalar::I64(5)).unwrap(),
            Scalar::I64(-5)
        );
        assert_eq!(
            eval_unop(UnOp::Sqrt, Scalar::F64(9.0)).unwrap(),
            Scalar::F64(3.0)
        );
        assert_eq!(
            eval_unop(UnOp::Signum, Scalar::F32(-2.0)).unwrap(),
            Scalar::F32(-1.0)
        );
        assert!(eval_unop(UnOp::Sqrt, Scalar::I64(9)).is_err());
    }

    #[test]
    fn conversions() {
        assert_eq!(
            eval_convert(ScalarType::F32, Scalar::I64(3)).unwrap(),
            Scalar::F32(3.0)
        );
        assert_eq!(
            eval_convert(ScalarType::I32, Scalar::F64(3.9)).unwrap(),
            Scalar::I32(3)
        );
        assert!(eval_convert(ScalarType::Bool, Scalar::I64(1)).is_err());
    }
}

//! Reference interpreter for the core IR.
//!
//! This is the executable form of the paper's array-combinator calculus
//! (Section 2.1): a direct, sequential implementation of the semantics used
//! as the correctness oracle for every compiler pass and for the GPU
//! simulator. It also accounts *work* and *span* in the work–depth model,
//! which the evaluation harness uses to report asymptotic effects such as
//! the O(n·k) vs O(n) K-means formulations of Figure 4.
//!
//! Streaming SOACs are chunked according to a configurable
//! [`Interpreter::set_chunk_size`]; by the paper's well-definedness argument
//! (Section 2.1, `sFold`), a correct program yields the same result for any
//! partitioning — a property the test suite exercises directly.

pub mod scalar;

use futhark_core::{
    ArrayVal, Body, Buffer, Exp, FunDef, Lambda, LoopForm, Name, Program, Scalar, Soac, SubExp,
    Type, Value,
};
use scalar::{eval_binop, eval_cmp, eval_convert, eval_unop};
use std::collections::HashMap;
use std::fmt;

/// An interpretation error.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Array index out of bounds.
    OutOfBounds {
        /// Description of the access.
        what: String,
    },
    /// Division or remainder by zero.
    DivisionByZero,
    /// A `map` produced rows of different shapes (irregular array).
    Irregular,
    /// A dynamically checked size postcondition failed.
    SizeMismatch(String),
    /// Ill-typed IR reached the interpreter (a compiler bug).
    Type(String),
    /// Unknown function.
    UnknownFunction(String),
    /// Negative size passed to `iota`/`replicate`.
    NegativeSize(i64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds { what } => write!(f, "index out of bounds: {what}"),
            InterpError::DivisionByZero => write!(f, "division by zero"),
            InterpError::Irregular => write!(f, "irregular array constructed"),
            InterpError::SizeMismatch(m) => write!(f, "size mismatch: {m}"),
            InterpError::Type(m) => write!(f, "type error at runtime: {m}"),
            InterpError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            InterpError::NegativeSize(k) => write!(f, "negative size {k}"),
        }
    }
}

impl std::error::Error for InterpError {}

type IResult<T> = Result<T, InterpError>;

/// Work–depth accounting for one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cost {
    /// Total number of scalar operations / element touches.
    pub work: u64,
    /// Critical-path length under the parallel semantics of the SOACs.
    pub span: u64,
}

/// The reference interpreter.
///
/// ```
/// use futhark_interp::Interpreter;
/// use futhark_core::Value;
///
/// let (prog, _) = futhark_frontend::parse_program(
///     "fun main (x: i64): i64 = let y = x * x in y").unwrap();
/// let mut interp = Interpreter::new(&prog);
/// let out = interp.run("main", &[Value::i64(7)]).unwrap();
/// assert_eq!(out, vec![Value::i64(49)]);
/// ```
#[derive(Debug)]
pub struct Interpreter<'a> {
    prog: &'a Program,
    work: u64,
    /// Chunk size for streaming SOACs; `None` means one single chunk.
    chunk: Option<usize>,
}

type Env = HashMap<Name, Value>;

impl<'a> Interpreter<'a> {
    /// Creates an interpreter for a program.
    pub fn new(prog: &'a Program) -> Self {
        Interpreter {
            prog,
            work: 0,
            chunk: None,
        }
    }

    /// Sets the chunk size used for `stream_*` SOACs (default: the whole
    /// input as one chunk). Any positive size must produce the same results
    /// for well-formed programs.
    pub fn set_chunk_size(&mut self, c: usize) -> &mut Self {
        self.chunk = if c == 0 { None } else { Some(c) };
        self
    }

    /// Total work performed since construction.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Runs a named function on the given arguments.
    ///
    /// # Errors
    ///
    /// Returns an [`InterpError`] for runtime failures (bounds, zero
    /// division, irregular arrays) or ill-formed IR.
    pub fn run(&mut self, func: &str, args: &[Value]) -> IResult<Vec<Value>> {
        let f = self
            .prog
            .function(func)
            .ok_or_else(|| InterpError::UnknownFunction(func.to_string()))?;
        if f.params.len() != args.len() {
            return Err(InterpError::Type(format!(
                "`{func}` expects {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut env: Env = HashMap::new();
        bind_params(&mut env, f, args)?;
        let (vals, _span) = self.eval_body(&env, &f.body)?;
        Ok(vals)
    }

    /// Runs `main`.
    ///
    /// # Errors
    ///
    /// As [`Interpreter::run`].
    pub fn run_main(&mut self, args: &[Value]) -> IResult<Vec<Value>> {
        self.run("main", args)
    }

    /// Applies a standalone lambda to argument values (used by the GPU
    /// runtime for host-side combine steps).
    ///
    /// # Errors
    ///
    /// As [`Interpreter::run`].
    pub fn eval_lambda(&mut self, lam: &Lambda, args: &[Value]) -> IResult<Vec<Value>> {
        let env = Env::new();
        self.apply_lambda(&env, lam, args).map(|(v, _)| v)
    }

    /// Applies a standalone lambda with additional free-variable bindings
    /// in scope.
    ///
    /// # Errors
    ///
    /// As [`Interpreter::run`].
    pub fn eval_lambda_with(
        &mut self,
        bindings: &HashMap<Name, Value>,
        lam: &Lambda,
        args: &[Value],
    ) -> IResult<Vec<Value>> {
        self.apply_lambda(bindings, lam, args).map(|(v, _)| v)
    }

    /// Evaluates a single expression under the given variable bindings
    /// (used by the GPU runtime's host-side scalar evaluation).
    ///
    /// # Errors
    ///
    /// As [`Interpreter::run`].
    pub fn eval_exp_with(
        &mut self,
        bindings: &HashMap<Name, Value>,
        exp: &Exp,
    ) -> IResult<Vec<Value>> {
        self.eval_exp(bindings, exp).map(|(v, _)| v)
    }

    fn eval_body(&mut self, env: &Env, body: &Body) -> IResult<(Vec<Value>, u64)> {
        let mut env = env.clone();
        let mut span = 0u64;
        for stm in &body.stms {
            let (vals, s) = self.eval_exp(&env, &stm.exp)?;
            span += s;
            if vals.len() != stm.pat.len() {
                return Err(InterpError::Type(format!(
                    "statement pattern of {} names bound to {} values",
                    stm.pat.len(),
                    vals.len()
                )));
            }
            for (pe, v) in stm.pat.iter().zip(vals) {
                env.insert(pe.name.clone(), v);
            }
        }
        let mut out = Vec::with_capacity(body.result.len());
        for se in &body.result {
            out.push(self.eval_subexp(&env, se)?);
        }
        Ok((out, span))
    }

    fn eval_subexp(&self, env: &Env, se: &SubExp) -> IResult<Value> {
        match se {
            SubExp::Const(k) => Ok(Value::Scalar(*k)),
            SubExp::Var(v) => env
                .get(v)
                .cloned()
                .ok_or_else(|| InterpError::Type(format!("unbound variable {v}"))),
        }
    }

    fn scalar(&self, env: &Env, se: &SubExp) -> IResult<Scalar> {
        self.eval_subexp(env, se)?
            .as_scalar()
            .ok_or_else(|| InterpError::Type("expected scalar".into()))
    }

    fn array(&self, env: &Env, name: &Name) -> IResult<ArrayVal> {
        match env.get(name) {
            Some(Value::Array(a)) => Ok(a.clone()),
            Some(Value::Scalar(_)) => Err(InterpError::Type(format!("{name} is not an array"))),
            None => Err(InterpError::Type(format!("unbound variable {name}"))),
        }
    }

    fn index_of(&self, env: &Env, se: &SubExp) -> IResult<i64> {
        self.scalar(env, se)?
            .as_i64()
            .ok_or_else(|| InterpError::Type("expected integer index".into()))
    }

    fn eval_exp(&mut self, env: &Env, exp: &Exp) -> IResult<(Vec<Value>, u64)> {
        match exp {
            Exp::SubExp(se) => Ok((vec![self.eval_subexp(env, se)?], 0)),
            Exp::UnOp(op, a) => {
                self.work += 1;
                let v = self.scalar(env, a)?;
                Ok((vec![Value::Scalar(eval_unop(*op, v)?)], 1))
            }
            Exp::BinOp(op, a, b) => {
                self.work += 1;
                let x = self.scalar(env, a)?;
                let y = self.scalar(env, b)?;
                Ok((vec![Value::Scalar(eval_binop(*op, x, y)?)], 1))
            }
            Exp::Cmp(op, a, b) => {
                self.work += 1;
                let x = self.scalar(env, a)?;
                let y = self.scalar(env, b)?;
                Ok((vec![Value::Scalar(eval_cmp(*op, x, y)?)], 1))
            }
            Exp::Convert(t, a) => {
                self.work += 1;
                let v = self.scalar(env, a)?;
                Ok((vec![Value::Scalar(eval_convert(*t, v)?)], 1))
            }
            Exp::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self
                    .scalar(env, cond)?
                    .as_bool()
                    .ok_or_else(|| InterpError::Type("if condition not boolean".into()))?;
                let (vals, s) = if c {
                    self.eval_body(env, then_body)?
                } else {
                    self.eval_body(env, else_body)?
                };
                Ok((vals, s + 1))
            }
            Exp::Apply { func, args } => {
                let f = self
                    .prog
                    .function(func)
                    .ok_or_else(|| InterpError::UnknownFunction(func.clone()))?;
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval_subexp(env, a)?);
                }
                let mut fenv = Env::new();
                bind_params(&mut fenv, f, &vals)?;
                self.eval_body(&fenv, &f.body)
            }
            Exp::Index { array, indices } => {
                self.work += 1;
                let arr = self.array(env, array)?;
                let idx: Vec<i64> = indices
                    .iter()
                    .map(|i| self.index_of(env, i))
                    .collect::<IResult<_>>()?;
                let v = if idx.len() == arr.rank() {
                    arr.index_scalar(&idx).map(Value::Scalar)
                } else {
                    arr.index_slice(&idx).map(Value::Array)
                };
                v.map(|v| (vec![v], 1))
                    .ok_or_else(|| InterpError::OutOfBounds {
                        what: format!("{array}{idx:?} (shape {:?})", arr.shape),
                    })
            }
            Exp::Update {
                array,
                indices,
                value,
            } => {
                // The uniqueness type system guarantees this is an O(element)
                // operation at runtime; the interpreter clones for purity but
                // accounts in-place cost.
                self.work += 1;
                let mut arr = self.array(env, array)?;
                let idx: Vec<i64> = indices
                    .iter()
                    .map(|i| self.index_of(env, i))
                    .collect::<IResult<_>>()?;
                let ok = match self.eval_subexp(env, value)? {
                    Value::Scalar(s) => arr.update_scalar(&idx, s),
                    Value::Array(v) => arr.update_slice(&idx, &v),
                };
                if !ok {
                    return Err(InterpError::OutOfBounds {
                        what: format!("update {array}{idx:?} (shape {:?})", arr.shape),
                    });
                }
                Ok((vec![Value::Array(arr)], 1))
            }
            Exp::Iota(n) => {
                let n = self.index_of(env, n)?;
                if n < 0 {
                    return Err(InterpError::NegativeSize(n));
                }
                self.work += n as u64;
                Ok((vec![Value::Array(ArrayVal::from_i64s((0..n).collect()))], 1))
            }
            Exp::Replicate(n, v) => {
                let n = self.index_of(env, n)?;
                if n < 0 {
                    return Err(InterpError::NegativeSize(n));
                }
                let v = self.eval_subexp(env, v)?;
                let arr = match v {
                    Value::Scalar(s) => {
                        self.work += n as u64;
                        let t = s.scalar_type();
                        ArrayVal::new(vec![n as usize], Buffer::from_scalars(t, (0..n).map(|_| s)))
                    }
                    Value::Array(a) => {
                        self.work += n as u64 * a.data.len() as u64;
                        let mut shape = vec![n as usize];
                        shape.extend(&a.shape);
                        let total = n as usize * a.data.len();
                        let mut buf = Buffer::zeros(a.elem_type(), total);
                        for i in 0..n as usize {
                            buf.copy_from(i * a.data.len(), &a.data, 0, a.data.len());
                        }
                        ArrayVal::new(shape, buf)
                    }
                };
                Ok((vec![Value::Array(arr)], 1))
            }
            Exp::Rearrange { perm, array } => {
                let arr = self.array(env, array)?;
                self.work += arr.data.len() as u64;
                Ok((vec![Value::Array(arr.rearrange(perm))], 1))
            }
            Exp::Reshape { shape, array } => {
                let arr = self.array(env, array)?;
                let dims: Vec<usize> = shape
                    .iter()
                    .map(|s| self.index_of(env, s).map(|k| k as usize))
                    .collect::<IResult<_>>()?;
                arr.reshape(dims.clone())
                    .map(|a| (vec![Value::Array(a)], 1))
                    .ok_or_else(|| {
                        InterpError::SizeMismatch(format!("reshape {:?} -> {:?}", arr.shape, dims))
                    })
            }
            Exp::Concat { arrays } => {
                let arrs: Vec<ArrayVal> = arrays
                    .iter()
                    .map(|a| self.array(env, a))
                    .collect::<IResult<_>>()?;
                let refs: Vec<&ArrayVal> = arrs.iter().collect();
                self.work += arrs.iter().map(|a| a.data.len() as u64).sum::<u64>();
                Ok((vec![Value::Array(ArrayVal::concat(&refs))], 1))
            }
            Exp::Copy(a) => {
                let arr = self.array(env, a)?;
                self.work += arr.data.len() as u64;
                Ok((vec![Value::Array(arr)], 1))
            }
            Exp::Loop { params, form, body } => self.eval_loop(env, params, form, body),
            Exp::Soac(soac) => self.eval_soac(env, soac),
        }
    }

    fn eval_loop(
        &mut self,
        env: &Env,
        params: &[(futhark_core::Param, SubExp)],
        form: &LoopForm,
        body: &Body,
    ) -> IResult<(Vec<Value>, u64)> {
        let mut env = env.clone();
        let mut merge: Vec<Value> = params
            .iter()
            .map(|(_, init)| self.eval_subexp(&env, init))
            .collect::<IResult<_>>()?;
        let mut span = 0u64;
        match form {
            LoopForm::For { var, bound } => {
                let n = self.index_of(&env, bound)?;
                for i in 0..n {
                    for ((p, _), v) in params.iter().zip(&merge) {
                        env.insert(p.name.clone(), v.clone());
                    }
                    env.insert(var.clone(), Value::i64(i));
                    let (vals, s) = self.eval_body(&env, body)?;
                    span += s;
                    merge = vals;
                }
            }
            LoopForm::While(cond) => loop {
                for ((p, _), v) in params.iter().zip(&merge) {
                    env.insert(p.name.clone(), v.clone());
                }
                let (cvals, s) = self.eval_body(&env, cond)?;
                span += s;
                let c = cvals
                    .first()
                    .and_then(Value::as_scalar)
                    .and_then(|s| s.as_bool())
                    .ok_or_else(|| InterpError::Type("while condition not boolean".into()))?;
                if !c {
                    break;
                }
                let (vals, s) = self.eval_body(&env, body)?;
                span += s;
                merge = vals;
            },
        }
        Ok((merge, span))
    }

    /// Applies a lambda to argument values. Lambdas capture the enclosing
    /// scope, so evaluation extends `env`.
    fn apply_lambda(
        &mut self,
        env: &Env,
        lam: &Lambda,
        args: &[Value],
    ) -> IResult<(Vec<Value>, u64)> {
        if lam.params.len() != args.len() {
            return Err(InterpError::Type(format!(
                "lambda of {} params applied to {} values",
                lam.params.len(),
                args.len()
            )));
        }
        let mut env = env.clone();
        for (p, a) in lam.params.iter().zip(args) {
            env.insert(p.name.clone(), a.clone());
        }
        self.eval_body(&env, &lam.body)
    }

    fn width_of(&self, env: &Env, width: &SubExp, arrs: &[Name]) -> IResult<usize> {
        let n = self.index_of(env, width)?;
        if n < 0 {
            return Err(InterpError::NegativeSize(n));
        }
        for a in arrs {
            let arr = self.array(env, a)?;
            if arr.shape[0] != n as usize {
                return Err(InterpError::SizeMismatch(format!(
                    "SOAC width {n} but input {a} has outer size {}",
                    arr.shape[0]
                )));
            }
        }
        Ok(n as usize)
    }

    /// Extracts row `i` of each input array.
    fn rows_at(&self, env: &Env, arrs: &[Name], i: i64) -> IResult<Vec<Value>> {
        arrs.iter()
            .map(|a| {
                let arr = self.array(env, a)?;
                if arr.rank() == 1 {
                    arr.index_scalar(&[i]).map(Value::Scalar)
                } else {
                    arr.index_slice(&[i]).map(Value::Array)
                }
                .ok_or_else(|| InterpError::OutOfBounds {
                    what: format!("row {i} of {a}"),
                })
            })
            .collect()
    }

    /// Assembles per-iteration results into result arrays, enforcing
    /// regularity.
    fn assemble(&mut self, n: usize, per_iter: Vec<Vec<Value>>, k: usize) -> IResult<Vec<Value>> {
        let mut out = Vec::with_capacity(k);
        for j in 0..k {
            let first = &per_iter[0][j];
            match first {
                Value::Scalar(s0) => {
                    let t = s0.scalar_type();
                    let mut buf = Buffer::zeros(t, n);
                    for (i, row) in per_iter.iter().enumerate() {
                        let s = row[j].as_scalar().ok_or(InterpError::Irregular)?;
                        if s.scalar_type() != t {
                            return Err(InterpError::Irregular);
                        }
                        buf.set(i, s);
                    }
                    out.push(Value::Array(ArrayVal::new(vec![n], buf)));
                }
                Value::Array(a0) => {
                    let inner = a0.shape.clone();
                    let t = a0.elem_type();
                    let row_len = a0.data.len();
                    let mut shape = vec![n];
                    shape.extend(&inner);
                    let mut buf = Buffer::zeros(t, n * row_len);
                    for (i, row) in per_iter.iter().enumerate() {
                        let a = row[j].as_array().ok_or(InterpError::Irregular)?;
                        if a.shape != inner || a.elem_type() != t {
                            return Err(InterpError::Irregular);
                        }
                        buf.copy_from(i * row_len, &a.data, 0, row_len);
                    }
                    out.push(Value::Array(ArrayVal::new(shape, buf)));
                }
            }
        }
        Ok(out)
    }

    /// Splits inputs into chunks for the streaming SOACs.
    fn chunk_bounds(&self, n: usize) -> Vec<(usize, usize)> {
        let c = self.chunk.unwrap_or(n.max(1));
        let mut out = Vec::new();
        let mut at = 0;
        while at < n {
            let len = c.min(n - at);
            out.push((at, len));
            at += len;
        }
        if out.is_empty() {
            out.push((0, 0));
        }
        out
    }

    fn chunk_values(&self, env: &Env, arrs: &[Name], at: usize, len: usize) -> IResult<Vec<Value>> {
        arrs.iter()
            .map(|a| {
                let arr = self.array(env, a)?;
                let row = arr.row_elems();
                let mut shape = arr.shape.clone();
                shape[0] = len;
                let mut buf = Buffer::zeros(arr.elem_type(), len * row);
                buf.copy_from(0, &arr.data, at * row, len * row);
                Ok(Value::Array(ArrayVal::new(shape, buf)))
            })
            .collect()
    }

    fn eval_soac(&mut self, env: &Env, soac: &Soac) -> IResult<(Vec<Value>, u64)> {
        match soac {
            Soac::Map { width, lam, arrs } => {
                let n = self.width_of(env, width, arrs)?;
                if n == 0 {
                    return self.empty_map_results(lam);
                }
                let mut per_iter = Vec::with_capacity(n);
                let mut span = 0u64;
                for i in 0..n as i64 {
                    let args = self.rows_at(env, arrs, i)?;
                    let (vals, s) = self.apply_lambda(env, lam, &args)?;
                    span = span.max(s);
                    per_iter.push(vals);
                }
                let out = self.assemble(n, per_iter, lam.ret.len())?;
                Ok((out, span + 1))
            }
            Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                ..
            } => {
                let n = self.width_of(env, width, arrs)?;
                let mut acc: Vec<Value> = neutral
                    .iter()
                    .map(|e| self.eval_subexp(env, e))
                    .collect::<IResult<_>>()?;
                let mut op_span = 0u64;
                for i in 0..n as i64 {
                    let mut args = acc;
                    args.extend(self.rows_at(env, arrs, i)?);
                    let (vals, s) = self.apply_lambda(env, lam, &args)?;
                    op_span = op_span.max(s);
                    acc = vals;
                }
                // Parallel depth: log2(n) rounds of the operator.
                let span = op_span * (64 - (n.max(1) as u64).leading_zeros() as u64) + 1;
                Ok((acc, span))
            }
            Soac::Scan {
                width,
                lam,
                neutral,
                arrs,
            } => {
                let n = self.width_of(env, width, arrs)?;
                let mut acc: Vec<Value> = neutral
                    .iter()
                    .map(|e| self.eval_subexp(env, e))
                    .collect::<IResult<_>>()?;
                let mut per_iter = Vec::with_capacity(n);
                let mut op_span = 0u64;
                for i in 0..n as i64 {
                    let mut args = acc;
                    args.extend(self.rows_at(env, arrs, i)?);
                    let (vals, s) = self.apply_lambda(env, lam, &args)?;
                    op_span = op_span.max(s);
                    per_iter.push(vals.clone());
                    acc = vals;
                }
                let out = if n == 0 {
                    self.empty_scan_results(env, neutral)?
                } else {
                    self.assemble(n, per_iter, lam.ret.len())?
                };
                let span = op_span * (64 - (n.max(1) as u64).leading_zeros() as u64) + 1;
                Ok((out, span))
            }
            Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                ..
            } => {
                let n = self.width_of(env, width, arrs)?;
                let k = neutral.len();
                let mut acc: Vec<Value> = neutral
                    .iter()
                    .map(|e| self.eval_subexp(env, e))
                    .collect::<IResult<_>>()?;
                let mut extras: Vec<Vec<Value>> = Vec::with_capacity(n);
                let mut span = 0u64;
                for i in 0..n as i64 {
                    let args = self.rows_at(env, arrs, i)?;
                    let (mapped, s1) = self.apply_lambda(env, map_lam, &args)?;
                    let (red_part, extra) = mapped.split_at(k);
                    let mut rargs = acc;
                    rargs.extend(red_part.iter().cloned());
                    let (vals, s2) = self.apply_lambda(env, red_lam, &rargs)?;
                    span = span.max(s1 + s2);
                    acc = vals;
                    if !extra.is_empty() {
                        extras.push(extra.to_vec());
                    }
                }
                let mut out = acc;
                if map_lam.ret.len() > k {
                    if n == 0 {
                        return Err(InterpError::SizeMismatch(
                            "redomap with mapped-out results over empty input".into(),
                        ));
                    }
                    out.extend(self.assemble(n, extras, map_lam.ret.len() - k)?);
                }
                Ok((out, span + 1))
            }
            Soac::StreamMap { width, lam, arrs } => {
                let n = self.width_of(env, width, arrs)?;
                let mut parts: Vec<Vec<Value>> = Vec::new();
                let mut span = 0u64;
                for (at, len) in self.chunk_bounds(n) {
                    let mut args = vec![Value::i64(len as i64)];
                    args.extend(self.chunk_values(env, arrs, at, len)?);
                    let (vals, s) = self.apply_lambda(env, lam, &args)?;
                    span = span.max(s);
                    parts.push(vals);
                }
                let out = concat_chunk_results(&parts, lam.ret.len())?;
                Ok((out, span + 1))
            }
            Soac::StreamRed {
                width,
                red_lam,
                fold_lam,
                accs,
                arrs,
            } => {
                let n = self.width_of(env, width, arrs)?;
                let init: Vec<Value> = accs
                    .iter()
                    .map(|e| self.eval_subexp(env, e))
                    .collect::<IResult<_>>()?;
                let k = init.len();
                let mut combined = init.clone();
                let mut parts: Vec<Vec<Value>> = Vec::new();
                let mut span = 0u64;
                for (at, len) in self.chunk_bounds(n) {
                    let mut args = vec![Value::i64(len as i64)];
                    args.extend(init.iter().cloned());
                    args.extend(self.chunk_values(env, arrs, at, len)?);
                    let (vals, s) = self.apply_lambda(env, fold_lam, &args)?;
                    span = span.max(s);
                    let (accs_out, arrs_out) = vals.split_at(k);
                    let mut rargs = combined;
                    rargs.extend(accs_out.iter().cloned());
                    let (rvals, s2) = self.apply_lambda(env, red_lam, &rargs)?;
                    span = span.max(s2);
                    combined = rvals;
                    parts.push(arrs_out.to_vec());
                }
                let mut out = combined;
                if fold_lam.ret.len() > k {
                    out.extend(concat_chunk_results(&parts, fold_lam.ret.len() - k)?);
                }
                Ok((out, span + 1))
            }
            Soac::StreamSeq {
                width,
                lam,
                accs,
                arrs,
            } => {
                let n = self.width_of(env, width, arrs)?;
                let mut acc: Vec<Value> = accs
                    .iter()
                    .map(|e| self.eval_subexp(env, e))
                    .collect::<IResult<_>>()?;
                let k = acc.len();
                let mut parts: Vec<Vec<Value>> = Vec::new();
                let mut span = 0u64;
                for (at, len) in self.chunk_bounds(n) {
                    let mut args = vec![Value::i64(len as i64)];
                    args.extend(acc.iter().cloned());
                    args.extend(self.chunk_values(env, arrs, at, len)?);
                    let (vals, s) = self.apply_lambda(env, lam, &args)?;
                    span += s;
                    let (accs_out, arrs_out) = vals.split_at(k);
                    acc = accs_out.to_vec();
                    parts.push(arrs_out.to_vec());
                }
                let mut out = acc;
                if lam.ret.len() > k {
                    out.extend(concat_chunk_results(&parts, lam.ret.len() - k)?);
                }
                Ok((out, span + 1))
            }
            Soac::Scatter {
                width,
                dest,
                indices,
                values,
            } => {
                let n = self.index_of(env, width)? as usize;
                let mut d = self.array(env, dest)?;
                let is = self.array(env, indices)?;
                let vs = self.array(env, values)?;
                self.work += n as u64;
                for i in 0..n as i64 {
                    let ix = is
                        .index_scalar(&[i])
                        .and_then(|s| s.as_i64())
                        .ok_or_else(|| InterpError::OutOfBounds {
                            what: format!("scatter index {i}"),
                        })?;
                    if ix < 0 || ix as usize >= d.shape[0] {
                        continue; // out-of-bounds scatter writes are ignored
                    }
                    if vs.rank() == 1 {
                        let v = vs
                            .index_scalar(&[i])
                            .ok_or_else(|| InterpError::OutOfBounds {
                                what: format!("scatter value {i}"),
                            })?;
                        d.update_scalar(&[ix], v);
                    } else {
                        let v = vs
                            .index_slice(&[i])
                            .ok_or_else(|| InterpError::OutOfBounds {
                                what: format!("scatter value {i}"),
                            })?;
                        d.update_slice(&[ix], &v);
                    }
                }
                Ok((vec![Value::Array(d)], 1))
            }
        }
    }

    /// Result arrays of a zero-width map: empty arrays of the lambda's
    /// return element types.
    fn empty_map_results(&mut self, lam: &Lambda) -> IResult<(Vec<Value>, u64)> {
        let mut out = Vec::new();
        for t in &lam.ret {
            let elem = t.elem();
            out.push(Value::Array(ArrayVal::new(vec![0], Buffer::zeros(elem, 0))));
        }
        Ok((out, 1))
    }

    fn empty_scan_results(&mut self, env: &Env, neutral: &[SubExp]) -> IResult<Vec<Value>> {
        let mut out = Vec::new();
        for e in neutral {
            let v = self.eval_subexp(env, e)?;
            let t = match v {
                Value::Scalar(s) => s.scalar_type(),
                Value::Array(a) => a.elem_type(),
            };
            out.push(Value::Array(ArrayVal::new(vec![0], Buffer::zeros(t, 0))));
        }
        Ok(out)
    }
}

/// Concatenates each column of per-chunk array results.
fn concat_chunk_results(parts: &[Vec<Value>], k: usize) -> IResult<Vec<Value>> {
    let mut out = Vec::with_capacity(k);
    for j in 0..k {
        let arrs: Vec<&ArrayVal> = parts
            .iter()
            .map(|p| p[j].as_array().ok_or(InterpError::Irregular))
            .collect::<IResult<_>>()?;
        out.push(Value::Array(ArrayVal::concat(&arrs)));
    }
    Ok(out)
}

fn bind_params(env: &mut Env, f: &FunDef, args: &[Value]) -> IResult<()> {
    // Bind value parameters first.
    for (p, a) in f.params.iter().zip(args) {
        env.insert(p.name.clone(), a.clone());
    }
    // Dynamic size postconditions: check declared shapes against actual
    // shapes, binding size variables that are not value parameters.
    for (p, a) in f.params.iter().zip(args) {
        if let (Type::Array(at), Value::Array(arr)) = (&p.ty, a) {
            if at.rank() != arr.rank() {
                return Err(InterpError::SizeMismatch(format!(
                    "parameter {} has rank {} but argument has rank {}",
                    p.name,
                    at.rank(),
                    arr.rank()
                )));
            }
            for (d, &actual) in at.dims.iter().zip(&arr.shape) {
                match d {
                    futhark_core::Size::Const(k) => {
                        if *k != actual as i64 {
                            return Err(InterpError::SizeMismatch(format!(
                                "parameter {} dimension {k} != {actual}",
                                p.name
                            )));
                        }
                    }
                    futhark_core::Size::Var(v) => match env.get(v) {
                        Some(Value::Scalar(s)) => {
                            if s.as_i64() != Some(actual as i64) {
                                return Err(InterpError::SizeMismatch(format!(
                                    "size {v} = {s} but dimension is {actual}",
                                )));
                            }
                        }
                        _ => {
                            env.insert(v.clone(), Value::i64(actual as i64));
                        }
                    },
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests;

//! Interpreter tests, including the paper's Figure 4 K-means variants.

use crate::{InterpError, Interpreter};
use futhark_core::{ArrayVal, Value};
use futhark_frontend::parse_program;

fn run(src: &str, args: &[Value]) -> Vec<Value> {
    let (prog, _) = parse_program(src).unwrap();
    Interpreter::new(&prog).run_main(args).unwrap()
}

#[test]
fn map_increment() {
    let out = run(
        "fun main (n: i64) (xs: [n]f32): [n]f32 =\n  let ys = map (\\x -> x + 1.0f32) xs\n  in ys",
        &[
            Value::i64(3),
            Value::Array(ArrayVal::from_f32s(vec![1.0, 2.0, 3.0])),
        ],
    );
    assert_eq!(
        out,
        vec![Value::Array(ArrayVal::from_f32s(vec![2.0, 3.0, 4.0]))]
    );
}

#[test]
fn reduce_sum_and_scan() {
    let out = run(
        "fun main (n: i64) (xs: [n]i64): (i64, [n]i64) =\n\
         let s = reduce (+) 0 xs\n\
         let ps = scan (+) 0 xs\n\
         in (s, ps)",
        &[
            Value::i64(4),
            Value::Array(ArrayVal::from_i64s(vec![1, 2, 3, 4])),
        ],
    );
    assert_eq!(out[0], Value::i64(10));
    assert_eq!(out[1], Value::Array(ArrayVal::from_i64s(vec![1, 3, 6, 10])));
}

#[test]
fn nested_map_reduce_row_sums() {
    // The Section 2.2 example: add one to each element and sum each row.
    let src = "fun main (n: i64) (m: i64) (matrix: [n][m]f32): ([n][m]f32, [n]f32) =\n\
               let (rows, sums) = map (\\(row: [m]f32) ->\n\
                 let r2 = map (\\x -> x + 1.0f32) row\n\
                 let s = reduce (+) 0.0f32 row\n\
                 in (r2, s)) matrix\n\
               in (rows, sums)";
    let m = ArrayVal::new(
        vec![2, 3],
        futhark_core::Buffer::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
    );
    let out = run(src, &[Value::i64(2), Value::i64(3), Value::Array(m)]);
    let rows = out[0].as_array().unwrap();
    assert_eq!(rows.shape, vec![2, 3]);
    assert_eq!(
        rows.data,
        futhark_core::Buffer::F32(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
    );
    assert_eq!(out[1], Value::Array(ArrayVal::from_f32s(vec![6.0, 15.0])));
}

/// The three K-means counts formulations of Figure 4 must agree.
#[test]
fn kmeans_counts_figure4_variants_agree() {
    let fig4a = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
                 let zeros = replicate k 0\n\
                 let counts = loop (c = zeros) for i < n do (\n\
                   let cluster = membership[i]\n\
                   let old = c[cluster]\n\
                   in c with [cluster] <- old + 1)\n\
                 in counts";
    let fig4b = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
                 let increments = map (\\(cluster: i64) ->\n\
                   let incr = replicate k 0\n\
                   let incr[cluster] = 1\n\
                   in incr) membership\n\
                 let zeros = replicate k 0\n\
                 let counts = reduce (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
                   zeros increments\n\
                 in counts";
    let fig4c = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
                 let zeros = replicate k 0\n\
                 let counts = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
                   (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->\n\
                     loop (a = acc) for i < chunk do (\n\
                       let cluster = cs[i]\n\
                       let old = a[cluster]\n\
                       in a with [cluster] <- old + 1))\n\
                   zeros membership\n\
                 in counts";
    let membership = vec![0i64, 2, 1, 2, 2, 0, 1, 1, 1, 0, 2, 2];
    let args = vec![
        Value::i64(membership.len() as i64),
        Value::i64(3),
        Value::Array(ArrayVal::from_i64s(membership)),
    ];
    let a = run(fig4a, &args);
    let b = run(fig4b, &args);
    let c = run(fig4c, &args);
    assert_eq!(a, b);
    assert_eq!(a, c);
    assert_eq!(a[0], Value::Array(ArrayVal::from_i64s(vec![3, 4, 5])));
}

/// Figure 4a does O(n) work; Figure 4b does O(n·k): check the ratio grows
/// with k.
#[test]
fn kmeans_work_ratio_matches_paper() {
    let fig4a = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
                 let zeros = replicate k 0\n\
                 let counts = loop (c = zeros) for i < n do (\n\
                   let cluster = membership[i]\n\
                   let old = c[cluster]\n\
                   in c with [cluster] <- old + 1)\n\
                 in counts";
    let fig4b = "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
                 let increments = map (\\(cluster: i64) ->\n\
                   let incr = replicate k 0\n\
                   let incr[cluster] = 1\n\
                   in incr) membership\n\
                 let zeros = replicate k 0\n\
                 let counts = reduce (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
                   zeros increments\n\
                 in counts";
    let n = 256i64;
    let k = 32i64;
    let membership: Vec<i64> = (0..n).map(|i| i % k).collect();
    let args = vec![
        Value::i64(n),
        Value::i64(k),
        Value::Array(ArrayVal::from_i64s(membership)),
    ];
    let (pa, _) = parse_program(fig4a).unwrap();
    let (pb, _) = parse_program(fig4b).unwrap();
    let mut ia = Interpreter::new(&pa);
    ia.run_main(&args).unwrap();
    let mut ib = Interpreter::new(&pb);
    ib.run_main(&args).unwrap();
    // 4b must do at least k/4 times more work than 4a at this size.
    assert!(
        ib.work() > ia.work() * (k as u64 / 4),
        "work 4a = {}, work 4b = {}",
        ia.work(),
        ib.work()
    );
}

/// Streaming SOACs must be invariant to the chosen partitioning.
#[test]
fn stream_chunking_is_semantics_invariant() {
    let src = "fun main (n: i64) (xs: [n]i64): (i64, [n]i64) =\n\
               let (s, ys) = stream_seq (\\(chunk: i64) (acc: i64) (cs: [chunk]i64) ->\n\
                 let partial = reduce (+) 0 cs\n\
                 let doubled = map (\\x -> x * 2) cs\n\
                 in (acc + partial, doubled))\n\
                 0 xs\n\
               in (s, ys)";
    let xs: Vec<i64> = (1..=17).collect();
    let args = vec![Value::i64(17), Value::Array(ArrayVal::from_i64s(xs))];
    let (prog, _) = parse_program(src).unwrap();
    let mut reference = None;
    for chunk in [0usize, 1, 2, 3, 5, 17, 100] {
        let mut interp = Interpreter::new(&prog);
        interp.set_chunk_size(chunk);
        let out = interp.run_main(&args).unwrap();
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "chunk size {chunk} changed the result"),
        }
    }
    let r = reference.unwrap();
    assert_eq!(r[0], Value::i64((1..=17).sum::<i64>()));
}

#[test]
fn stream_map_chunking_invariant() {
    let src = "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
               let ys = stream_map (\\(chunk: i64) (cs: [chunk]i64) ->\n\
                 map (\\x -> x + 100) cs) xs\n\
               in ys";
    let (prog, _) = parse_program(src).unwrap();
    let args = vec![
        Value::i64(7),
        Value::Array(ArrayVal::from_i64s((0..7).collect())),
    ];
    for chunk in [0usize, 1, 3, 7] {
        let mut interp = Interpreter::new(&prog);
        interp.set_chunk_size(chunk);
        let out = interp.run_main(&args).unwrap();
        assert_eq!(
            out[0],
            Value::Array(ArrayVal::from_i64s((100..107).collect()))
        );
    }
}

#[test]
fn while_loop_and_convert() {
    let out = run(
        "fun main (x: i64): f32 =\n\
         let r = loop (v = x) while v < 100 do v * 2\n\
         let f = f32 r\n\
         in f",
        &[Value::i64(3)],
    );
    assert_eq!(out, vec![Value::f32(192.0)]);
}

#[test]
fn scatter_ignores_out_of_bounds() {
    let out = run(
        "fun main (k: i64) (n: i64) (dest: *[k]i64) (is: [n]i64) (vs: [n]i64): [k]i64 =\n\
         let r = scatter dest is vs\n\
         in r",
        &[
            Value::i64(4),
            Value::i64(3),
            Value::Array(ArrayVal::from_i64s(vec![0, 0, 0, 0])),
            Value::Array(ArrayVal::from_i64s(vec![1, 9, 3])),
            Value::Array(ArrayVal::from_i64s(vec![10, 20, 30])),
        ],
    );
    assert_eq!(
        out,
        vec![Value::Array(ArrayVal::from_i64s(vec![0, 10, 0, 30]))]
    );
}

#[test]
fn out_of_bounds_index_is_an_error() {
    let (prog, _) =
        parse_program("fun main (n: i64) (xs: [n]i64): i64 =\n  let v = xs[n]\n  in v").unwrap();
    let e = Interpreter::new(&prog)
        .run_main(&[Value::i64(2), Value::Array(ArrayVal::from_i64s(vec![1, 2]))])
        .unwrap_err();
    assert!(matches!(e, InterpError::OutOfBounds { .. }));
}

#[test]
fn transpose_and_rearrange() {
    let out = run(
        "fun main (n: i64) (m: i64) (a: [n][m]i64): [m][n]i64 =\n\
         let t = transpose a\n  in t",
        &[
            Value::i64(2),
            Value::i64(3),
            Value::Array(ArrayVal::new(
                vec![2, 3],
                futhark_core::Buffer::I64((0..6).collect()),
            )),
        ],
    );
    let t = out[0].as_array().unwrap();
    assert_eq!(t.shape, vec![3, 2]);
    assert_eq!(t.data, futhark_core::Buffer::I64(vec![0, 3, 1, 4, 2, 5]));
}

#[test]
fn function_calls_compose() {
    let out = run(
        "fun square (x: i64): i64 = let y = x * x in y\n\
         fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
         let ys = map (\\v -> square(v)) xs\n\
         in ys",
        &[
            Value::i64(3),
            Value::Array(ArrayVal::from_i64s(vec![1, 2, 3])),
        ],
    );
    assert_eq!(out, vec![Value::Array(ArrayVal::from_i64s(vec![1, 4, 9]))]);
}

#[test]
fn redomap_semantics() {
    // redomap (+) (\x -> x*x) 0 xs == sum of squares
    let src = "fun main (n: i64) (xs: [n]i64): i64 =\n\
               let s = redomap (+) (\\x -> x * x) 0 xs\n\
               in s";
    let out = run(
        src,
        &[
            Value::i64(4),
            Value::Array(ArrayVal::from_i64s(vec![1, 2, 3, 4])),
        ],
    );
    assert_eq!(out, vec![Value::i64(30)]);
}

#[test]
fn iota_replicate_concat() {
    let out = run(
        "fun main (n: i64): [n]i64 =\n\
         let a = iota n\n  in a",
        &[Value::i64(4)],
    );
    assert_eq!(
        out,
        vec![Value::Array(ArrayVal::from_i64s(vec![0, 1, 2, 3]))]
    );

    let out = run(
        "fun main (n: i64) (m: i64): i64 =\n\
         let a = iota n\n\
         let b = iota m\n\
         let c = concat a b\n\
         let s = reduce (+) 0 c\n\
         in s",
        &[Value::i64(3), Value::i64(2)],
    );
    assert_eq!(out, vec![Value::i64(4)]); // 0+1+2 + 0+1
}

#[test]
fn empty_map_produces_empty_arrays() {
    let out = run(
        "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
         let ys = map (\\x -> x + 1) xs\n  in ys",
        &[Value::i64(0), Value::Array(ArrayVal::from_i64s(vec![]))],
    );
    let a = out[0].as_array().unwrap();
    assert_eq!(a.shape, vec![0]);
}

#[test]
fn size_postcondition_checked() {
    let (prog, _) =
        parse_program("fun main (n: i64) (xs: [n]i64): i64 =\n  let s = reduce (+) 0 xs\n  in s")
            .unwrap();
    // Passing n=5 with a 3-element array must fail the dynamic size check.
    let e = Interpreter::new(&prog)
        .run_main(&[
            Value::i64(5),
            Value::Array(ArrayVal::from_i64s(vec![1, 2, 3])),
        ])
        .unwrap_err();
    assert!(matches!(e, InterpError::SizeMismatch(_)), "{e}");
}

#[test]
fn division_by_zero_reported() {
    let (prog, _) = parse_program("fun main (x: i64): i64 = let y = x / 0 in y").unwrap();
    let e = Interpreter::new(&prog)
        .run_main(&[Value::i64(1)])
        .unwrap_err();
    assert_eq!(e, InterpError::DivisionByZero);
}

// --- scatter/filter edge-case semantics -------------------------------
//
// These tests document the semantics the differential fuzzer relies on
// (`futhark-fuzz` deliberately generates wild scatter indices and empty
// filter results): scatter *ignores* every out-of-bounds index — negative
// or >= the destination length — rather than faulting; duplicate indices
// resolve deterministically to the textually last write; and filter
// preserves input order, producing an empty (but well-typed) array when
// nothing matches. The compiled simulator must implement the same rules,
// which the corpus fixtures in `tests/corpus/` pin end to end.

#[test]
fn scatter_on_empty_input_is_identity() {
    let out = run(
        "fun main (k: i64) (n: i64) (dest: *[k]i64) (is: [n]i64) (vs: [n]i64): [k]i64 =\n\
         let r = scatter dest is vs\n\
         in r",
        &[
            Value::i64(3),
            Value::i64(0),
            Value::Array(ArrayVal::from_i64s(vec![7, 8, 9])),
            Value::Array(ArrayVal::from_i64s(vec![])),
            Value::Array(ArrayVal::from_i64s(vec![])),
        ],
    );
    assert_eq!(out, vec![Value::Array(ArrayVal::from_i64s(vec![7, 8, 9]))]);
}

#[test]
fn scatter_ignores_negative_and_huge_indices() {
    let out = run(
        "fun main (k: i64) (n: i64) (dest: *[k]i64) (is: [n]i64) (vs: [n]i64): [k]i64 =\n\
         let r = scatter dest is vs\n\
         in r",
        &[
            Value::i64(4),
            Value::i64(4),
            Value::Array(ArrayVal::from_i64s(vec![0, 0, 0, 0])),
            Value::Array(ArrayVal::from_i64s(vec![-1, i64::MIN, i64::MAX, 2])),
            Value::Array(ArrayVal::from_i64s(vec![10, 20, 30, 40])),
        ],
    );
    assert_eq!(
        out,
        vec![Value::Array(ArrayVal::from_i64s(vec![0, 0, 40, 0]))]
    );
}

#[test]
fn scatter_duplicate_indices_last_write_wins() {
    let out = run(
        "fun main (k: i64) (n: i64) (dest: *[k]i64) (is: [n]i64) (vs: [n]i64): [k]i64 =\n\
         let r = scatter dest is vs\n\
         in r",
        &[
            Value::i64(3),
            Value::i64(4),
            Value::Array(ArrayVal::from_i64s(vec![0, 0, 0])),
            Value::Array(ArrayVal::from_i64s(vec![1, 1, 1, 0])),
            Value::Array(ArrayVal::from_i64s(vec![10, 20, 30, 40])),
        ],
    );
    assert_eq!(
        out,
        vec![Value::Array(ArrayVal::from_i64s(vec![40, 30, 0]))]
    );
}

#[test]
fn filter_of_empty_input_is_empty() {
    let out = run(
        "fun main (n: i64) (xs: [n]i64): i64 =\n\
         let ys = filter (\\x -> x > 0) xs\n\
         let c = reduce (+) 0 (map (\\x -> 1) ys)\n\
         in c",
        &[Value::i64(0), Value::Array(ArrayVal::from_i64s(vec![]))],
    );
    assert_eq!(out, vec![Value::i64(0)]);
}

#[test]
fn filter_keeping_nothing_is_empty_but_well_typed() {
    let out = run(
        "fun main (n: i64) (xs: [n]i64): (i64, i64) =\n\
         let ys = filter (\\x -> x < 0) xs\n\
         let s = reduce (+) 0 ys\n\
         let c = reduce (+) 0 (map (\\x -> 1) ys)\n\
         in (s, c)",
        &[
            Value::i64(3),
            Value::Array(ArrayVal::from_i64s(vec![1, 2, 3])),
        ],
    );
    assert_eq!(out, vec![Value::i64(0), Value::i64(0)]);
}

#[test]
fn filter_preserves_order_and_duplicates() {
    let out = run(
        "fun main (n: i64) (xs: [n]i64): i64 =\n\
         let ys = filter (\\x -> x % 2 == 0) xs\n\
         let w = scan (\\a b -> a * 10 + b) 0 ys\n\
         let r = reduce max 0 w\n\
         in r",
        &[
            Value::i64(6),
            Value::Array(ArrayVal::from_i64s(vec![4, 1, 2, 2, 3, 8])),
        ],
    );
    // Kept in order: [4, 2, 2, 8] -> digits 4228.
    assert_eq!(out, vec![Value::i64(4228)]);
}

//! Table-driven negative tests for the uniqueness checker (the paper's
//! Section 3 type system). Each entry is a program that must be
//! *rejected*, paired with a substring the diagnostic must contain — so
//! these tests pin both the judgment and the wording a user sees.
//! Positive controls at the end keep the table honest: the same shapes
//! with the offending use removed must pass.

use futhark_check::check_program;
use futhark_frontend::parse_program;

struct Rejects {
    /// What the case demonstrates.
    name: &'static str,
    /// The offending program.
    src: &'static str,
    /// A substring the `Display` diagnostic must contain. The frontend
    /// uniquifies names (`a` becomes `a_1`), so witness variables are
    /// matched by their base-name prefix.
    diagnostic: &'static str,
}

const REJECTED: &[Rejects] = &[
    Rejects {
        name: "use after consume (direct observation)",
        src: "fun main (n: i64) (a: *[n]i64): i64 =\n\
              let b = a with [0] <- 1\n\
              let v = a[0]\n\
              in v",
        diagnostic: "`a_1` is used after being consumed",
    },
    Rejects {
        name: "use after consume (observed through an alias)",
        // `t` aliases `a`, so consuming `a` poisons `t` too.
        src: "fun main (n: i64) (m: i64) (a: *[n][m]i64): [m][n]i64 =\n\
              let t = transpose a\n\
              let z = replicate m 0\n\
              let b = a with [0] <- z\n\
              in t",
        diagnostic: "used after being consumed",
    },
    Rejects {
        name: "aliased consumption (consuming through the alias)",
        // Consuming the alias `t` consumes `a`; `a` may not be read after.
        src: "fun main (n: i64) (a: *[n]i64): i64 =\n\
              let t = a\n\
              let b = t with [0] <- 1\n\
              let v = a[0]\n\
              in v",
        diagnostic: "used after being consumed",
    },
    Rejects {
        name: "consuming a non-unique parameter",
        src: "fun main (n: i64) (a: [n]i64): [n]i64 =\n\
              let b = a with [0] <- 1\n\
              in b",
        diagnostic: "not declared unique",
    },
    Rejects {
        name: "consuming a non-unique parameter through an alias",
        src: "fun main (n: i64) (a: [n]i64): [n]i64 =\n\
              let t = a\n\
              let b = t with [0] <- 1\n\
              in b",
        diagnostic: "not declared unique",
    },
    Rejects {
        name: "consuming a free variable inside a loop body",
        // The loop body consumes `c`, which is bound outside the loop and
        // is not a merge parameter (Figure 7's `cs` example, loop form).
        src: "fun main (n: i64) (a: *[n]i64) (c: *[n]i64): [n]i64 =\n\
              let r = loop (x = a) for i < n do (\n\
                let y = c with [0] <- i\n\
                let yi = y[0]\n\
                in x with [i] <- yi)\n\
              in r",
        diagnostic: "consume",
    },
];

#[test]
fn negative_table_is_rejected_with_expected_diagnostics() {
    for case in REJECTED {
        let (prog, _) = parse_program(case.src)
            .unwrap_or_else(|e| panic!("{}: does not parse: {e}", case.name));
        let err =
            check_program(&prog).expect_err(&format!("{}: should have been rejected", case.name));
        let rendered = err.to_string();
        assert!(
            rendered.contains(case.diagnostic),
            "{}: diagnostic {rendered:?} does not mention {:?}",
            case.name,
            case.diagnostic
        );
    }
}

/// Positive controls: the same shapes, with the offending use removed,
/// pass. If one of these starts failing, the negative table above is
/// probably rejecting for the wrong reason.
#[test]
fn positive_controls_still_check() {
    let accepted: &[(&str, &str)] = &[
        (
            "consume then never observe",
            "fun main (n: i64) (a: *[n]i64): [n]i64 =\n\
             let b = a with [0] <- 1\n\
             in b",
        ),
        (
            "observe fully, then consume",
            "fun main (n: i64) (a: *[n]i64): i64 =\n\
             let v = a[0]\n\
             let b = a with [0] <- v + 1\n\
             let w = b[0]\n\
             in w",
        ),
        (
            "copy makes a non-unique parameter consumable",
            "fun main (n: i64) (a: [n]i64): [n]i64 =\n\
             let t = copy a\n\
             let b = t with [0] <- 1\n\
             in b",
        ),
        (
            "loop consumes only its merge parameter",
            "fun main (n: i64) (a: *[n]i64): [n]i64 =\n\
             let r = loop (x = a) for i < n do (\n\
               x with [i] <- i)\n\
             in r",
        ),
    ];
    for (name, src) in accepted {
        let (prog, _) =
            parse_program(src).unwrap_or_else(|e| panic!("{name}: does not parse: {e}"));
        check_program(&prog).unwrap_or_else(|e| panic!("{name}: wrongly rejected: {e}"));
    }
}

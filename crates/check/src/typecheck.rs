//! Type checking of core IR programs.
//!
//! Shapes are checked *symbolically and loosely*: two sizes are compatible
//! unless both are constants that differ. Where static verification of
//! sizes fails, the paper inserts dynamic checks (Section 2.2); in this
//! implementation the interpreter and the GPU runtime perform those dynamic
//! checks.

use futhark_core::{
    BinOp, Body, Exp, FunDef, Lambda, LoopForm, Name, Program, ScalarType, Size, Soac, SubExp, Type,
};
use std::collections::HashMap;
use std::fmt;

/// A type error, with a path of context frames for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

type TResult<T> = Result<T, TypeError>;

fn terr<T>(msg: impl Into<String>) -> TResult<T> {
    Err(TypeError {
        message: msg.into(),
    })
}

/// Whether two types agree, allowing symbolic sizes to match anything but a
/// contradicting constant.
pub fn compatible(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Scalar(x), Type::Scalar(y)) => x == y,
        (Type::Array(x), Type::Array(y)) => {
            x.elem == y.elem
                && x.rank() == y.rank()
                && x.dims.iter().zip(&y.dims).all(|(d, e)| match (d, e) {
                    (Size::Const(k), Size::Const(l)) => k == l,
                    _ => true,
                })
        }
        _ => false,
    }
}

#[derive(Clone, Default)]
struct TEnv {
    vars: HashMap<Name, Type>,
}

impl TEnv {
    fn bind(&mut self, n: &Name, t: &Type) {
        self.vars.insert(n.clone(), t.clone());
    }

    fn lookup(&self, n: &Name) -> TResult<&Type> {
        self.vars.get(n).ok_or_else(|| TypeError {
            message: format!("variable `{n}` not in scope"),
        })
    }
}

struct Checker<'a> {
    prog: &'a Program,
}

/// Type-checks a whole program.
///
/// # Errors
///
/// Returns the first [`TypeError`].
pub fn typecheck_program(prog: &Program) -> TResult<()> {
    let checker = Checker { prog };
    for f in &prog.functions {
        checker.check_fun(f).map_err(|e| TypeError {
            message: format!("in function `{}`: {}", f.name, e.message),
        })?;
    }
    Ok(())
}

impl<'a> Checker<'a> {
    fn check_fun(&self, f: &FunDef) -> TResult<()> {
        let mut env = TEnv::default();
        for p in &f.params {
            env.bind(&p.name, &p.ty);
        }
        let tys = self.check_body(&env, &f.body)?;
        if tys.len() != f.ret.len() {
            return terr(format!(
                "function returns {} values but declares {}",
                tys.len(),
                f.ret.len()
            ));
        }
        for (t, d) in tys.iter().zip(&f.ret) {
            if !compatible(t, &d.ty) {
                return terr(format!(
                    "function result type `{t}` does not match declared `{}`",
                    d.ty
                ));
            }
        }
        Ok(())
    }

    fn check_body(&self, env: &TEnv, body: &Body) -> TResult<Vec<Type>> {
        let mut env = env.clone();
        for stm in &body.stms {
            if stm.pat.is_empty() {
                return terr("statement with empty pattern");
            }
            let tys = self.check_exp(&env, &stm.exp)?;
            if tys.len() != stm.pat.len() {
                return terr(format!(
                    "pattern of {} names bound to expression producing {} values: {}",
                    stm.pat.len(),
                    tys.len(),
                    stm.exp
                ));
            }
            for (pe, t) in stm.pat.iter().zip(&tys) {
                if !compatible(&pe.ty, t) {
                    return terr(format!(
                        "binding `{}` annotated `{}` but expression has type `{t}`",
                        pe.name, pe.ty
                    ));
                }
                env.bind(&pe.name, &pe.ty);
            }
        }
        body.result
            .iter()
            .map(|se| self.subexp_type(&env, se))
            .collect()
    }

    fn subexp_type(&self, env: &TEnv, se: &SubExp) -> TResult<Type> {
        match se {
            SubExp::Const(k) => Ok(Type::Scalar(k.scalar_type())),
            SubExp::Var(v) => env.lookup(v).cloned(),
        }
    }

    fn scalar_type_of(&self, env: &TEnv, se: &SubExp, what: &str) -> TResult<ScalarType> {
        match self.subexp_type(env, se)? {
            Type::Scalar(s) => Ok(s),
            t => terr(format!("{what} must be a scalar, found `{t}`")),
        }
    }

    fn index_type_of(&self, env: &TEnv, se: &SubExp, what: &str) -> TResult<()> {
        let t = self.scalar_type_of(env, se, what)?;
        if t != ScalarType::I64 {
            return terr(format!("{what} must be i64, found `{t}`"));
        }
        Ok(())
    }

    fn array_type_of(&self, env: &TEnv, v: &Name) -> TResult<futhark_core::ArrayType> {
        match env.lookup(v)? {
            Type::Array(a) => Ok(a.clone()),
            t => terr(format!("`{v}` must be an array, found `{t}`")),
        }
    }

    fn check_lambda(&self, env: &TEnv, lam: &Lambda, args: &[Type]) -> TResult<()> {
        if lam.params.len() != args.len() {
            return terr(format!(
                "lambda takes {} parameters but is applied to {} values",
                lam.params.len(),
                args.len()
            ));
        }
        let mut env = env.clone();
        for (p, a) in lam.params.iter().zip(args) {
            if !compatible(&p.ty, a) {
                return terr(format!(
                    "lambda parameter `{}` has type `{}` but receives `{a}`",
                    p.name, p.ty
                ));
            }
            env.bind(&p.name, &p.ty);
        }
        let tys = self.check_body(&env, &lam.body)?;
        if tys.len() != lam.ret.len() {
            return terr(format!(
                "lambda declares {} results but body produces {}",
                lam.ret.len(),
                tys.len()
            ));
        }
        for (t, r) in tys.iter().zip(&lam.ret) {
            if !compatible(t, r) {
                return terr(format!(
                    "lambda result type `{t}` does not match declared `{r}`"
                ));
            }
        }
        Ok(())
    }

    /// Checks that a lambda is a plausible associative operator over `tys`:
    /// it takes `2 × tys.len()` parameters and returns `tys`.
    fn check_operator(&self, env: &TEnv, lam: &Lambda, tys: &[Type]) -> TResult<()> {
        let mut args = tys.to_vec();
        args.extend(tys.iter().cloned());
        self.check_lambda(env, lam, &args)?;
        for (r, t) in lam.ret.iter().zip(tys) {
            if !compatible(r, t) {
                return terr(format!(
                    "reduction operator returns `{r}` but neutral element has type `{t}`"
                ));
            }
        }
        Ok(())
    }

    fn check_exp(&self, env: &TEnv, exp: &Exp) -> TResult<Vec<Type>> {
        match exp {
            Exp::SubExp(se) => Ok(vec![self.subexp_type(env, se)?]),
            Exp::UnOp(op, a) => {
                use futhark_core::UnOp::*;
                let t = self.scalar_type_of(env, a, "unary operand")?;
                match op {
                    Not if t != ScalarType::Bool => terr("`!` on non-boolean"),
                    Neg | Abs | Signum if !t.is_numeric() => {
                        terr(format!("`{op:?}` on non-numeric `{t}`"))
                    }
                    Sqrt | Exp | Log | Sin | Cos | Tanh if !t.is_float() => {
                        terr(format!("`{op:?}` on non-float `{t}`"))
                    }
                    _ => Ok(vec![Type::Scalar(t)]),
                }
            }
            Exp::BinOp(op, a, b) => {
                let ta = self.scalar_type_of(env, a, "left operand")?;
                let tb = self.scalar_type_of(env, b, "right operand")?;
                if ta != tb {
                    return terr(format!(
                        "operands of `{}` differ: {ta} vs {tb}",
                        op.symbol()
                    ));
                }
                match op {
                    BinOp::And | BinOp::Or if ta != ScalarType::Bool => {
                        terr("logical operator on non-boolean")
                    }
                    BinOp::Pow | BinOp::Atan2 if !ta.is_float() => {
                        terr("pow/atan2 need float operands")
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
                        if !ta.is_numeric() =>
                    {
                        terr("arithmetic on non-numeric operands")
                    }
                    _ => Ok(vec![Type::Scalar(ta)]),
                }
            }
            Exp::Cmp(_, a, b) => {
                let ta = self.scalar_type_of(env, a, "left operand")?;
                let tb = self.scalar_type_of(env, b, "right operand")?;
                if ta != tb {
                    return terr(format!("compared operands differ: {ta} vs {tb}"));
                }
                Ok(vec![Type::Scalar(ScalarType::Bool)])
            }
            Exp::Convert(t, a) => {
                let ta = self.scalar_type_of(env, a, "conversion operand")?;
                if ta == ScalarType::Bool || *t == ScalarType::Bool {
                    return terr("conversions to/from bool are not supported");
                }
                Ok(vec![Type::Scalar(*t)])
            }
            Exp::If {
                cond,
                then_body,
                else_body,
                ret,
            } => {
                if self.scalar_type_of(env, cond, "if condition")? != ScalarType::Bool {
                    return terr("if condition must be bool");
                }
                let tt = self.check_body(env, then_body)?;
                let te = self.check_body(env, else_body)?;
                if tt.len() != ret.len() || te.len() != ret.len() {
                    return terr("if branches produce a different number of values");
                }
                for ((a, b), r) in tt.iter().zip(&te).zip(ret) {
                    if !compatible(a, r) || !compatible(b, r) {
                        return terr(format!(
                            "if branch types `{a}`/`{b}` incompatible with declared `{r}`"
                        ));
                    }
                }
                Ok(ret.clone())
            }
            Exp::Apply { func, args } => {
                let f = self.prog.function(func).ok_or_else(|| TypeError {
                    message: format!("unknown function `{func}`"),
                })?;
                if f.params.len() != args.len() {
                    return terr(format!(
                        "`{func}` expects {} arguments, got {}",
                        f.params.len(),
                        args.len()
                    ));
                }
                for (a, p) in args.iter().zip(&f.params) {
                    let ta = self.subexp_type(env, a)?;
                    if !compatible(&ta, &p.ty) {
                        return terr(format!(
                            "argument of type `{ta}` passed to `{func}` parameter `{}` of type `{}`",
                            p.name, p.ty
                        ));
                    }
                }
                Ok(f.ret.iter().map(|d| d.ty.clone()).collect())
            }
            Exp::Index { array, indices } => {
                let at = self.array_type_of(env, array)?;
                if indices.len() > at.rank() || indices.is_empty() {
                    return terr(format!(
                        "indexing rank-{} array `{array}` with {} indices",
                        at.rank(),
                        indices.len()
                    ));
                }
                for i in indices {
                    self.index_type_of(env, i, "index")?;
                }
                Ok(vec![Type::array_of(
                    at.elem,
                    at.dims[indices.len()..].to_vec(),
                )])
            }
            Exp::Update {
                array,
                indices,
                value,
            } => {
                let at = self.array_type_of(env, array)?;
                if indices.len() > at.rank() || indices.is_empty() {
                    return terr("update with wrong number of indices");
                }
                for i in indices {
                    self.index_type_of(env, i, "update index")?;
                }
                let slot = Type::array_of(at.elem, at.dims[indices.len()..].to_vec());
                let vt = self.subexp_type(env, value)?;
                if !compatible(&vt, &slot) {
                    return terr(format!(
                        "updating slot of type `{slot}` with value of type `{vt}`"
                    ));
                }
                Ok(vec![Type::Array(at)])
            }
            Exp::Iota(n) => {
                self.index_type_of(env, n, "iota bound")?;
                let dim = match n {
                    SubExp::Const(k) => Size::Const(k.as_i64().unwrap_or(0)),
                    SubExp::Var(v) => Size::Var(v.clone()),
                };
                Ok(vec![Type::array_of(ScalarType::I64, vec![dim])])
            }
            Exp::Replicate(n, v) => {
                self.index_type_of(env, n, "replicate count")?;
                let vt = self.subexp_type(env, v)?;
                let dim = match n {
                    SubExp::Const(k) => Size::Const(k.as_i64().unwrap_or(0)),
                    SubExp::Var(v) => Size::Var(v.clone()),
                };
                Ok(vec![match vt {
                    Type::Scalar(s) => Type::array_of(s, vec![dim]),
                    Type::Array(a) => Type::Array(a.with_outer(dim)),
                }])
            }
            Exp::Rearrange { perm, array } => {
                let at = self.array_type_of(env, array)?;
                if perm.len() != at.rank() {
                    return terr("rearrange permutation length mismatch");
                }
                let mut sorted = perm.clone();
                sorted.sort_unstable();
                if sorted != (0..at.rank()).collect::<Vec<_>>() {
                    return terr("rearrange argument is not a permutation");
                }
                let dims = perm.iter().map(|&p| at.dims[p].clone()).collect();
                Ok(vec![Type::array_of(at.elem, dims)])
            }
            Exp::Reshape { shape, array } => {
                let at = self.array_type_of(env, array)?;
                let mut dims = Vec::new();
                for s in shape {
                    self.index_type_of(env, s, "reshape dimension")?;
                    dims.push(match s {
                        SubExp::Const(k) => Size::Const(k.as_i64().unwrap_or(0)),
                        SubExp::Var(v) => Size::Var(v.clone()),
                    });
                }
                Ok(vec![Type::array_of(at.elem, dims)])
            }
            Exp::Concat { arrays } => {
                if arrays.is_empty() {
                    return terr("concat of zero arrays");
                }
                let first = self.array_type_of(env, &arrays[0])?;
                let mut outer_known = 0i64;
                let mut all_const = true;
                for a in arrays {
                    let at = self.array_type_of(env, a)?;
                    if at.elem != first.elem || at.rank() != first.rank() {
                        return terr("concat of incompatible arrays");
                    }
                    match at.dims[0] {
                        Size::Const(k) => outer_known += k,
                        Size::Var(_) => all_const = false,
                    }
                }
                let outer = if all_const {
                    Size::Const(outer_known)
                } else {
                    // Symbolic; leave as the first array's own size (the
                    // binding's annotation is authoritative downstream).
                    first.dims[0].clone()
                };
                let mut dims = vec![outer];
                dims.extend(first.dims[1..].iter().cloned());
                Ok(vec![Type::array_of(first.elem, dims)])
            }
            Exp::Copy(a) => Ok(vec![Type::Array(self.array_type_of(env, a)?)]),
            Exp::Loop { params, form, body } => {
                let mut env2 = env.clone();
                for (p, init) in params {
                    let it = self.subexp_type(env, init)?;
                    if !compatible(&it, &p.ty) {
                        return terr(format!(
                            "loop parameter `{}` of type `{}` initialised with `{it}`",
                            p.name, p.ty
                        ));
                    }
                    env2.bind(&p.name, &p.ty);
                }
                match form {
                    LoopForm::For { var, bound } => {
                        self.index_type_of(env, bound, "loop bound")?;
                        env2.bind(var, &Type::Scalar(ScalarType::I64));
                    }
                    LoopForm::While(cond) => {
                        let ct = self.check_body(&env2, cond)?;
                        if ct.len() != 1 || ct[0] != Type::Scalar(ScalarType::Bool) {
                            return terr("while condition must produce a single bool");
                        }
                    }
                }
                let tys = self.check_body(&env2, body)?;
                if tys.len() != params.len() {
                    return terr(format!(
                        "loop body produces {} values for {} merge parameters",
                        tys.len(),
                        params.len()
                    ));
                }
                for (t, (p, _)) in tys.iter().zip(params) {
                    if !compatible(t, &p.ty) {
                        return terr(format!(
                            "loop body result `{t}` does not match merge parameter `{}`",
                            p.ty
                        ));
                    }
                }
                Ok(params.iter().map(|(p, _)| p.ty.clone()).collect())
            }
            Exp::Soac(soac) => self.check_soac(env, soac),
        }
    }

    fn soac_inputs(&self, env: &TEnv, width: &SubExp, arrs: &[Name]) -> TResult<Vec<Type>> {
        self.index_type_of(env, width, "SOAC width")?;
        let mut rows = Vec::new();
        for a in arrs {
            let at = self.array_type_of(env, a)?;
            if let (Size::Const(k), SubExp::Const(w)) = (&at.dims[0], width) {
                if Some(*k) != w.as_i64() {
                    return terr(format!(
                        "SOAC width {width} does not match input `{a}` outer size {k}"
                    ));
                }
            }
            rows.push(at.row_type());
        }
        Ok(rows)
    }

    fn check_soac(&self, env: &TEnv, soac: &Soac) -> TResult<Vec<Type>> {
        let outer = |width: &SubExp| match width {
            SubExp::Const(k) => Size::Const(k.as_i64().unwrap_or(0)),
            SubExp::Var(v) => Size::Var(v.clone()),
        };
        let lifted = |t: &Type, o: Size| match t {
            Type::Scalar(s) => Type::array_of(*s, vec![o]),
            Type::Array(a) => Type::Array(a.with_outer(o)),
        };
        match soac {
            Soac::Map { width, lam, arrs } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                self.check_lambda(env, lam, &rows)?;
                Ok(lam.ret.iter().map(|t| lifted(t, outer(width))).collect())
            }
            Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                ..
            } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                let ntys: Vec<Type> = neutral
                    .iter()
                    .map(|e| self.subexp_type(env, e))
                    .collect::<TResult<_>>()?;
                for (r, n) in rows.iter().zip(&ntys) {
                    if !compatible(r, n) {
                        return terr(format!(
                            "reduce input rows `{r}` incompatible with neutral `{n}`"
                        ));
                    }
                }
                self.check_operator(env, lam, &ntys)?;
                Ok(ntys)
            }
            Soac::Scan {
                width,
                lam,
                neutral,
                arrs,
            } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                let ntys: Vec<Type> = neutral
                    .iter()
                    .map(|e| self.subexp_type(env, e))
                    .collect::<TResult<_>>()?;
                for (r, n) in rows.iter().zip(&ntys) {
                    if !compatible(r, n) {
                        return terr("scan input rows incompatible with neutral element");
                    }
                }
                self.check_operator(env, lam, &ntys)?;
                Ok(ntys.iter().map(|t| lifted(t, outer(width))).collect())
            }
            Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                ..
            } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                self.check_lambda(env, map_lam, &rows)?;
                let ntys: Vec<Type> = neutral
                    .iter()
                    .map(|e| self.subexp_type(env, e))
                    .collect::<TResult<_>>()?;
                if map_lam.ret.len() < ntys.len() {
                    return terr("redomap map operator returns fewer values than neutral");
                }
                self.check_operator(env, red_lam, &ntys)?;
                let mut out = ntys.clone();
                for t in map_lam.ret.iter().skip(ntys.len()) {
                    out.push(lifted(t, outer(width)));
                }
                Ok(out)
            }
            Soac::StreamMap { width, lam, arrs } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                self.check_stream_lambda(env, lam, &[], &rows)?;
                let chunk = lam.params[0].name.clone();
                lam.ret
                    .iter()
                    .map(|t| self.stream_result(t, &chunk, outer(width)))
                    .collect()
            }
            Soac::StreamRed {
                width,
                red_lam,
                fold_lam,
                accs,
                arrs,
            } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                let atys: Vec<Type> = accs
                    .iter()
                    .map(|e| self.subexp_type(env, e))
                    .collect::<TResult<_>>()?;
                self.check_stream_lambda(env, fold_lam, &atys, &rows)?;
                self.check_operator(env, red_lam, &atys)?;
                let chunk = fold_lam.params[0].name.clone();
                let mut out = atys.clone();
                for t in fold_lam.ret.iter().skip(atys.len()) {
                    out.push(self.stream_result(t, &chunk, outer(width))?);
                }
                Ok(out)
            }
            Soac::StreamSeq {
                width,
                lam,
                accs,
                arrs,
            } => {
                let rows = self.soac_inputs(env, width, arrs)?;
                let atys: Vec<Type> = accs
                    .iter()
                    .map(|e| self.subexp_type(env, e))
                    .collect::<TResult<_>>()?;
                self.check_stream_lambda(env, lam, &atys, &rows)?;
                let chunk = lam.params[0].name.clone();
                let mut out = atys.clone();
                for t in lam.ret.iter().skip(atys.len()) {
                    out.push(self.stream_result(t, &chunk, outer(width))?);
                }
                Ok(out)
            }
            Soac::Scatter {
                width,
                dest,
                indices,
                values,
            } => {
                self.index_type_of(env, width, "scatter width")?;
                let dt = self.array_type_of(env, dest)?;
                let it = self.array_type_of(env, indices)?;
                if it.elem != ScalarType::I64 || it.rank() != 1 {
                    return terr("scatter indices must be a rank-1 i64 array");
                }
                let vt = self.array_type_of(env, values)?;
                if vt.elem != dt.elem {
                    return terr("scatter values element type mismatch");
                }
                Ok(vec![Type::Array(dt)])
            }
        }
    }

    fn stream_result(&self, t: &Type, chunk: &Name, outer: Size) -> TResult<Type> {
        match t {
            Type::Array(a) => match &a.dims[0] {
                Size::Var(v) if v == chunk => {
                    let mut dims = a.dims.clone();
                    dims[0] = outer;
                    Ok(Type::array_of(a.elem, dims))
                }
                _ => terr("stream array result must be chunk-sized in its outer dimension"),
            },
            t => terr(format!("stream array result must be an array, got `{t}`")),
        }
    }

    fn check_stream_lambda(
        &self,
        env: &TEnv,
        lam: &Lambda,
        accs: &[Type],
        rows: &[Type],
    ) -> TResult<()> {
        if lam.params.len() != 1 + accs.len() + rows.len() {
            return terr(format!(
                "stream operator takes {} parameters but needs {}",
                lam.params.len(),
                1 + accs.len() + rows.len()
            ));
        }
        if lam.params[0].ty != Type::Scalar(ScalarType::I64) {
            return terr("stream operator's first parameter (chunk size) must be i64");
        }
        let chunk = lam.params[0].name.clone();
        let mut env = env.clone();
        env.bind(&chunk, &Type::Scalar(ScalarType::I64));
        for (p, want) in lam.params[1..1 + accs.len()].iter().zip(accs) {
            if !compatible(&p.ty, want) {
                return terr(format!(
                    "stream accumulator `{}` of type `{}` receives `{want}`",
                    p.name, p.ty
                ));
            }
            env.bind(&p.name, &p.ty);
        }
        for (p, row) in lam.params[1 + accs.len()..].iter().zip(rows) {
            let Type::Array(a) = &p.ty else {
                return terr("stream chunk parameter must be an array");
            };
            if !matches!(&a.dims[0], Size::Var(v) if *v == chunk) {
                return terr(format!(
                    "stream chunk parameter `{}` outer dimension must be the chunk size",
                    p.name
                ));
            }
            if !a.row_type().eq_modulo_sizes(row) && !compatible(&a.row_type(), row) {
                return terr("stream chunk parameter row type mismatch");
            }
            env.bind(&p.name, &p.ty);
        }
        let tys = self.check_body(&env, &lam.body)?;
        if tys.len() != lam.ret.len() {
            return terr("stream operator result arity mismatch");
        }
        for (t, r) in tys.iter().zip(&lam.ret) {
            if !compatible(t, r) {
                return terr(format!("stream operator result `{t}` declared `{r}`"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futhark_frontend::parse_program;

    fn check_src(src: &str) -> TResult<()> {
        let (prog, _) = parse_program(src).unwrap();
        typecheck_program(&prog)
    }

    #[test]
    fn accepts_wellformed_programs() {
        check_src(
            "fun main (n: i64) (xs: [n]f32): (f32, [n]f32) =\n\
             let s = reduce (+) 0.0f32 xs\n\
             let ys = scan (+) 0.0f32 xs\n\
             in (s, ys)",
        )
        .unwrap();
    }

    #[test]
    fn accepts_figure4c() {
        check_src(
            "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
             let zeros = replicate k 0\n\
             let counts = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
               (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->\n\
                 loop (a = acc) for i < chunk do (\n\
                   let c = cs[i]\n\
                   let old = a[c]\n\
                   in a with [c] <- old + 1))\n\
               zeros membership\n\
             in counts",
        )
        .unwrap();
    }

    #[test]
    fn rejects_operand_type_mismatch() {
        // Hand-build ill-typed IR: i64 + f32.
        use futhark_core::*;
        let mut ns = NameSource::new();
        let x = ns.fresh("x");
        let y = ns.fresh("y");
        let r = ns.fresh("r");
        let prog = Program {
            functions: vec![FunDef {
                name: "main".into(),
                params: vec![
                    Param::new(x.clone(), Type::Scalar(ScalarType::I64)),
                    Param::new(y.clone(), Type::Scalar(ScalarType::F32)),
                ],
                ret: vec![DeclType::nonunique(Type::Scalar(ScalarType::I64))],
                body: Body::new(
                    vec![Stm::single(
                        r.clone(),
                        Type::Scalar(ScalarType::I64),
                        Exp::BinOp(BinOp::Add, SubExp::Var(x), SubExp::Var(y)),
                    )],
                    vec![SubExp::Var(r)],
                ),
            }],
        };
        assert!(typecheck_program(&prog).is_err());
    }

    #[test]
    fn rejects_constant_width_mismatch() {
        use futhark_core::*;
        let mut ns = NameSource::new();
        let xs = ns.fresh("xs");
        let p = ns.fresh("p");
        let r = ns.fresh("r");
        let arr3 = Type::array_of(ScalarType::I64, vec![Size::Const(3)]);
        let lam = Lambda {
            params: vec![Param::new(p.clone(), Type::Scalar(ScalarType::I64))],
            body: Body::new(vec![], vec![SubExp::Var(p)]),
            ret: vec![Type::Scalar(ScalarType::I64)],
        };
        let prog = Program {
            functions: vec![FunDef {
                name: "main".into(),
                params: vec![Param::new(xs.clone(), arr3.clone())],
                ret: vec![DeclType::nonunique(Type::array_of(
                    ScalarType::I64,
                    vec![Size::Const(5)],
                ))],
                body: Body::new(
                    vec![Stm::single(
                        r.clone(),
                        Type::array_of(ScalarType::I64, vec![Size::Const(5)]),
                        Exp::Soac(Soac::Map {
                            width: SubExp::i64(5),
                            lam,
                            arrs: vec![xs],
                        }),
                    )],
                    vec![SubExp::Var(r)],
                ),
            }],
        };
        assert!(typecheck_program(&prog).is_err());
    }

    #[test]
    fn rejects_bad_loop_merge() {
        use futhark_core::*;
        let mut ns = NameSource::new();
        let acc = ns.fresh("acc");
        let i = ns.fresh("i");
        let r = ns.fresh("r");
        // Loop whose body returns f32 for an i64 merge parameter.
        let prog = Program {
            functions: vec![FunDef {
                name: "main".into(),
                params: vec![],
                ret: vec![DeclType::nonunique(Type::Scalar(ScalarType::I64))],
                body: Body::new(
                    vec![Stm::single(
                        r.clone(),
                        Type::Scalar(ScalarType::I64),
                        Exp::Loop {
                            params: vec![(
                                Param::new(acc.clone(), Type::Scalar(ScalarType::I64)),
                                SubExp::i64(0),
                            )],
                            form: LoopForm::For {
                                var: i,
                                bound: SubExp::i64(4),
                            },
                            body: Body::new(vec![], vec![SubExp::Const(Scalar::F32(1.0))]),
                        },
                    )],
                    vec![SubExp::Var(r)],
                ),
            }],
        };
        assert!(typecheck_program(&prog).is_err());
    }

    #[test]
    fn rejects_indexing_too_deep() {
        let e = {
            use futhark_core::*;
            let mut ns = NameSource::new();
            let xs = ns.fresh("xs");
            let v = ns.fresh("v");
            let prog = Program {
                functions: vec![FunDef {
                    name: "main".into(),
                    params: vec![Param::new(
                        xs.clone(),
                        Type::array_of(ScalarType::I64, vec![Size::Const(3)]),
                    )],
                    ret: vec![DeclType::nonunique(Type::Scalar(ScalarType::I64))],
                    body: Body::new(
                        vec![Stm::single(
                            v.clone(),
                            Type::Scalar(ScalarType::I64),
                            Exp::Index {
                                array: xs,
                                indices: vec![SubExp::i64(0), SubExp::i64(0)],
                            },
                        )],
                        vec![SubExp::Var(v)],
                    ),
                }],
            };
            typecheck_program(&prog)
        };
        assert!(e.is_err());
    }

    #[test]
    fn checks_scatter() {
        check_src(
            "fun main (k: i64) (n: i64) (dest: *[k]f32) (is: [n]i64) (vs: [n]f32): *[k]f32 =\n\
             let r = scatter dest is vs\n\
             in r",
        )
        .unwrap();
    }
}

//! In-place update (uniqueness) checking: the occurrence-trace judgments of
//! the paper's Figure 6 and the examples of Figure 7.
//!
//! Every expression yields an *occurrence trace* `⟨C, O⟩` of consumed and
//! observed variables (both closed under aliasing). Two traces sequence,
//! `⟨C₁,O₁⟩ ≫ ⟨C₂,O₂⟩`, only when `(O₂ ∪ C₂) ∩ C₁ = ∅` — nothing consumed
//! earlier may be touched later (O<small>CCURRENCE</small>-S<small>EQ</small>).
//!
//! SOAC operators are checked through the `Δ` judgment: a lambda may
//! consume *only its own parameters*; consumption of a parameter is
//! translated (via the `P` mapping) into consumption of the corresponding
//! input array by the SOAC as a whole, which preserves the parallel
//! semantics — distinct rows may be updated in parallel.

use crate::alias::{analyze_fun, Aliases};
use futhark_core::traverse::bound_in_body;
use futhark_core::{Body, Exp, FunDef, Lambda, LoopForm, Name, Program, Soac, SubExp};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A uniqueness violation.
#[derive(Debug, Clone, PartialEq)]
pub enum UniquenessError {
    /// A variable (or an alias of it) is used after being consumed.
    UseAfterConsume {
        /// A witness variable that was consumed and then touched.
        var: String,
    },
    /// A SOAC operator or loop body consumes a variable bound outside it
    /// that is not one of its parameters (Figure 7's `cs` example).
    ConsumedFree {
        /// The offending variable.
        var: String,
        /// Which construct.
        context: String,
    },
    /// A function consumes a parameter not declared unique, or a value
    /// aliasing one.
    ConsumedNonUnique {
        /// The non-unique parameter touched by consumption.
        var: String,
    },
    /// The same value is consumed twice in one expression (e.g. passed to
    /// two unique parameters of a call).
    DoubleConsume {
        /// The variable.
        var: String,
    },
    /// A unique function result aliases a non-unique parameter.
    UniqueReturnAliasesParam {
        /// The parameter aliased.
        var: String,
    },
    /// Consumption inside a `while` condition.
    ConsumeInWhileCondition,
}

impl fmt::Display for UniquenessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniquenessError::UseAfterConsume { var } => {
                write!(f, "`{var}` is used after being consumed")
            }
            UniquenessError::ConsumedFree { var, context } => write!(
                f,
                "`{var}` is consumed inside a {context} but is not one of its parameters"
            ),
            UniquenessError::ConsumedNonUnique { var } => write!(
                f,
                "consumption touches parameter `{var}`, which is not declared unique (*)"
            ),
            UniquenessError::DoubleConsume { var } => {
                write!(f, "`{var}` is consumed twice in one expression")
            }
            UniquenessError::UniqueReturnAliasesParam { var } => {
                write!(f, "unique result aliases non-unique parameter `{var}`")
            }
            UniquenessError::ConsumeInWhileCondition => {
                write!(f, "a while-loop condition may not consume arrays")
            }
        }
    }
}

impl std::error::Error for UniquenessError {}

type CResult<T> = Result<T, UniquenessError>;

/// An occurrence trace `⟨C, O⟩`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Consumed variables (closed under aliasing).
    pub consumed: HashSet<Name>,
    /// Observed variables (closed under aliasing).
    pub observed: HashSet<Name>,
}

impl Trace {
    /// The empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// A pure observation.
    pub fn observing(observed: HashSet<Name>) -> Self {
        Trace {
            consumed: HashSet::new(),
            observed,
        }
    }

    /// The sequencing judgment `self ≫ then`: derivable iff nothing
    /// consumed in `self` is touched in `then`.
    ///
    /// # Errors
    ///
    /// Returns [`UniquenessError::UseAfterConsume`] naming a witness.
    pub fn seq(mut self, then: Trace) -> CResult<Trace> {
        if let Some(w) = then
            .observed
            .iter()
            .chain(then.consumed.iter())
            .find(|v| self.consumed.contains(v))
        {
            return Err(UniquenessError::UseAfterConsume { var: w.to_string() });
        }
        self.consumed.extend(then.consumed);
        self.observed.extend(then.observed);
        Ok(self)
    }

    /// Parallel combination (if-branches): both traces start from the same
    /// point, so no sequencing constraint applies between them.
    pub fn union(mut self, other: Trace) -> Trace {
        self.consumed.extend(other.consumed);
        self.observed.extend(other.observed);
        self
    }
}

/// Checks in-place-update safety for a whole program.
///
/// # Errors
///
/// Returns the first [`UniquenessError`].
pub fn check_program_consumption(prog: &Program) -> CResult<()> {
    for f in &prog.functions {
        check_fun(prog, f)?;
    }
    Ok(())
}

/// Checks one function: its body trace must only consume unique parameters
/// (or fresh local values), and unique results must not alias non-unique
/// parameters.
pub fn check_fun(prog: &Program, f: &FunDef) -> CResult<()> {
    let aliases = analyze_fun(prog, f);
    let mut ck = ConsumeCheck { prog, aliases };
    let trace = ck.body(&f.body)?;
    // Consumption may only touch unique parameters.
    for p in &f.params {
        if !p.unique && trace.consumed.contains(&p.name) {
            return Err(UniquenessError::ConsumedNonUnique {
                var: p.name.to_string(),
            });
        }
    }
    // Unique results must not alias non-unique parameters.
    for (se, d) in f.body.result.iter().zip(&f.ret) {
        if d.unique {
            if let SubExp::Var(v) = se {
                let als = ck.aliases.observe(v);
                for p in &f.params {
                    if !p.unique && als.contains(&p.name) {
                        return Err(UniquenessError::UniqueReturnAliasesParam {
                            var: p.name.to_string(),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks a function body given precomputed aliases, returning its trace.
/// Exposed for the optimiser's post-pass validation.
pub fn body_trace(prog: &Program, f: &FunDef) -> CResult<Trace> {
    let aliases = analyze_fun(prog, f);
    let mut ck = ConsumeCheck { prog, aliases };
    ck.body(&f.body)
}

struct ConsumeCheck<'a> {
    prog: &'a Program,
    aliases: Aliases,
}

impl<'a> ConsumeCheck<'a> {
    fn obs_subexp(&self, se: &SubExp) -> HashSet<Name> {
        match se {
            SubExp::Const(_) => HashSet::new(),
            SubExp::Var(v) => self.aliases.observe(v),
        }
    }

    fn obs_many<'b>(&self, it: impl Iterator<Item = &'b SubExp>) -> HashSet<Name> {
        let mut s = HashSet::new();
        for se in it {
            s.extend(self.obs_subexp(se));
        }
        s
    }

    fn obs_vars<'b>(&self, it: impl Iterator<Item = &'b Name>) -> HashSet<Name> {
        let mut s = HashSet::new();
        for v in it {
            s.extend(self.aliases.observe(v));
        }
        s
    }

    fn body(&mut self, b: &Body) -> CResult<Trace> {
        let mut trace = Trace::new();
        for stm in &b.stms {
            let t = self.exp(&stm.exp)?;
            trace = trace.seq(t)?;
        }
        let result_obs = self.obs_many(b.result.iter());
        trace = trace.seq(Trace::observing(result_obs))?;
        Ok(trace)
    }

    fn exp(&mut self, e: &Exp) -> CResult<Trace> {
        match e {
            Exp::SubExp(se) => Ok(Trace::observing(self.obs_subexp(se))),
            Exp::UnOp(_, a) | Exp::Convert(_, a) => Ok(Trace::observing(self.obs_subexp(a))),
            Exp::BinOp(_, a, b) | Exp::Cmp(_, a, b) => {
                let mut o = self.obs_subexp(a);
                o.extend(self.obs_subexp(b));
                Ok(Trace::observing(o))
            }
            Exp::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                // SAFE-IF: cond sequences before each branch; branches merge.
                let ct = Trace::observing(self.obs_subexp(cond));
                let tt = self.body(then_body)?;
                let et = self.body(else_body)?;
                let t1 = ct.clone().seq(tt)?;
                let t2 = ct.seq(et)?;
                Ok(t1.union(t2))
            }
            Exp::Apply { func, args } => {
                let f = self.prog.function(func).expect("typechecked call");
                let mut consumed = HashSet::new();
                let mut observed = HashSet::new();
                for (a, p) in args.iter().zip(&f.params) {
                    if p.unique {
                        if let SubExp::Var(v) = a {
                            let als = self.aliases.observe(v);
                            if let Some(w) = als.intersection(&consumed).next() {
                                return Err(UniquenessError::DoubleConsume { var: w.to_string() });
                            }
                            consumed.extend(als);
                        }
                    } else {
                        observed.extend(self.obs_subexp(a));
                    }
                }
                if let Some(w) = consumed.intersection(&observed).next() {
                    return Err(UniquenessError::DoubleConsume { var: w.to_string() });
                }
                Ok(Trace { consumed, observed })
            }
            Exp::Index { array, indices } => {
                let mut o = self.aliases.observe(array);
                o.extend(self.obs_many(indices.iter()));
                Ok(Trace::observing(o))
            }
            Exp::Update {
                array,
                indices,
                value,
            } => {
                // SAFE-UPDATE: consume aliases(va), observe the value.
                let consumed = self.aliases.observe(array);
                let mut observed = self.obs_subexp(value);
                observed.extend(self.obs_many(indices.iter()));
                Ok(Trace { consumed, observed })
            }
            Exp::Iota(n) => Ok(Trace::observing(self.obs_subexp(n))),
            Exp::Replicate(n, v) => {
                let mut o = self.obs_subexp(n);
                o.extend(self.obs_subexp(v));
                Ok(Trace::observing(o))
            }
            Exp::Rearrange { array, .. } => Ok(Trace::observing(self.aliases.observe(array))),
            Exp::Reshape { shape, array } => {
                let mut o = self.aliases.observe(array);
                o.extend(self.obs_many(shape.iter()));
                Ok(Trace::observing(o))
            }
            Exp::Concat { arrays } => Ok(Trace::observing(self.obs_vars(arrays.iter()))),
            Exp::Copy(a) => Ok(Trace::observing(self.aliases.observe(a))),
            Exp::Loop { params, form, body } => {
                // The loop body may consume its merge parameters (in-place
                // accumulation, Figure 4a); consumption maps back to the
                // initialisers. Consuming any other outer variable would
                // consume it once per iteration — rejected.
                let mut init_obs = HashSet::new();
                for (_, init) in params {
                    init_obs.extend(self.obs_subexp(init));
                }
                let mut trace = Trace::observing(init_obs);
                if let LoopForm::While(cond) = form {
                    let ct = self.body(cond)?;
                    if !ct.consumed.is_empty() {
                        return Err(UniquenessError::ConsumeInWhileCondition);
                    }
                    trace = trace.seq(ct)?;
                }
                if let LoopForm::For { bound, .. } = form {
                    trace = trace.seq(Trace::observing(self.obs_subexp(bound)))?;
                }
                let bt = self.body(body)?;
                let local = bound_in_body(body);
                let mut pmap: HashMap<Name, HashSet<Name>> = HashMap::new();
                for (p, init) in params {
                    pmap.insert(p.name.clone(), self.obs_subexp(init));
                }
                let mapped = self.map_through_params(bt, &pmap, &local, "loop body")?;
                trace.seq(mapped)
            }
            Exp::Soac(soac) => self.soac(soac),
        }
    }

    /// The `Δ` judgment (Figure 6, bottom): translates a nested trace
    /// through a parameter mapping `P`. Observed parameters become
    /// observations of `P[v]`; consumed parameters become consumption of
    /// `P[v]`; consumption of anything else bound outside is an error;
    /// names local to the construct are dropped.
    fn map_through_params(
        &self,
        t: Trace,
        pmap: &HashMap<Name, HashSet<Name>>,
        local: &HashSet<Name>,
        context: &str,
    ) -> CResult<Trace> {
        // Names in the image of `P` are the alias-closures of the
        // parameters themselves: consumption of a parameter is alias-closed
        // and already carries them, so they are not "free" consumption.
        let image: HashSet<&Name> = pmap.values().flatten().collect();
        let mut out = Trace::new();
        for v in t.observed {
            if let Some(s) = pmap.get(&v) {
                out.observed.extend(s.iter().cloned());
            } else if !local.contains(&v) {
                out.observed.insert(v);
            }
        }
        for v in t.consumed {
            if let Some(s) = pmap.get(&v) {
                out.consumed.extend(s.iter().cloned());
            } else if image.contains(&v) {
                out.consumed.insert(v);
            } else if !local.contains(&v) {
                return Err(UniquenessError::ConsumedFree {
                    var: v.to_string(),
                    context: context.to_string(),
                });
            }
        }
        Ok(out)
    }

    /// Checks a SOAC operator lambda: its trace maps through `P`, where
    /// parameter `i` corresponds to `inputs[i]` (or, for operators that may
    /// not consume at all, `P` is empty and any consumption of a parameter
    /// is an error).
    fn operator_trace(
        &mut self,
        lam: &Lambda,
        inputs: &[Option<&SubExp>],
        context: &str,
    ) -> CResult<Trace> {
        let t = self.body(&lam.body)?;
        let mut local = bound_in_body(&lam.body);
        let mut pmap: HashMap<Name, HashSet<Name>> = HashMap::new();
        for (p, input) in lam.params.iter().zip(inputs) {
            match input {
                Some(se) => {
                    pmap.insert(p.name.clone(), self.obs_subexp(se));
                }
                None => {
                    // Parameter with no consumable counterpart (e.g. a
                    // reduce operand): it is local and non-consumable.
                    local.insert(p.name.clone());
                    if t.consumed.contains(&p.name) {
                        return Err(UniquenessError::ConsumedFree {
                            var: p.name.to_string(),
                            context: context.to_string(),
                        });
                    }
                }
            }
        }
        self.map_through_params(t, &pmap, &local, context)
    }

    fn soac(&mut self, soac: &Soac) -> CResult<Trace> {
        let var_se = |v: &Name| SubExp::Var(v.clone());
        match soac {
            Soac::Map { width, lam, arrs } => {
                let ses: Vec<SubExp> = arrs.iter().map(var_se).collect();
                let inputs: Vec<Option<&SubExp>> = ses.iter().map(Some).collect();
                let t = self.operator_trace(lam, &inputs, "map operator")?;
                let mut obs = self.obs_subexp(width);
                obs.extend(self.obs_vars(arrs.iter()));
                // Inputs are observed unless consumed through a parameter.
                let obs = obs.difference(&t.consumed).cloned().collect();
                Ok(Trace {
                    consumed: t.consumed,
                    observed: t.observed.union(&obs).cloned().collect(),
                })
            }
            Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                ..
            }
            | Soac::Scan {
                width,
                lam,
                neutral,
                arrs,
            } => {
                let inputs: Vec<Option<&SubExp>> = lam.params.iter().map(|_| None).collect();
                let t = self.operator_trace(lam, &inputs, "reduction operator")?;
                let mut obs = self.obs_subexp(width);
                obs.extend(self.obs_many(neutral.iter()));
                obs.extend(self.obs_vars(arrs.iter()));
                Ok(Trace {
                    consumed: t.consumed,
                    observed: t.observed.union(&obs).cloned().collect(),
                })
            }
            Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                ..
            } => {
                let ses: Vec<SubExp> = arrs.iter().map(var_se).collect();
                let minputs: Vec<Option<&SubExp>> = ses.iter().map(Some).collect();
                let mt = self.operator_trace(map_lam, &minputs, "redomap map operator")?;
                let rinputs: Vec<Option<&SubExp>> = red_lam.params.iter().map(|_| None).collect();
                let rt = self.operator_trace(red_lam, &rinputs, "redomap operator")?;
                let mut obs = self.obs_subexp(width);
                obs.extend(self.obs_many(neutral.iter()));
                obs.extend(self.obs_vars(arrs.iter()));
                let t = mt.union(rt);
                let obs = obs.difference(&t.consumed).cloned().collect::<HashSet<_>>();
                Ok(Trace {
                    consumed: t.consumed,
                    observed: t.observed.union(&obs).cloned().collect(),
                })
            }
            Soac::StreamMap { width, lam, arrs } => {
                let ses: Vec<SubExp> = arrs.iter().map(var_se).collect();
                let mut inputs: Vec<Option<&SubExp>> = vec![None]; // chunk size
                inputs.extend(ses.iter().map(Some));
                let t = self.operator_trace(lam, &inputs, "stream_map operator")?;
                let mut obs = self.obs_subexp(width);
                obs.extend(self.obs_vars(arrs.iter()));
                let obs = obs.difference(&t.consumed).cloned().collect::<HashSet<_>>();
                Ok(Trace {
                    consumed: t.consumed,
                    observed: t.observed.union(&obs).cloned().collect(),
                })
            }
            Soac::StreamRed {
                width,
                red_lam,
                fold_lam,
                accs,
                arrs,
            } => {
                let ses: Vec<SubExp> = arrs.iter().map(var_se).collect();
                let mut inputs: Vec<Option<&SubExp>> = vec![None]; // chunk size
                                                                   // Accumulator parameters: consuming them consumes the
                                                                   // initial accumulator values (Figure 4c's `acc: *[k]int`).
                inputs.extend(accs.iter().map(Some));
                inputs.extend(ses.iter().map(Some));
                let ft = self.operator_trace(fold_lam, &inputs, "stream_red fold")?;
                let rinputs: Vec<Option<&SubExp>> = red_lam.params.iter().map(|_| None).collect();
                let rt = self.operator_trace(red_lam, &rinputs, "stream_red operator")?;
                let mut obs = self.obs_subexp(width);
                obs.extend(self.obs_many(accs.iter()));
                obs.extend(self.obs_vars(arrs.iter()));
                let t = ft.union(rt);
                let obs = obs.difference(&t.consumed).cloned().collect::<HashSet<_>>();
                Ok(Trace {
                    consumed: t.consumed,
                    observed: t.observed.union(&obs).cloned().collect(),
                })
            }
            Soac::StreamSeq {
                width,
                lam,
                accs,
                arrs,
            } => {
                let ses: Vec<SubExp> = arrs.iter().map(var_se).collect();
                let mut inputs: Vec<Option<&SubExp>> = vec![None];
                inputs.extend(accs.iter().map(Some));
                inputs.extend(ses.iter().map(Some));
                let t = self.operator_trace(lam, &inputs, "stream_seq fold")?;
                let mut obs = self.obs_subexp(width);
                obs.extend(self.obs_many(accs.iter()));
                obs.extend(self.obs_vars(arrs.iter()));
                let obs = obs.difference(&t.consumed).cloned().collect::<HashSet<_>>();
                Ok(Trace {
                    consumed: t.consumed,
                    observed: t.observed.union(&obs).cloned().collect(),
                })
            }
            Soac::Scatter {
                width,
                dest,
                indices,
                values,
            } => {
                let consumed = self.aliases.observe(dest);
                let mut observed = self.obs_subexp(width);
                observed.extend(self.aliases.observe(indices));
                observed.extend(self.aliases.observe(values));
                if let Some(w) = consumed.intersection(&observed).next() {
                    return Err(UniquenessError::DoubleConsume { var: w.to_string() });
                }
                Ok(Trace { consumed, observed })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_program;
    use futhark_frontend::parse_program;

    fn check(src: &str) -> Result<(), crate::CheckError> {
        let (prog, _) = parse_program(src).unwrap();
        check_program(&prog)
    }

    #[test]
    fn modify_example_from_section_3_1() {
        // The paper's `modify` function.
        check(
            "fun modify (n: i64) (a: *[n]i64) (i: i64) (x: [n]i64): *[n]i64 =\n\
             let ai = a[i]\n\
             let xi = x[i]\n\
             let r = a with [i] <- ai + xi\n\
             in r",
        )
        .unwrap();
    }

    #[test]
    fn use_after_consume_is_rejected() {
        let e = check(
            "fun main (n: i64) (a: *[n]i64): i64 =\n\
             let b = a with [0] <- 1\n\
             let v = a[0]\n\
             in v",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn alias_use_after_consume_is_rejected() {
        // `t` aliases `a`; consuming `a` forbids later use of `t`.
        let e = check(
            "fun main (n: i64) (m: i64) (a: *[n][m]i64): [m][n]i64 =\n\
             let t = transpose a\n\
             let z = replicate m 0\n\
             let b = a with [0] <- z\n\
             in t",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn consuming_nonunique_param_is_rejected() {
        let e = check(
            "fun main (n: i64) (a: [n]i64): [n]i64 =\n\
             let b = a with [0] <- 1\n\
             in b",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::ConsumedNonUnique { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn figure7_map_consuming_its_parameter_is_ok() {
        // "This one is OK and considered to consume 'as'."
        check(
            "fun main (n: i64) (m: i64) (as1: *[n][m]i64): [n][m]i64 =\n\
             let bs = map (\\(a: [m]i64) -> a with [0] <- 2) as1\n\
             in bs",
        )
        .unwrap();
    }

    #[test]
    fn figure7_map_consuming_free_variable_is_rejected() {
        // "This one is NOT safe, since d is not a formal parameter."
        let e = check(
            "fun main (n: i64) (m: i64): [n][m]i64 =\n\
             let d = replicate m 0\n\
             let is = iota n\n\
             let cs = map (\\(i: i64) -> d with [i] <- 2) is\n\
             in cs",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::ConsumedFree { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn map_consumption_propagates_to_input() {
        // After the map consumes as1, as1 may not be used again.
        let e = check(
            "fun main (n: i64) (m: i64) (as1: *[n][m]i64): [m]i64 =\n\
             let bs = map (\\(a: [m]i64) -> a with [0] <- 2) as1\n\
             let row = as1[0]\n\
             in row",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn loop_accumulator_update_is_ok() {
        // Figure 4a.
        check(
            "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
             let zeros = replicate k 0\n\
             let counts = loop (c = zeros) for i < n do (\n\
               let cluster = membership[i]\n\
               let old = c[cluster]\n\
               in c with [cluster] <- old + 1)\n\
             in counts",
        )
        .unwrap();
    }

    #[test]
    fn loop_consuming_free_array_is_rejected() {
        let e = check(
            "fun main (n: i64) (k: i64): [k]i64 =\n\
             let d = replicate k 0\n\
             let r = loop (acc = 0) for i < n do (\n\
               let d2 = d with [0] <- i\n\
               let v = d2[0]\n\
               in acc + v)\n\
             let out = replicate k r\n\
             in out",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::ConsumedFree { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn loop_initialiser_unusable_after_consuming_loop() {
        let e = check(
            "fun main (n: i64) (k: i64) (membership: [n]i64): ([k]i64, [k]i64) =\n\
             let zeros = replicate k 0\n\
             let counts = loop (c = zeros) for i < n do (\n\
               let cluster = membership[i]\n\
               let old = c[cluster]\n\
               in c with [cluster] <- old + 1)\n\
             in (counts, zeros)",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn figure_4c_stream_red_accumulator_is_ok() {
        check(
            "fun main (n: i64) (k: i64) (membership: [n]i64): [k]i64 =\n\
             let zeros = replicate k 0\n\
             let counts = stream_red (\\(x: [k]i64) (y: [k]i64) -> map (+) x y)\n\
               (\\(chunk: i64) (acc: [k]i64) (cs: [chunk]i64) ->\n\
                 loop (a = acc) for i < chunk do (\n\
                   let c = cs[i]\n\
                   let old = a[c]\n\
                   in a with [c] <- old + 1))\n\
               zeros membership\n\
             in counts",
        )
        .unwrap();
    }

    #[test]
    fn calling_unique_function_consumes_argument() {
        let e = check(
            "fun modify (n: i64) (a: *[n]i64): *[n]i64 =\n\
             let r = a with [0] <- 1\n\
             in r\n\
             fun main (n: i64) (xs: *[n]i64): i64 =\n\
             let b = modify(n, xs)\n\
             let v = xs[0]\n\
             in v",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn double_consume_in_one_call_is_rejected() {
        let e = check(
            "fun two (n: i64) (a: *[n]i64) (b: *[n]i64): i64 =\n\
             let x = a with [0] <- 1\n\
             let y = b with [0] <- 2\n\
             in 0\n\
             fun main (n: i64) (xs: *[n]i64): i64 =\n\
             let r = two(n, xs, xs)\n\
             in r",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::DoubleConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn unique_return_may_not_alias_nonunique_param() {
        let e = check(
            "fun main (n: i64) (xs: [n]i64): *[n]i64 =\n\
             in xs",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UniqueReturnAliasesParam { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn copy_restores_consumability() {
        check(
            "fun main (n: i64) (xs: [n]i64): *[n]i64 =\n\
             let c = copy xs\n\
             let r = c with [0] <- 5\n\
             in r",
        )
        .unwrap();
    }

    #[test]
    fn branches_may_consume_independently() {
        // Both branches consume `a`; that is fine (only one path runs).
        check(
            "fun main (n: i64) (a: *[n]i64) (flag: bool): *[n]i64 =\n\
             let r = if flag then a with [0] <- 1 else a with [0] <- 2\n\
             in r",
        )
        .unwrap();
    }

    #[test]
    fn consume_then_branch_use_is_rejected() {
        let e = check(
            "fun main (n: i64) (a: *[n]i64) (flag: bool): i64 =\n\
             let b = a with [0] <- 1\n\
             let v = if flag then a[0] else 0\n\
             in v",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }

    #[test]
    fn scatter_consumes_destination() {
        let e = check(
            "fun main (k: i64) (n: i64) (dest: *[k]i64) (is: [n]i64) (vs: [n]i64): i64 =\n\
             let r = scatter dest is vs\n\
             let v = dest[0]\n\
             in v",
        )
        .unwrap_err();
        assert!(
            matches!(
                e,
                crate::CheckError::Uniqueness(UniquenessError::UseAfterConsume { .. })
            ),
            "{e}"
        );
    }
}

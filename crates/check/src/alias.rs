//! Alias analysis: the inference rules of the paper's Figure 5.
//!
//! The central judgment is `Σ ⊢ e ⇒ ⟨σ₁, …, σₙ⟩`: in context `Σ`, the
//! expression produces `n` values where value `i` may share elements with
//! the variables in `σᵢ`. Because names are globally unique in our IR, the
//! context is one flat map from names to alias sets.
//!
//! Key rules implemented here:
//! - A<small>LIAS</small>-V<small>AR</small>: a variable aliases itself and
//!   its own alias set.
//! - SOAC results are fresh (empty alias sets).
//! - A<small>LIAS</small>-I<small>NDEX</small>A<small>RRAY</small> /
//!   -S<small>LICE</small>A<small>RRAY</small>: scalar reads don't alias;
//!   slices (and `rearrange`/`reshape` views) do.
//! - A<small>LIAS</small>-U<small>PDATE</small>: the update result aliases
//!   `Σ(va)` (not `va` itself — `va` is consumed and dead).
//! - A<small>LIAS</small>-A<small>PPLY</small>: unique results are fresh;
//!   non-unique results conservatively alias every non-unique argument.

use futhark_core::traverse::bound_in_body;
use futhark_core::{Body, Exp, FunDef, Lambda, LoopForm, Name, Program, Soac, SubExp};
use std::collections::{HashMap, HashSet};

/// The result of alias analysis over one function: an alias set for every
/// name bound anywhere in it (including inside lambdas and loops).
#[derive(Debug, Clone, Default)]
pub struct Aliases {
    sets: HashMap<Name, HashSet<Name>>,
}

impl Aliases {
    /// The alias set of `v` itself (not including `v`). Unknown names have
    /// empty alias sets.
    pub fn of(&self, v: &Name) -> HashSet<Name> {
        self.sets.get(v).cloned().unwrap_or_default()
    }

    /// `{v} ∪ Σ(v)`: what an *observation* of `v` touches.
    pub fn observe(&self, v: &Name) -> HashSet<Name> {
        let mut s = self.of(v);
        s.insert(v.clone());
        s
    }

    fn insert(&mut self, v: Name, s: HashSet<Name>) {
        self.sets.insert(v, s);
    }
}

/// Runs alias analysis over a function.
pub fn analyze_fun(prog: &Program, f: &FunDef) -> Aliases {
    let mut a = Analysis {
        prog,
        out: Aliases::default(),
    };
    // Parameters are roots: empty alias sets.
    for p in &f.params {
        a.out.insert(p.name.clone(), HashSet::new());
    }
    a.body(&f.body);
    a.out
}

struct Analysis<'a> {
    prog: &'a Program,
    out: Aliases,
}

impl<'a> Analysis<'a> {
    /// Analyzes a body, filling in alias sets for all bindings, and returns
    /// the alias sets of its results.
    fn body(&mut self, b: &Body) -> Vec<HashSet<Name>> {
        for stm in &b.stms {
            let sets = self.exp(&stm.exp);
            for (pe, s) in stm.pat.iter().zip(sets) {
                // ALIAS-LETPAT: a binding does not alias itself.
                let mut s = s;
                s.remove(&pe.name);
                self.out.insert(pe.name.clone(), s);
            }
        }
        b.result.iter().map(|se| self.subexp(se)).collect()
    }

    fn subexp(&self, se: &SubExp) -> HashSet<Name> {
        match se {
            SubExp::Const(_) => HashSet::new(),
            SubExp::Var(v) => self.out.observe(v),
        }
    }

    fn lambda(&mut self, lam: &Lambda) {
        for p in &lam.params {
            self.out.insert(p.name.clone(), HashSet::new());
        }
        self.body(&lam.body);
    }

    fn exp(&mut self, e: &Exp) -> Vec<HashSet<Name>> {
        match e {
            Exp::SubExp(se) => vec![self.subexp(se)],
            // Scalar-producing expressions alias nothing.
            Exp::UnOp(..) | Exp::BinOp(..) | Exp::Cmp(..) | Exp::Convert(..) => {
                vec![HashSet::new()]
            }
            Exp::If {
                then_body,
                else_body,
                ret,
                ..
            } => {
                // ALIAS-IF: positionwise union, scoped to names still alive.
                let ts = self.body(then_body);
                let es = self.body(else_body);
                let t_bound = bound_in_body(then_body);
                let e_bound = bound_in_body(else_body);
                (0..ret.len())
                    .map(|i| {
                        let mut s: HashSet<Name> = ts
                            .get(i)
                            .map(|s| s.difference(&t_bound).cloned().collect())
                            .unwrap_or_default();
                        if let Some(e) = es.get(i) {
                            s.extend(e.difference(&e_bound).cloned());
                        }
                        s
                    })
                    .collect()
            }
            Exp::Apply { func, args } => {
                // ALIAS-APPLY-*.
                let Some(f) = self.prog.function(func) else {
                    return vec![];
                };
                let mut nonunique_args: HashSet<Name> = HashSet::new();
                for (a, p) in args.iter().zip(&f.params) {
                    if !p.unique {
                        if let SubExp::Var(v) = a {
                            nonunique_args.extend(self.out.observe(v));
                        }
                    }
                }
                f.ret
                    .iter()
                    .map(|d| {
                        if d.unique {
                            HashSet::new()
                        } else {
                            nonunique_args.clone()
                        }
                    })
                    .collect()
            }
            Exp::Index { array, indices } => {
                // Scalar read vs slice is decided by the pattern type in the
                // caller; conservatively use the declared rank at the use
                // site: full indexing yields no aliases, otherwise a slice.
                // We cannot see the rank here without an environment, so we
                // approximate via the number of indices: slices only arise
                // from partial indexing, which the type checker has already
                // validated. We treat any index expression as a slice if
                // some dimension remains — callers pass rank info via the
                // pattern, so use the conservative (aliasing) answer only
                // when the producer could be a slice. To stay faithful we
                // alias when the array is multi-dimensional; a rank-1 read
                // is always a scalar.
                let _ = indices;
                vec![self.index_aliases(array, indices.len())]
            }
            Exp::Update { array, .. } => {
                // ALIAS-UPDATE: the paper gives Σ(va) — va itself is
                // consumed and dead. Since the update also consumes all of
                // Σ(va) (consumption is alias-closed), every surviving
                // member of Σ(va) is itself dead, so the reachable alias
                // set is empty: the result owns its storage outright. This
                // is what lets consuming chains (Figure 4a's loop) type.
                let _ = array;
                vec![HashSet::new()]
            }
            Exp::Iota(_) | Exp::Replicate(..) | Exp::Copy(_) | Exp::Concat { .. } => {
                vec![HashSet::new()]
            }
            Exp::Rearrange { array, .. } | Exp::Reshape { array, .. } => {
                // Views share their underlying storage.
                vec![self.out.observe(array)]
            }
            Exp::Loop { params, form, body } => {
                // ALIAS-DOLOOP: parameters start with their initialisers'
                // aliases; results are the body's result aliases minus
                // loop-local names. Additionally — mirroring the ownership
                // transfer of ALIAS-UPDATE — anything the body *consumes*
                // (e.g. the initialiser of an in-place-updated merge
                // parameter, Figure 4a) is removed from the result aliases:
                // the loop owns that storage and hands it to its result.
                for (p, init) in params {
                    let s = self.subexp(init);
                    self.out.insert(p.name.clone(), s);
                }
                if let LoopForm::While(cond) = form {
                    self.body(cond);
                }
                let res = self.body(body);
                let local = bound_in_body(body);
                let param_names: HashSet<Name> =
                    params.iter().map(|(p, _)| p.name.clone()).collect();
                let mut consumed = HashSet::new();
                self.collect_consumed_body(body, &mut consumed);
                // Consumption of a merge parameter consumes its initialiser.
                for (p, init) in params {
                    if consumed.contains(&p.name) {
                        consumed.extend(self.subexp(init));
                    }
                }
                res.into_iter()
                    .map(|s| {
                        s.into_iter()
                            .filter(|v| {
                                !local.contains(v)
                                    && !param_names.contains(v)
                                    && !consumed.contains(v)
                            })
                            .collect()
                    })
                    .collect()
            }
            Exp::Soac(soac) => {
                // SOAC results are fresh arrays (ALIAS-MAP and friends).
                let nresults = match soac {
                    Soac::Map { lam, .. } => {
                        self.lambda(lam);
                        lam.ret.len()
                    }
                    Soac::Reduce { lam, neutral, .. } | Soac::Scan { lam, neutral, .. } => {
                        self.lambda(lam);
                        let _ = neutral;
                        lam.ret.len()
                    }
                    Soac::Redomap {
                        red_lam,
                        map_lam,
                        neutral,
                        ..
                    } => {
                        self.lambda(red_lam);
                        self.lambda(map_lam);
                        neutral.len() + (map_lam.ret.len() - neutral.len())
                    }
                    Soac::StreamMap { lam, .. } => {
                        self.lambda(lam);
                        lam.ret.len()
                    }
                    Soac::StreamRed {
                        red_lam, fold_lam, ..
                    } => {
                        self.lambda(red_lam);
                        self.lambda(fold_lam);
                        fold_lam.ret.len()
                    }
                    Soac::StreamSeq { lam, .. } => {
                        self.lambda(lam);
                        lam.ret.len()
                    }
                    Soac::Scatter { dest, .. } => {
                        // Like an update: the destination and its aliases
                        // are consumed, so the result owns its storage.
                        let _ = dest;
                        return vec![HashSet::new()];
                    }
                };
                vec![HashSet::new(); nresults]
            }
        }
    }

    /// Syntactic collection of names consumed anywhere in a body, closed
    /// under the current alias map. Used by the loop rule above.
    fn collect_consumed_body(&self, b: &Body, out: &mut HashSet<Name>) {
        for stm in &b.stms {
            match &stm.exp {
                Exp::Update { array, .. } => out.extend(self.out.observe(array)),
                Exp::Soac(Soac::Scatter { dest, .. }) => out.extend(self.out.observe(dest)),
                Exp::Apply { func, args } => {
                    if let Some(f) = self.prog.function(func) {
                        for (a, p) in args.iter().zip(&f.params) {
                            if p.unique {
                                if let SubExp::Var(v) = a {
                                    out.extend(self.out.observe(v));
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
            for ib in stm.exp.inner_bodies() {
                self.collect_consumed_body(ib, out);
            }
        }
    }

    fn index_aliases(&self, array: &Name, _n_indices: usize) -> HashSet<Name> {
        // The type checker guarantees index counts; the conservative choice
        // (alias on slice, fresh on scalar) needs the array's rank, which we
        // approximate here by always aliasing. Scalar reads carry no arrays,
        // so the extra aliases are harmless for scalars but keep slices
        // safe. (ALIAS-SLICEARRAY)
        self.out.observe(array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use futhark_frontend::parse_program;

    fn aliases_for(src: &str) -> (futhark_core::Program, Aliases) {
        let (prog, _) = parse_program(src).unwrap();
        let f = prog.main().unwrap().clone();
        let a = analyze_fun(&prog, &f);
        (prog, a)
    }

    fn find(prog: &futhark_core::Program, hint: &str) -> Name {
        fn in_body(b: &Body, hint: &str, out: &mut Vec<Name>) {
            for stm in &b.stms {
                for pe in &stm.pat {
                    if pe.name.hint() == hint {
                        out.push(pe.name.clone());
                    }
                }
                for ib in stm.exp.inner_bodies() {
                    in_body(ib, hint, out);
                }
            }
        }
        let mut out = Vec::new();
        for f in &prog.functions {
            for p in &f.params {
                if p.name.hint() == hint {
                    out.push(p.name.clone());
                }
            }
            in_body(&f.body, hint, &mut out);
        }
        out.into_iter()
            .next()
            .unwrap_or_else(|| panic!("no binding named {hint}"))
    }

    #[test]
    fn map_results_are_fresh() {
        let (prog, a) = aliases_for(
            "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
             let ys = map (\\x -> x + 1) xs\n  in ys",
        );
        let ys = find(&prog, "ys");
        assert!(a.of(&ys).is_empty());
    }

    #[test]
    fn slices_and_views_alias() {
        let (prog, a) = aliases_for(
            "fun main (n: i64) (m: i64) (xss: [n][m]i64): ([m]i64, [m][n]i64) =\n\
             let row = xss[0]\n\
             let t = transpose xss\n\
             in (row, t)",
        );
        let xss = find(&prog, "xss");
        let row = find(&prog, "row");
        let t = find(&prog, "t");
        assert!(a.of(&row).contains(&xss));
        assert!(a.of(&t).contains(&xss));
    }

    #[test]
    fn update_result_aliases_sources_aliases_only() {
        let (prog, a) = aliases_for(
            "fun main (n: i64) (xs: *[n]i64): *[n]i64 =\n\
             let b = xs with [0] <- 5\n\
             let c = b with [1] <- 6\n\
             in c",
        );
        let xs = find(&prog, "xs");
        let b = find(&prog, "b");
        let c = find(&prog, "c");
        // b aliases Σ(xs) = ∅ (xs is a parameter root), not xs itself.
        assert!(!a.of(&b).contains(&xs));
        assert!(a.of(&b).is_empty());
        assert!(a.of(&c).is_empty());
    }

    #[test]
    fn copy_breaks_aliasing() {
        let (prog, a) = aliases_for(
            "fun main (n: i64) (m: i64) (xss: [n][m]i64): [m]i64 =\n\
             let row = xss[0]\n\
             let fresh = copy row\n\
             in fresh",
        );
        let fresh = find(&prog, "fresh");
        assert!(a.of(&fresh).is_empty());
    }

    #[test]
    fn loop_results_alias_through_initialiser() {
        let (prog, a) = aliases_for(
            "fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
             let r = loop (acc = xs) for i < n do acc\n\
             in r",
        );
        let xs = find(&prog, "xs");
        let r = find(&prog, "r");
        // The loop result flows from acc whose initial aliases are {xs}.
        assert!(a.of(&r).contains(&xs), "{:?}", a.of(&r));
    }

    #[test]
    fn call_results_alias_nonunique_args() {
        let (prog, _) = parse_program(
            "fun id (n: i64) (v: [n]i64): [n]i64 = in v\n\
             fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
             let r = id(n, xs)\n\
             in r",
        )
        .unwrap();
        let f = prog.main().unwrap().clone();
        let a = analyze_fun(&prog, &f);
        let xs = find(&prog, "xs");
        let r = find(&prog, "r");
        assert!(a.of(&r).contains(&xs));
    }

    #[test]
    fn unique_call_results_are_fresh() {
        let (prog, _) = parse_program(
            "fun mk (n: i64) (v: [n]i64): *[n]i64 =\n  let c = copy v\n  in c\n\
             fun main (n: i64) (xs: [n]i64): [n]i64 =\n\
             let r = mk(n, xs)\n\
             in r",
        )
        .unwrap();
        let f = prog.main().unwrap().clone();
        let a = analyze_fun(&prog, &f);
        let r = find(&prog, "r");
        assert!(a.of(&r).is_empty());
    }
}

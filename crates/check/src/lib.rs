//! Static checking for the core IR: type checking, alias analysis
//! (Figure 5), and in-place update / uniqueness checking (Figures 6 and 7).
//!
//! The in-place update type system is one of the paper's three key
//! contributions (Section 3): it guarantees that `a with [i] <- v` costs
//! O(element) rather than O(array) *without* compromising purity, by
//! ensuring that a consumed array — one used as the source of an in-place
//! update or passed to a unique (`*`) parameter — is never observed again
//! on any execution path.
//!
//! The entry point is [`check_program`]:
//!
//! ```
//! let (prog, _) = futhark_frontend::parse_program(
//!     "fun main (n: i64) (a: *[n]i64) (i: i64) (x: [n]i64): *[n]i64 =\n\
//!      let xi = x[i]\n\
//!      let ai = a[i]\n\
//!      let r = a with [i] <- ai + xi\n\
//!      in r").unwrap();
//! futhark_check::check_program(&prog).unwrap();
//! ```

pub mod alias;
pub mod consume;
pub mod typecheck;

use futhark_core::Program;
use std::fmt;

/// A static checking error.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckError {
    /// An ordinary type error.
    Type(typecheck::TypeError),
    /// A uniqueness / in-place update violation.
    Uniqueness(consume::UniquenessError),
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Type(e) => write!(f, "{e}"),
            CheckError::Uniqueness(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckError {}

impl From<typecheck::TypeError> for CheckError {
    fn from(e: typecheck::TypeError) -> Self {
        CheckError::Type(e)
    }
}

impl From<consume::UniquenessError> for CheckError {
    fn from(e: consume::UniquenessError) -> Self {
        CheckError::Uniqueness(e)
    }
}

/// Runs the full static checking pipeline on a program: type checking
/// first, then alias-aware uniqueness checking (the paper performs both at
/// once; they are split here for exposition, exactly as Section 3.3 notes).
///
/// # Errors
///
/// Returns the first [`CheckError`] found.
pub fn check_program(prog: &Program) -> Result<(), CheckError> {
    typecheck::typecheck_program(prog)?;
    consume::check_program_consumption(prog)?;
    Ok(())
}

//! Ergonomic programmatic construction of core IR.
//!
//! Tests and internal passes build IR fragments with [`BodyBuilder`], which
//! handles fresh-name generation and type bookkeeping for the common cases.
//!
//! ```
//! use futhark_core::builder::{BodyBuilder, ProgramBuilder};
//! use futhark_core::{NameSource, ScalarType, SubExp, Type};
//!
//! let mut ns = NameSource::new();
//! let mut b = BodyBuilder::new(&mut ns);
//! let x = b.bind_const_i64("x", 2);
//! let y = b.binop(futhark_core::BinOp::Add, ScalarType::I64, x.clone().into(), SubExp::i64(3));
//! let body = b.finish(vec![y.into()]);
//! assert_eq!(body.stms.len(), 2);
//! ```

use crate::ir::{
    BinOp, Body, CmpOp, Exp, FunDef, Lambda, Param, PatElem, Program, Scalar, Soac, Stm, SubExp,
    UnOp,
};
use crate::name::{Name, NameSource};
use crate::types::{DeclType, ScalarType, Size, Type};

/// Accumulates statements for a [`Body`], generating fresh names.
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    ns: &'a mut NameSource,
    stms: Vec<Stm>,
}

impl<'a> BodyBuilder<'a> {
    /// Creates an empty builder drawing names from `ns`.
    pub fn new(ns: &'a mut NameSource) -> Self {
        BodyBuilder {
            ns,
            stms: Vec::new(),
        }
    }

    /// Access to the underlying name source.
    pub fn names(&mut self) -> &mut NameSource {
        self.ns
    }

    /// Binds `exp` to a fresh single name of type `ty`.
    pub fn bind(&mut self, hint: &str, ty: Type, exp: Exp) -> Name {
        let name = self.ns.fresh(hint);
        self.stms.push(Stm::single(name.clone(), ty, exp));
        name
    }

    /// Binds a multi-result expression to fresh names of the given types.
    pub fn bind_multi(&mut self, hint: &str, tys: Vec<Type>, exp: Exp) -> Vec<Name> {
        let pat: Vec<PatElem> = tys
            .into_iter()
            .map(|t| PatElem::new(self.ns.fresh(hint), t))
            .collect();
        let names = pat.iter().map(|pe| pe.name.clone()).collect();
        self.stms.push(Stm::new(pat, exp));
        names
    }

    /// Pushes an already-built statement.
    pub fn push(&mut self, stm: Stm) {
        self.stms.push(stm);
    }

    /// Binds an `i64` constant.
    pub fn bind_const_i64(&mut self, hint: &str, k: i64) -> Name {
        self.bind(
            hint,
            Type::Scalar(ScalarType::I64),
            Exp::SubExp(SubExp::i64(k)),
        )
    }

    /// Binds a scalar binary operation.
    pub fn binop(&mut self, op: BinOp, t: ScalarType, a: SubExp, b: SubExp) -> Name {
        self.bind("b", Type::Scalar(t), Exp::BinOp(op, a, b))
    }

    /// Binds a scalar unary operation.
    pub fn unop(&mut self, op: UnOp, t: ScalarType, a: SubExp) -> Name {
        self.bind("u", Type::Scalar(t), Exp::UnOp(op, a))
    }

    /// Binds a comparison.
    pub fn cmp(&mut self, op: CmpOp, a: SubExp, b: SubExp) -> Name {
        self.bind("c", Type::Scalar(ScalarType::Bool), Exp::Cmp(op, a, b))
    }

    /// Binds `iota n`.
    pub fn iota(&mut self, n: SubExp) -> Name {
        let dim = match &n {
            SubExp::Const(k) => Size::Const(k.as_i64().expect("iota bound must be integral")),
            SubExp::Var(v) => Size::Var(v.clone()),
        };
        self.bind(
            "iota",
            Type::array_of(ScalarType::I64, vec![dim]),
            Exp::Iota(n),
        )
    }

    /// Binds `replicate n v` of the given element type.
    pub fn replicate(&mut self, n: SubExp, v: SubExp, elem_ty: Type) -> Name {
        let dim = match &n {
            SubExp::Const(k) => Size::Const(k.as_i64().expect("size must be integral")),
            SubExp::Var(v) => Size::Var(v.clone()),
        };
        let ty = match elem_ty {
            Type::Scalar(s) => Type::array_of(s, vec![dim]),
            Type::Array(a) => Type::Array(a.with_outer(dim)),
        };
        self.bind("rep", ty, Exp::Replicate(n, v))
    }

    /// Binds a `map` whose lambda produces a single result.
    pub fn map(&mut self, width: SubExp, lam: Lambda, arrs: Vec<Name>) -> Name {
        let dim = match &width {
            SubExp::Const(k) => Size::Const(k.as_i64().expect("width must be integral")),
            SubExp::Var(v) => Size::Var(v.clone()),
        };
        let ret = lam.ret[0].clone();
        let ty = match ret {
            Type::Scalar(s) => Type::array_of(s, vec![dim]),
            Type::Array(a) => Type::Array(a.with_outer(dim)),
        };
        self.bind("mapres", ty, Exp::Soac(Soac::Map { width, lam, arrs }))
    }

    /// Binds a single-result `reduce`.
    pub fn reduce(&mut self, width: SubExp, lam: Lambda, neutral: SubExp, arrs: Vec<Name>) -> Name {
        let ty = lam.ret[0].clone();
        self.bind(
            "redres",
            ty,
            Exp::Soac(Soac::Reduce {
                width,
                lam,
                neutral: vec![neutral],
                arrs,
                comm: false,
            }),
        )
    }

    /// Completes the body with the given result operands.
    pub fn finish(self, result: Vec<SubExp>) -> Body {
        Body::new(self.stms, result)
    }
}

/// Builds a [`Lambda`] with scalar parameters implementing a binary
/// operator, e.g. the `(+)` passed to `reduce`.
pub fn binop_lambda(ns: &mut NameSource, op: BinOp, t: ScalarType) -> Lambda {
    let x = ns.fresh("x");
    let y = ns.fresh("y");
    let r = ns.fresh("r");
    Lambda {
        params: vec![
            Param::new(x.clone(), Type::Scalar(t)),
            Param::new(y.clone(), Type::Scalar(t)),
        ],
        body: Body::new(
            vec![Stm::single(
                r.clone(),
                Type::Scalar(t),
                Exp::BinOp(op, SubExp::Var(x), SubExp::Var(y)),
            )],
            vec![SubExp::Var(r)],
        ),
        ret: vec![Type::Scalar(t)],
    }
}

/// Builds the vectorised form `map (⊕)` of a binary operator: a lambda over
/// two `[n]t` arrays combining them elementwise, as used by K-means'
/// `stream_red` in Figure 4c.
pub fn vectorised_binop_lambda(ns: &mut NameSource, op: BinOp, t: ScalarType, n: Size) -> Lambda {
    let xs = ns.fresh("xs");
    let ys = ns.fresh("ys");
    let rs = ns.fresh("rs");
    let arr_t = Type::array_of(t, vec![n.clone()]);
    let inner = binop_lambda(ns, op, t);
    Lambda {
        params: vec![
            Param::new(xs.clone(), arr_t.clone()),
            Param::new(ys.clone(), arr_t.clone()),
        ],
        body: Body::new(
            vec![Stm::single(
                rs.clone(),
                arr_t.clone(),
                Exp::Soac(Soac::Map {
                    width: SubExp::from(&n),
                    lam: inner,
                    arrs: vec![xs, ys],
                }),
            )],
            vec![SubExp::Var(rs)],
        ),
        ret: vec![arr_t],
    }
}

/// Builds the identity lambda over the given types.
pub fn identity_lambda(ns: &mut NameSource, tys: &[Type]) -> Lambda {
    let params: Vec<Param> = tys
        .iter()
        .map(|t| Param::new(ns.fresh("p"), t.clone()))
        .collect();
    let result = params.iter().map(|p| SubExp::Var(p.name.clone())).collect();
    Lambda {
        params,
        body: Body::new(vec![], result),
        ret: tys.to_vec(),
    }
}

/// Incrementally builds a [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder<'a> {
    ns: &'a mut NameSource,
    functions: Vec<FunDef>,
}

impl<'a> ProgramBuilder<'a> {
    /// Creates an empty program builder.
    pub fn new(ns: &'a mut NameSource) -> Self {
        ProgramBuilder {
            ns,
            functions: Vec::new(),
        }
    }

    /// Access to the name source for building parameters and bodies.
    pub fn names(&mut self) -> &mut NameSource {
        self.ns
    }

    /// Adds a function.
    pub fn function(
        &mut self,
        name: &str,
        params: Vec<Param>,
        ret: Vec<DeclType>,
        body: Body,
    ) -> &mut Self {
        self.functions.push(FunDef {
            name: name.to_string(),
            params,
            ret,
            body,
        });
        self
    }

    /// Finishes the program.
    pub fn build(self) -> Program {
        Program {
            functions: self.functions,
        }
    }
}

/// Convenience: a scalar constant subexpression of the given type holding
/// integer value `k`.
pub fn const_of(t: ScalarType, k: i64) -> SubExp {
    SubExp::Const(match t {
        ScalarType::Bool => Scalar::Bool(k != 0),
        ScalarType::I32 => Scalar::I32(k as i32),
        ScalarType::I64 => Scalar::I64(k),
        ScalarType::F32 => Scalar::F32(k as f32),
        ScalarType::F64 => Scalar::F64(k as f64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_bindings() {
        let mut ns = NameSource::new();
        let mut b = BodyBuilder::new(&mut ns);
        let i = b.iota(SubExp::i64(10));
        let lam = {
            let x = b.names().fresh("x");
            Lambda {
                params: vec![Param::new(x.clone(), Type::Scalar(ScalarType::I64))],
                body: Body::new(vec![], vec![SubExp::Var(x)]),
                ret: vec![Type::Scalar(ScalarType::I64)],
            }
        };
        let m = b.map(SubExp::i64(10), lam, vec![i]);
        let body = b.finish(vec![SubExp::Var(m)]);
        assert_eq!(body.stms.len(), 2);
        assert_eq!(body.result.len(), 1);
    }

    #[test]
    fn binop_lambda_shape() {
        let mut ns = NameSource::new();
        let lam = binop_lambda(&mut ns, BinOp::Add, ScalarType::F32);
        assert_eq!(lam.params.len(), 2);
        assert_eq!(lam.ret, vec![Type::Scalar(ScalarType::F32)]);
        assert_eq!(lam.body.stms.len(), 1);
    }

    #[test]
    fn vectorised_lambda_maps() {
        let mut ns = NameSource::new();
        let lam = vectorised_binop_lambda(&mut ns, BinOp::Add, ScalarType::I64, Size::Const(4));
        assert_eq!(lam.params.len(), 2);
        match &lam.body.stms[0].exp {
            Exp::Soac(Soac::Map { arrs, .. }) => assert_eq!(arrs.len(), 2),
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn identity_lambda_returns_params() {
        let mut ns = NameSource::new();
        let tys = vec![Type::Scalar(ScalarType::I64), Type::Scalar(ScalarType::F32)];
        let lam = identity_lambda(&mut ns, &tys);
        assert_eq!(lam.body.result.len(), 2);
        assert!(lam.body.stms.is_empty());
    }

    #[test]
    fn const_of_types() {
        assert_eq!(
            const_of(ScalarType::F32, 3),
            SubExp::Const(Scalar::F32(3.0))
        );
        assert_eq!(
            const_of(ScalarType::I32, -1),
            SubExp::Const(Scalar::I32(-1))
        );
    }
}

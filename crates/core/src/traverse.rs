//! Generic IR traversals: free variables, substitution, and alpha-renaming.
//!
//! Names are globally unique within a program, so substitution does not need
//! capture avoidance as long as code is not duplicated; passes that duplicate
//! code (inlining, loop peeling, fusion of shared producers) first call
//! [`alpha_rename_lambda`] / [`alpha_rename_body`] to freshen every binder.

use crate::ir::{Body, Exp, Lambda, LoopForm, Param, PatElem, Soac, Stm, SubExp};
use crate::name::{Name, NameSource};
use crate::types::{Size, Type};
use std::collections::{HashMap, HashSet};

/// The set of variables occurring free in a body.
pub fn free_in_body(body: &Body) -> HashSet<Name> {
    let mut free = HashSet::new();
    let mut bound = HashSet::new();
    free_body(body, &mut bound, &mut free);
    free
}

/// The set of variables occurring free in an expression.
pub fn free_in_exp(exp: &Exp) -> HashSet<Name> {
    let mut free = HashSet::new();
    let mut bound = HashSet::new();
    free_exp(exp, &mut bound, &mut free);
    free
}

/// The set of variables occurring free in a lambda (not counting its
/// parameters).
pub fn free_in_lambda(lam: &Lambda) -> HashSet<Name> {
    let mut free = HashSet::new();
    let mut bound = HashSet::new();
    for p in &lam.params {
        bound.insert(p.name.clone());
        free_type(&p.ty, &bound, &mut free);
    }
    free_body(&lam.body, &mut bound, &mut free);
    for t in &lam.ret {
        free_type(t, &bound, &mut free);
    }
    free
}

fn record(v: &Name, bound: &HashSet<Name>, free: &mut HashSet<Name>) {
    if !bound.contains(v) {
        free.insert(v.clone());
    }
}

fn free_subexp(se: &SubExp, bound: &HashSet<Name>, free: &mut HashSet<Name>) {
    if let SubExp::Var(v) = se {
        record(v, bound, free);
    }
}

fn free_type(t: &Type, bound: &HashSet<Name>, free: &mut HashSet<Name>) {
    if let Type::Array(a) = t {
        for d in &a.dims {
            if let Size::Var(v) = d {
                record(v, bound, free);
            }
        }
    }
}

fn free_body(body: &Body, bound: &mut HashSet<Name>, free: &mut HashSet<Name>) {
    let mut locally_bound = Vec::new();
    for stm in &body.stms {
        free_exp(&stm.exp, bound, free);
        for pe in &stm.pat {
            free_type(&pe.ty, bound, free);
            bound.insert(pe.name.clone());
            locally_bound.push(pe.name.clone());
        }
    }
    for se in &body.result {
        free_subexp(se, bound, free);
    }
    for n in locally_bound {
        bound.remove(&n);
    }
}

fn free_lambda(lam: &Lambda, bound: &mut HashSet<Name>, free: &mut HashSet<Name>) {
    let mut locally_bound = Vec::new();
    for p in &lam.params {
        free_type(&p.ty, bound, free);
        bound.insert(p.name.clone());
        locally_bound.push(p.name.clone());
    }
    free_body(&lam.body, bound, free);
    for t in &lam.ret {
        free_type(t, bound, free);
    }
    for n in locally_bound {
        bound.remove(&n);
    }
}

fn free_exp(exp: &Exp, bound: &mut HashSet<Name>, free: &mut HashSet<Name>) {
    match exp {
        Exp::SubExp(se) => free_subexp(se, bound, free),
        Exp::UnOp(_, a) | Exp::Convert(_, a) => free_subexp(a, bound, free),
        Exp::BinOp(_, a, b) | Exp::Cmp(_, a, b) => {
            free_subexp(a, bound, free);
            free_subexp(b, bound, free);
        }
        Exp::If {
            cond,
            then_body,
            else_body,
            ret,
        } => {
            free_subexp(cond, bound, free);
            free_body(then_body, bound, free);
            free_body(else_body, bound, free);
            for t in ret {
                free_type(t, bound, free);
            }
        }
        Exp::Apply { args, .. } => {
            for a in args {
                free_subexp(a, bound, free);
            }
        }
        Exp::Index { array, indices } => {
            record(array, bound, free);
            for i in indices {
                free_subexp(i, bound, free);
            }
        }
        Exp::Update {
            array,
            indices,
            value,
        } => {
            record(array, bound, free);
            for i in indices {
                free_subexp(i, bound, free);
            }
            free_subexp(value, bound, free);
        }
        Exp::Iota(n) => free_subexp(n, bound, free),
        Exp::Replicate(n, v) => {
            free_subexp(n, bound, free);
            free_subexp(v, bound, free);
        }
        Exp::Rearrange { array, .. } => record(array, bound, free),
        Exp::Reshape { shape, array } => {
            for s in shape {
                free_subexp(s, bound, free);
            }
            record(array, bound, free);
        }
        Exp::Concat { arrays } => {
            for a in arrays {
                record(a, bound, free);
            }
        }
        Exp::Copy(a) => record(a, bound, free),
        Exp::Loop { params, form, body } => {
            for (p, init) in params {
                free_subexp(init, bound, free);
                free_type(&p.ty, bound, free);
            }
            let mut locally = Vec::new();
            for (p, _) in params {
                bound.insert(p.name.clone());
                locally.push(p.name.clone());
            }
            match form {
                LoopForm::For { var, bound: b } => {
                    free_subexp(b, bound, free);
                    bound.insert(var.clone());
                    locally.push(var.clone());
                }
                LoopForm::While(cond) => free_body(cond, bound, free),
            }
            free_body(body, bound, free);
            for n in locally {
                bound.remove(&n);
            }
        }
        Exp::Soac(soac) => match soac {
            Soac::Map { width, lam, arrs } => {
                free_subexp(width, bound, free);
                free_lambda(lam, bound, free);
                for a in arrs {
                    record(a, bound, free);
                }
            }
            Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                ..
            }
            | Soac::Scan {
                width,
                lam,
                neutral,
                arrs,
            } => {
                free_subexp(width, bound, free);
                free_lambda(lam, bound, free);
                for n in neutral {
                    free_subexp(n, bound, free);
                }
                for a in arrs {
                    record(a, bound, free);
                }
            }
            Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                ..
            } => {
                free_subexp(width, bound, free);
                free_lambda(red_lam, bound, free);
                free_lambda(map_lam, bound, free);
                for n in neutral {
                    free_subexp(n, bound, free);
                }
                for a in arrs {
                    record(a, bound, free);
                }
            }
            Soac::StreamMap { width, lam, arrs } => {
                free_subexp(width, bound, free);
                free_lambda(lam, bound, free);
                for a in arrs {
                    record(a, bound, free);
                }
            }
            Soac::StreamRed {
                width,
                red_lam,
                fold_lam,
                accs,
                arrs,
            } => {
                free_subexp(width, bound, free);
                free_lambda(red_lam, bound, free);
                free_lambda(fold_lam, bound, free);
                for a in accs {
                    free_subexp(a, bound, free);
                }
                for a in arrs {
                    record(a, bound, free);
                }
            }
            Soac::StreamSeq {
                width,
                lam,
                accs,
                arrs,
            } => {
                free_subexp(width, bound, free);
                free_lambda(lam, bound, free);
                for a in accs {
                    free_subexp(a, bound, free);
                }
                for a in arrs {
                    record(a, bound, free);
                }
            }
            Soac::Scatter {
                width,
                dest,
                indices,
                values,
            } => {
                free_subexp(width, bound, free);
                record(dest, bound, free);
                record(indices, bound, free);
                record(values, bound, free);
            }
        },
    }
}

/// A name-to-operand substitution applied to free occurrences.
///
/// Positions that syntactically require a variable (array operands of
/// `index`, SOAC inputs, …) only accept a substitution to another variable.
///
/// # Panics
///
/// Applying a substitution that maps an array-position variable to a
/// constant panics; such substitutions are compiler bugs.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    map: HashMap<Name, SubExp>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a mapping.
    pub fn bind(&mut self, from: Name, to: SubExp) -> &mut Self {
        self.map.insert(from, to);
        self
    }

    /// Whether the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn subexp(&self, se: &mut SubExp) {
        if let SubExp::Var(v) = se {
            if let Some(rep) = self.map.get(v) {
                *se = rep.clone();
            }
        }
    }

    fn var(&self, v: &mut Name) {
        if let Some(rep) = self.map.get(v) {
            match rep {
                SubExp::Var(w) => *v = w.clone(),
                SubExp::Const(_) => {
                    panic!("substituting constant for array variable {v}")
                }
            }
        }
    }

    fn ty(&self, t: &mut Type) {
        if let Type::Array(a) = t {
            for d in &mut a.dims {
                if let Size::Var(v) = d {
                    if let Some(rep) = self.map.get(v) {
                        match rep {
                            SubExp::Var(w) => *d = Size::Var(w.clone()),
                            SubExp::Const(k) => {
                                if let Some(n) = k.as_i64() {
                                    *d = Size::Const(n);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Applies the substitution to a body in place.
    pub fn apply_body(&self, body: &mut Body) {
        if self.is_empty() {
            return;
        }
        for stm in &mut body.stms {
            for pe in &mut stm.pat {
                self.ty(&mut pe.ty);
            }
            self.apply_exp(&mut stm.exp);
        }
        for se in &mut body.result {
            self.subexp(se);
        }
    }

    /// Applies the substitution to a lambda in place (parameters are binders
    /// and are not replaced, but their types' sizes are).
    pub fn apply_lambda(&self, lam: &mut Lambda) {
        for p in &mut lam.params {
            self.ty(&mut p.ty);
        }
        self.apply_body(&mut lam.body);
        for t in &mut lam.ret {
            self.ty(t);
        }
    }

    /// Applies the substitution to an expression in place.
    pub fn apply_exp(&self, exp: &mut Exp) {
        match exp {
            Exp::SubExp(se) => self.subexp(se),
            Exp::UnOp(_, a) | Exp::Convert(_, a) => self.subexp(a),
            Exp::BinOp(_, a, b) | Exp::Cmp(_, a, b) => {
                self.subexp(a);
                self.subexp(b);
            }
            Exp::If {
                cond,
                then_body,
                else_body,
                ret,
            } => {
                self.subexp(cond);
                self.apply_body(then_body);
                self.apply_body(else_body);
                for t in ret {
                    self.ty(t);
                }
            }
            Exp::Apply { args, .. } => {
                for a in args {
                    self.subexp(a);
                }
            }
            Exp::Index { array, indices } => {
                self.var(array);
                for i in indices {
                    self.subexp(i);
                }
            }
            Exp::Update {
                array,
                indices,
                value,
            } => {
                self.var(array);
                for i in indices {
                    self.subexp(i);
                }
                self.subexp(value);
            }
            Exp::Iota(n) => self.subexp(n),
            Exp::Replicate(n, v) => {
                self.subexp(n);
                self.subexp(v);
            }
            Exp::Rearrange { array, .. } => self.var(array),
            Exp::Reshape { shape, array } => {
                for s in shape {
                    self.subexp(s);
                }
                self.var(array);
            }
            Exp::Concat { arrays } => {
                for a in arrays {
                    self.var(a);
                }
            }
            Exp::Copy(a) => self.var(a),
            Exp::Loop { params, form, body } => {
                for (p, init) in params.iter_mut() {
                    self.subexp(init);
                    self.ty(&mut p.ty);
                }
                match form {
                    LoopForm::For { bound, .. } => self.subexp(bound),
                    LoopForm::While(cond) => self.apply_body(cond),
                }
                self.apply_body(body);
            }
            Exp::Soac(soac) => match soac {
                Soac::Map { width, lam, arrs } => {
                    self.subexp(width);
                    self.apply_lambda(lam);
                    for a in arrs {
                        self.var(a);
                    }
                }
                Soac::Reduce {
                    width,
                    lam,
                    neutral,
                    arrs,
                    ..
                }
                | Soac::Scan {
                    width,
                    lam,
                    neutral,
                    arrs,
                } => {
                    self.subexp(width);
                    self.apply_lambda(lam);
                    for n in neutral {
                        self.subexp(n);
                    }
                    for a in arrs {
                        self.var(a);
                    }
                }
                Soac::Redomap {
                    width,
                    red_lam,
                    map_lam,
                    neutral,
                    arrs,
                    ..
                } => {
                    self.subexp(width);
                    self.apply_lambda(red_lam);
                    self.apply_lambda(map_lam);
                    for n in neutral {
                        self.subexp(n);
                    }
                    for a in arrs {
                        self.var(a);
                    }
                }
                Soac::StreamMap { width, lam, arrs } => {
                    self.subexp(width);
                    self.apply_lambda(lam);
                    for a in arrs {
                        self.var(a);
                    }
                }
                Soac::StreamRed {
                    width,
                    red_lam,
                    fold_lam,
                    accs,
                    arrs,
                } => {
                    self.subexp(width);
                    self.apply_lambda(red_lam);
                    self.apply_lambda(fold_lam);
                    for a in accs {
                        self.subexp(a);
                    }
                    for a in arrs {
                        self.var(a);
                    }
                }
                Soac::StreamSeq {
                    width,
                    lam,
                    accs,
                    arrs,
                } => {
                    self.subexp(width);
                    self.apply_lambda(lam);
                    for a in accs {
                        self.subexp(a);
                    }
                    for a in arrs {
                        self.var(a);
                    }
                }
                Soac::Scatter {
                    width,
                    dest,
                    indices,
                    values,
                } => {
                    self.subexp(width);
                    self.var(dest);
                    self.var(indices);
                    self.var(values);
                }
            },
        }
    }
}

/// Returns a copy of the lambda with every binder (parameters and all names
/// bound in the body, recursively) renamed fresh.
pub fn alpha_rename_lambda(ns: &mut NameSource, lam: &Lambda) -> Lambda {
    let mut lam = lam.clone();
    let mut subst = Subst::new();
    for p in &mut lam.params {
        let fresh = ns.fresh_from(&p.name);
        subst.bind(p.name.clone(), SubExp::Var(fresh.clone()));
        p.name = fresh;
    }
    rename_body_binders(ns, &mut lam.body, &mut subst);
    // Apply accumulated renames to types and results.
    let mut done = lam.clone();
    subst.apply_lambda(&mut done);
    done
}

/// Returns a copy of the body with every binder renamed fresh; `subst`
/// receives the renames and is applied afterwards by the caller.
fn rename_body_binders(ns: &mut NameSource, body: &mut Body, subst: &mut Subst) {
    for stm in &mut body.stms {
        rename_exp_binders(ns, &mut stm.exp, subst);
        for pe in &mut stm.pat {
            let fresh = ns.fresh_from(&pe.name);
            subst.bind(pe.name.clone(), SubExp::Var(fresh.clone()));
            pe.name = fresh;
        }
    }
}

fn rename_exp_binders(ns: &mut NameSource, exp: &mut Exp, subst: &mut Subst) {
    match exp {
        Exp::Loop { params, form, body } => {
            for (p, _) in params.iter_mut() {
                let fresh = ns.fresh_from(&p.name);
                subst.bind(p.name.clone(), SubExp::Var(fresh.clone()));
                p.name = fresh;
            }
            if let LoopForm::For { var, .. } = form {
                let fresh = ns.fresh_from(var);
                subst.bind(var.clone(), SubExp::Var(fresh.clone()));
                *var = fresh;
            }
            if let LoopForm::While(cond) = form {
                rename_body_binders(ns, cond, subst);
            }
            rename_body_binders(ns, body, subst);
        }
        _ => {
            for b in exp.inner_bodies_mut() {
                rename_body_binders(ns, b, subst);
            }
            if let Exp::Soac(soac) = exp {
                let lams: Vec<&mut Lambda> = match soac {
                    Soac::Map { lam, .. }
                    | Soac::Scan { lam, .. }
                    | Soac::Reduce { lam, .. }
                    | Soac::StreamMap { lam, .. }
                    | Soac::StreamSeq { lam, .. } => vec![lam],
                    Soac::Redomap {
                        red_lam, map_lam, ..
                    } => vec![red_lam, map_lam],
                    Soac::StreamRed {
                        red_lam, fold_lam, ..
                    } => vec![red_lam, fold_lam],
                    Soac::Scatter { .. } => vec![],
                };
                for lam in lams {
                    for p in &mut lam.params {
                        let fresh = ns.fresh_from(&p.name);
                        subst.bind(p.name.clone(), SubExp::Var(fresh.clone()));
                        p.name = fresh;
                    }
                }
            }
        }
    }
}

/// Returns a copy of the body with every binder renamed fresh and the new
/// names applied throughout.
pub fn alpha_rename_body(ns: &mut NameSource, body: &Body) -> Body {
    let mut body = body.clone();
    let mut subst = Subst::new();
    rename_body_binders(ns, &mut body, &mut subst);
    let mut done = body.clone();
    subst.apply_body(&mut done);
    done
}

/// All names bound anywhere inside a body (statement patterns, loop and
/// lambda parameters, recursively).
pub fn bound_in_body(body: &Body) -> HashSet<Name> {
    let mut out = HashSet::new();
    collect_bound_body(body, &mut out);
    out
}

fn collect_bound_body(body: &Body, out: &mut HashSet<Name>) {
    for stm in &body.stms {
        for pe in &stm.pat {
            out.insert(pe.name.clone());
        }
        collect_bound_exp(&stm.exp, out);
    }
}

fn collect_bound_exp(exp: &Exp, out: &mut HashSet<Name>) {
    if let Exp::Loop { params, form, .. } = exp {
        for (p, _) in params {
            out.insert(p.name.clone());
        }
        if let LoopForm::For { var, .. } = form {
            out.insert(var.clone());
        }
    }
    if let Exp::Soac(soac) = exp {
        let lams: Vec<&Lambda> = match soac {
            Soac::Map { lam, .. }
            | Soac::Scan { lam, .. }
            | Soac::Reduce { lam, .. }
            | Soac::StreamMap { lam, .. }
            | Soac::StreamSeq { lam, .. } => vec![lam],
            Soac::Redomap {
                red_lam, map_lam, ..
            } => vec![red_lam, map_lam],
            Soac::StreamRed {
                red_lam, fold_lam, ..
            } => vec![red_lam, fold_lam],
            Soac::Scatter { .. } => vec![],
        };
        for lam in lams {
            for p in &lam.params {
                out.insert(p.name.clone());
            }
        }
    }
    for b in exp.inner_bodies() {
        collect_bound_body(b, out);
    }
}

/// Builds a parameter list/pattern helper: turns params into pattern
/// elements.
pub fn params_to_pat(params: &[Param]) -> Vec<PatElem> {
    params
        .iter()
        .map(|p| PatElem::new(p.name.clone(), p.ty.clone()))
        .collect()
}

/// Convenience: a statement binding nothing of interest is never produced;
/// assert that patterns are non-empty (IR invariant).
pub fn check_stm_invariants(stm: &Stm) -> bool {
    !stm.pat.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Scalar};
    use crate::types::ScalarType;

    fn i64t() -> Type {
        Type::Scalar(ScalarType::I64)
    }

    #[test]
    fn free_vars_of_simple_body() {
        let mut ns = NameSource::new();
        let x = ns.fresh("x");
        let y = ns.fresh("y");
        let z = ns.fresh("z");
        // let y = x + 1 in (y, z)
        let body = Body::new(
            vec![Stm::single(
                y.clone(),
                i64t(),
                Exp::BinOp(BinOp::Add, SubExp::Var(x.clone()), SubExp::i64(1)),
            )],
            vec![SubExp::Var(y.clone()), SubExp::Var(z.clone())],
        );
        let free = free_in_body(&body);
        assert!(free.contains(&x));
        assert!(free.contains(&z));
        assert!(!free.contains(&y));
    }

    #[test]
    fn free_vars_include_type_sizes() {
        let mut ns = NameSource::new();
        let n = ns.fresh("n");
        let xs = ns.fresh("xs");
        let p = ns.fresh("p");
        let lam = Lambda {
            params: vec![Param::new(
                p.clone(),
                Type::array_of(ScalarType::F32, vec![Size::Var(n.clone())]),
            )],
            body: Body::new(vec![], vec![SubExp::Var(p)]),
            ret: vec![Type::array_of(ScalarType::F32, vec![Size::Var(n.clone())])],
        };
        let free = free_in_lambda(&lam);
        assert!(free.contains(&n));
        assert!(!free.contains(&xs));
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        let mut ns = NameSource::new();
        let x = ns.fresh("x");
        let y = ns.fresh("y");
        let mut body = Body::new(
            vec![Stm::single(
                y.clone(),
                i64t(),
                Exp::BinOp(BinOp::Add, SubExp::Var(x.clone()), SubExp::Var(x.clone())),
            )],
            vec![SubExp::Var(y.clone())],
        );
        let mut s = Subst::new();
        s.bind(x.clone(), SubExp::Const(Scalar::I64(5)));
        s.apply_body(&mut body);
        assert_eq!(
            body.stms[0].exp,
            Exp::BinOp(BinOp::Add, SubExp::i64(5), SubExp::i64(5))
        );
    }

    #[test]
    fn alpha_rename_freshens_binders() {
        let mut ns = NameSource::new();
        let x = ns.fresh("x");
        let y = ns.fresh("y");
        let lam = Lambda {
            params: vec![Param::new(x.clone(), i64t())],
            body: Body::new(
                vec![Stm::single(
                    y.clone(),
                    i64t(),
                    Exp::BinOp(BinOp::Mul, SubExp::Var(x.clone()), SubExp::i64(2)),
                )],
                vec![SubExp::Var(y.clone())],
            ),
            ret: vec![i64t()],
        };
        let lam2 = alpha_rename_lambda(&mut ns, &lam);
        assert_ne!(lam2.params[0].name, x);
        assert_ne!(lam2.body.stms[0].pat[0].name, y);
        // The body still refers to the *new* parameter.
        match &lam2.body.stms[0].exp {
            Exp::BinOp(BinOp::Mul, SubExp::Var(v), _) => {
                assert_eq!(v, &lam2.params[0].name)
            }
            other => panic!("unexpected {other:?}"),
        }
        // Result refers to the new binding.
        assert_eq!(
            lam2.body.result[0],
            SubExp::Var(lam2.body.stms[0].pat[0].name.clone())
        );
    }

    #[test]
    fn bound_in_body_collects_nested() {
        let mut ns = NameSource::new();
        let i = ns.fresh("i");
        let acc = ns.fresh("acc");
        let r = ns.fresh("r");
        let body = Body::new(
            vec![Stm::single(
                r.clone(),
                i64t(),
                Exp::Loop {
                    params: vec![(Param::new(acc.clone(), i64t()), SubExp::i64(0))],
                    form: LoopForm::For {
                        var: i.clone(),
                        bound: SubExp::i64(3),
                    },
                    body: Body::new(vec![], vec![SubExp::Var(acc.clone())]),
                },
            )],
            vec![SubExp::Var(r.clone())],
        );
        let bound = bound_in_body(&body);
        assert!(bound.contains(&i));
        assert!(bound.contains(&acc));
        assert!(bound.contains(&r));
    }
}

//! The monomorphic, shape-annotated type system of the paper's Figure 1.
//!
//! Array types carry their exact shape as a sequence of [`Size`]s, each
//! either a constant or a variable in scope (`[n][m]f32`). Parameter and
//! return types additionally carry a *uniqueness* attribute ([`DeclType`]),
//! written `*[n]i32`, which is the basis of the in-place update type system
//! of Section 3.

use crate::name::Name;
use std::fmt;

/// Primitive scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// Booleans.
    Bool,
    /// 32-bit signed integers.
    I32,
    /// 64-bit signed integers (also used for sizes and indices).
    I64,
    /// 32-bit IEEE-754 floats.
    F32,
    /// 64-bit IEEE-754 floats.
    F64,
}

impl ScalarType {
    /// Whether this is one of the integer types.
    pub fn is_integral(self) -> bool {
        matches!(self, ScalarType::I32 | ScalarType::I64)
    }

    /// Whether this is one of the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether values of this type support arithmetic.
    pub fn is_numeric(self) -> bool {
        self.is_integral() || self.is_float()
    }

    /// Size of one element in bytes, as laid out in simulated GPU memory.
    pub fn byte_size(self) -> usize {
        match self {
            ScalarType::Bool => 1,
            ScalarType::I32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::F64 => 8,
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Bool => "bool",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A symbolic array dimension: a constant or a scalar variable in scope.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Size {
    /// A statically known extent.
    Const(i64),
    /// The value of an `i64` variable in scope.
    Var(Name),
}

impl Size {
    /// Returns the constant extent, if statically known.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Size::Const(k) => Some(*k),
            Size::Var(_) => None,
        }
    }

    /// Returns the size variable, if symbolic.
    pub fn as_var(&self) -> Option<&Name> {
        match self {
            Size::Const(_) => None,
            Size::Var(v) => Some(v),
        }
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Size::Const(k) => write!(f, "{k}"),
            Size::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Size {
    fn from(k: i64) -> Self {
        Size::Const(k)
    }
}

impl From<Name> for Size {
    fn from(v: Name) -> Self {
        Size::Var(v)
    }
}

/// A regular multi-dimensional array type with an exact symbolic shape.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayType {
    /// Element type.
    pub elem: ScalarType,
    /// Outermost-first dimensions; always non-empty.
    pub dims: Vec<Size>,
}

impl ArrayType {
    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The type obtained by indexing away the outermost dimension.
    pub fn row_type(&self) -> Type {
        if self.dims.len() == 1 {
            Type::Scalar(self.elem)
        } else {
            Type::Array(ArrayType {
                elem: self.elem,
                dims: self.dims[1..].to_vec(),
            })
        }
    }

    /// The type with an extra outermost dimension of extent `n`.
    pub fn with_outer(&self, n: Size) -> ArrayType {
        let mut dims = Vec::with_capacity(self.dims.len() + 1);
        dims.push(n);
        dims.extend(self.dims.iter().cloned());
        ArrayType {
            elem: self.elem,
            dims,
        }
    }
}

impl fmt::Display for ArrayType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        write!(f, "{}", self.elem)
    }
}

/// The type of a value: a scalar or a regular array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A primitive scalar.
    Scalar(ScalarType),
    /// A regular multi-dimensional array.
    Array(ArrayType),
}

impl Type {
    /// Builds an array type from element type and dimensions. With no
    /// dimensions, yields the scalar type itself.
    pub fn array_of(elem: ScalarType, dims: Vec<Size>) -> Type {
        if dims.is_empty() {
            Type::Scalar(elem)
        } else {
            Type::Array(ArrayType { elem, dims })
        }
    }

    /// The underlying scalar/element type.
    pub fn elem(&self) -> ScalarType {
        match self {
            Type::Scalar(s) => *s,
            Type::Array(a) => a.elem,
        }
    }

    /// Number of array dimensions (0 for scalars).
    pub fn rank(&self) -> usize {
        match self {
            Type::Scalar(_) => 0,
            Type::Array(a) => a.rank(),
        }
    }

    /// Whether this is a scalar type.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    /// The array type, if this is an array.
    pub fn as_array(&self) -> Option<&ArrayType> {
        match self {
            Type::Scalar(_) => None,
            Type::Array(a) => Some(a),
        }
    }

    /// The type after indexing with `n` indices.
    ///
    /// Indexing a rank-`r` array with `n < r` indices yields a slice
    /// (A<span>LIAS</span>-S<span>LICE</span>A<span>RRAY</span> in Figure 5);
    /// with `n == r` indices it yields a scalar.
    pub fn index_type(&self, n: usize) -> Option<Type> {
        match self {
            Type::Scalar(_) => {
                if n == 0 {
                    Some(self.clone())
                } else {
                    None
                }
            }
            Type::Array(a) => {
                if n > a.rank() {
                    None
                } else {
                    Some(Type::array_of(a.elem, a.dims[n..].to_vec()))
                }
            }
        }
    }

    /// The outermost dimension, if any.
    pub fn outer_dim(&self) -> Option<&Size> {
        self.as_array().and_then(|a| a.dims.first())
    }

    /// Structural equality ignoring the exact identity of symbolic sizes.
    ///
    /// Used where the checker cannot prove two symbolic sizes equal and
    /// falls back to a dynamically checked postcondition, as described in
    /// Section 2.2.
    pub fn eq_modulo_sizes(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Scalar(a), Type::Scalar(b)) => a == b,
            (Type::Array(a), Type::Array(b)) => a.elem == b.elem && a.rank() == b.rank(),
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Array(a) => write!(f, "{a}"),
        }
    }
}

impl From<ScalarType> for Type {
    fn from(s: ScalarType) -> Self {
        Type::Scalar(s)
    }
}

/// A type with a uniqueness attribute, used for function parameters and
/// return types (`*[n]i32` in the paper's concrete syntax).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DeclType {
    /// The underlying type.
    pub ty: Type,
    /// Whether the value is unique (`*`): ownership is transferred and the
    /// value may be consumed by in-place updates.
    pub unique: bool,
}

impl DeclType {
    /// A non-unique declaration of the given type.
    pub fn nonunique(ty: Type) -> Self {
        DeclType { ty, unique: false }
    }

    /// A unique declaration of the given type.
    pub fn unique(ty: Type) -> Self {
        DeclType { ty, unique: true }
    }
}

impl fmt::Display for DeclType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unique {
            write!(f, "*")?;
        }
        write!(f, "{}", self.ty)
    }
}

impl From<Type> for DeclType {
    fn from(ty: Type) -> Self {
        DeclType::nonunique(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameSource;

    #[test]
    fn row_type_peels_one_dimension() {
        let mut ns = NameSource::new();
        let n = ns.fresh("n");
        let m = ns.fresh("m");
        let t = ArrayType {
            elem: ScalarType::F32,
            dims: vec![Size::Var(n), Size::Var(m)],
        };
        let row = t.row_type();
        assert_eq!(row.rank(), 1);
        assert_eq!(row.elem(), ScalarType::F32);
        assert_eq!(row.index_type(1), Some(Type::Scalar(ScalarType::F32)));
    }

    #[test]
    fn index_type_produces_slices_and_scalars() {
        let t = Type::array_of(
            ScalarType::I32,
            vec![Size::Const(4), Size::Const(5), Size::Const(6)],
        );
        assert_eq!(t.index_type(0), Some(t.clone()));
        assert_eq!(
            t.index_type(2),
            Some(Type::array_of(ScalarType::I32, vec![Size::Const(6)]))
        );
        assert_eq!(t.index_type(3), Some(Type::Scalar(ScalarType::I32)));
        assert_eq!(t.index_type(4), None);
    }

    #[test]
    fn display_matches_paper_syntax() {
        let mut ns = NameSource::new();
        let n = ns.fresh("n");
        let t = Type::array_of(ScalarType::F32, vec![Size::Var(n.clone()), Size::Const(3)]);
        assert_eq!(t.to_string(), format!("[{n}][3]f32"));
        assert_eq!(DeclType::unique(t).to_string(), format!("*[{n}][3]f32"));
    }

    #[test]
    fn eq_modulo_sizes_ignores_size_identity() {
        let mut ns = NameSource::new();
        let a = Type::array_of(ScalarType::F32, vec![Size::Var(ns.fresh("n"))]);
        let b = Type::array_of(ScalarType::F32, vec![Size::Const(10)]);
        assert!(a.eq_modulo_sizes(&b));
        let c = Type::array_of(ScalarType::F64, vec![Size::Const(10)]);
        assert!(!a.eq_modulo_sizes(&c));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(ScalarType::Bool.byte_size(), 1);
        assert_eq!(ScalarType::I32.byte_size(), 4);
        assert_eq!(ScalarType::F64.byte_size(), 8);
    }

    #[test]
    fn with_outer_prepends_dimension() {
        let t = ArrayType {
            elem: ScalarType::I64,
            dims: vec![Size::Const(2)],
        };
        let t2 = t.with_outer(Size::Const(9));
        assert_eq!(t2.dims, vec![Size::Const(9), Size::Const(2)]);
    }
}

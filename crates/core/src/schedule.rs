//! Schedules: the optimisation pipeline's decisions as a first-class
//! value.
//!
//! Every decision the pipeline used to hardwire — whether to run a
//! simplify rewrite family, whether to fuse at a particular candidate
//! edge, whether rule G5 claims a reduction, whether an input array is
//! transposed for coalescing, whether a kernel is 1D-tiled — is an
//! enumerable *choice point* recorded on a [`Schedule`]. The pipeline
//! consults a [`ScheduleCursor`] at each choice site; the cursor numbers
//! the sites of each [`ChoiceClass`] in the deterministic order the
//! passes encounter them, so a schedule can override any individual site
//! (`overrides`) on top of a per-class `default`.
//!
//! Two properties carry the autotuner:
//!
//! - **Determinism**: the pipeline visits choice sites in a fixed order
//!   given the answers to earlier queries, so `(program, schedule)`
//!   determines the compiled artifact bit-for-bit.
//! - **Collision-free labels**: [`Schedule::label`] is a canonical,
//!   length-prefixed (netstring-style) encoding — an *injective* map
//!   from schedules to strings, safe to use as a cache-key component.
//!   [`Schedule::parse_label`] is its strict inverse and rejects any
//!   non-canonical or trailing input.

use std::collections::BTreeMap;
use std::fmt;

/// A class of choice points, one per gated transformation. The pipeline
/// numbers sites within a class in encounter order; the numbering of
/// one class is independent of every other class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChoiceClass {
    /// Vertical (producer-consumer) fusion at a candidate edge.
    FuseVertical,
    /// Horizontal fusion of independent same-width maps.
    FuseHorizontal,
    /// StreamMap+Reduce to StreamRed fusion.
    FuseStream,
    /// Sequentialising a map–scan–reduce chain into a loop.
    FuseChain,
    /// Rule G5: a segmented-reduction kernel for a nested reduce.
    FlattenG5,
    /// Rule G7: loop interchange over an invariant-bound loop.
    FlattenInterchange,
    /// Transposing a kernel input array for coalesced access.
    CoalesceInputs,
    /// Allocating a kernel output transposed for coalesced access.
    CoalesceOutputs,
    /// 1D tiling of a kernel's inner loop.
    Tile,
}

impl ChoiceClass {
    /// All classes, in canonical (encoding) order.
    pub const ALL: [ChoiceClass; 9] = [
        ChoiceClass::FuseVertical,
        ChoiceClass::FuseHorizontal,
        ChoiceClass::FuseStream,
        ChoiceClass::FuseChain,
        ChoiceClass::FlattenG5,
        ChoiceClass::FlattenInterchange,
        ChoiceClass::CoalesceInputs,
        ChoiceClass::CoalesceOutputs,
        ChoiceClass::Tile,
    ];

    /// Stable name, used in JSON and human-readable reports.
    pub fn name(self) -> &'static str {
        match self {
            ChoiceClass::FuseVertical => "fuse_vertical",
            ChoiceClass::FuseHorizontal => "fuse_horizontal",
            ChoiceClass::FuseStream => "fuse_stream",
            ChoiceClass::FuseChain => "fuse_chain",
            ChoiceClass::FlattenG5 => "flatten_g5",
            ChoiceClass::FlattenInterchange => "flatten_interchange",
            ChoiceClass::CoalesceInputs => "coalesce_inputs",
            ChoiceClass::CoalesceOutputs => "coalesce_outputs",
            ChoiceClass::Tile => "tile",
        }
    }

    /// The class with the given stable name.
    pub fn from_name(name: &str) -> Option<ChoiceClass> {
        ChoiceClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Index into per-class arrays (canonical order).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for ChoiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-rewrite-family toggles for the simplifier. All `true` is the
/// classic full simplifier; the pass itself still iterates to a fixed
/// point over whichever families are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimplifyToggles {
    /// Copy propagation (`let y = x`).
    pub copy_prop: bool,
    /// Constant folding and algebraic identities.
    pub const_fold: bool,
    /// Common-subexpression elimination.
    pub cse: bool,
    /// Hoisting loop-invariant bindings.
    pub hoist: bool,
    /// Dead-code elimination.
    pub dead_code: bool,
}

impl Default for SimplifyToggles {
    fn default() -> Self {
        SimplifyToggles {
            copy_prop: true,
            const_fold: true,
            cse: true,
            hoist: true,
            dead_code: true,
        }
    }
}

/// The decisions of one choice class: a class-wide default plus
/// per-site overrides keyed by the site's encounter index.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct SiteDecisions {
    /// Answer for sites without an override.
    pub default: bool,
    /// Exceptions, keyed by encounter index within the class.
    pub overrides: BTreeMap<u32, bool>,
}

impl SiteDecisions {
    /// All-`default` decisions with no overrides.
    pub fn uniform(default: bool) -> SiteDecisions {
        SiteDecisions {
            default,
            overrides: BTreeMap::new(),
        }
    }

    /// The answer for site `n`.
    pub fn decide(&self, n: u32) -> bool {
        self.overrides.get(&n).copied().unwrap_or(self.default)
    }
}

/// A complete, serialisable description of every decision the pipeline
/// will take: coarse pass switches, simplify rewrite toggles, and
/// per-site decisions for each [`ChoiceClass`]. `Schedule::default()`
/// reproduces the classic hardwired pipeline exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schedule {
    /// Run the simplify pass (before fusion and again after flattening).
    pub simplify_pass: bool,
    /// Run the fusion pass.
    pub fusion_pass: bool,
    /// Run the memory planner.
    pub memplan: bool,
    /// Type-check after the frontend.
    pub check: bool,
    /// Rewrite families within the simplify pass.
    pub simplify: SimplifyToggles,
    /// Per-class site decisions, indexed by [`ChoiceClass::index`].
    pub sites: [SiteDecisions; 9],
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            simplify_pass: true,
            fusion_pass: true,
            memplan: true,
            check: true,
            simplify: SimplifyToggles::default(),
            sites: std::array::from_fn(|_| SiteDecisions::uniform(true)),
        }
    }
}

/// Errors from [`Schedule::parse_label`]: the byte offset where parsing
/// failed and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelError {
    /// Byte offset into the label.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule label, offset {}: {}",
            self.offset, self.message
        )
    }
}

/// The label's format-version prefix. Bump on any encoding change so
/// old labels are rejected rather than misread.
const LABEL_VERSION: &str = "sched1";

impl Schedule {
    /// The all-`on` schedule (same as `Schedule::default()`).
    pub fn full() -> Schedule {
        Schedule::default()
    }

    /// The decisions of one class.
    pub fn decisions(&self, class: ChoiceClass) -> &SiteDecisions {
        &self.sites[class.index()]
    }

    /// Mutable access to one class's decisions.
    pub fn decisions_mut(&mut self, class: ChoiceClass) -> &mut SiteDecisions {
        &mut self.sites[class.index()]
    }

    /// Sets a class-wide default, returning `self` for chaining.
    pub fn with_default(mut self, class: ChoiceClass, value: bool) -> Schedule {
        self.sites[class.index()].default = value;
        self
    }

    /// Overrides one site of one class, returning `self` for chaining.
    pub fn with_override(mut self, class: ChoiceClass, site: u32, value: bool) -> Schedule {
        self.sites[class.index()].overrides.insert(site, value);
        self
    }

    /// Whether this is the all-default schedule (the classic pipeline).
    pub fn is_default(&self) -> bool {
        *self == Schedule::default()
    }

    /// Samples a random schedule. Every sample is *valid by
    /// construction*: declined choice sites fall back to sequential code,
    /// and overrides at sites the pipeline never queries are inert — so
    /// any combination of answers compiles to a program with the same
    /// semantics. Coarse switches and class defaults are biased towards
    /// `on` (the interesting interactions need most passes running);
    /// `check` stays on so malformed programs are still rejected early.
    pub fn sample(rng: &mut crate::rng::Rng64) -> Schedule {
        let mut s = Schedule {
            simplify_pass: rng.chance(3, 4),
            fusion_pass: rng.chance(3, 4),
            memplan: rng.chance(3, 4),
            check: true,
            simplify: SimplifyToggles {
                copy_prop: rng.chance(3, 4),
                const_fold: rng.chance(3, 4),
                cse: rng.chance(3, 4),
                hoist: rng.chance(3, 4),
                dead_code: rng.chance(3, 4),
            },
            sites: std::array::from_fn(|_| SiteDecisions::uniform(true)),
        };
        for class in ChoiceClass::ALL {
            let d = s.decisions_mut(class);
            d.default = rng.chance(3, 4);
            for site in 0..4u32 {
                if rng.chance(1, 4) {
                    d.overrides.insert(site, rng.chance(1, 2));
                }
            }
        }
        s
    }

    /// A canonical, collision-free encoding of the schedule, suitable as
    /// a cache-key component. Every field is length-prefixed
    /// (netstring-style `len:payload,`), fields appear in a fixed order,
    /// and overrides are sorted by site index — so equal labels imply
    /// equal schedules and vice versa.
    ///
    /// Layout: `sched1,` then one field of nine bits (coarse switches +
    /// simplify toggles), then one field per choice class holding the
    /// class default and its overrides.
    pub fn label(&self) -> String {
        let mut out = String::new();
        out.push_str(LABEL_VERSION);
        out.push(',');
        let mut bits = String::with_capacity(9);
        for b in [
            self.simplify_pass,
            self.fusion_pass,
            self.memplan,
            self.check,
            self.simplify.copy_prop,
            self.simplify.const_fold,
            self.simplify.cse,
            self.simplify.hoist,
            self.simplify.dead_code,
        ] {
            bits.push(if b { '1' } else { '0' });
        }
        push_field(&mut out, &bits);
        for class in ChoiceClass::ALL {
            let d = self.decisions(class);
            let mut body = String::new();
            body.push(if d.default { '1' } else { '0' });
            for (&site, &value) in &d.overrides {
                body.push(' ');
                body.push_str(&site.to_string());
                body.push(if value { '+' } else { '-' });
            }
            push_field(&mut out, &body);
        }
        out
    }

    /// Strict inverse of [`Schedule::label`]. Rejects unknown versions,
    /// malformed netstrings, non-canonical numbers, unsorted or
    /// duplicate overrides, and trailing input.
    pub fn parse_label(label: &str) -> Result<Schedule, LabelError> {
        let err = |offset: usize, message: &str| LabelError {
            offset,
            message: message.to_string(),
        };
        let bytes = label.as_bytes();
        let head = LABEL_VERSION.len() + 1;
        if bytes.len() < head || &label[..LABEL_VERSION.len()] != LABEL_VERSION {
            return Err(err(0, "unknown label version"));
        }
        if bytes[LABEL_VERSION.len()] != b',' {
            return Err(err(LABEL_VERSION.len(), "expected ',' after version"));
        }
        let mut pos = head;
        let bits = take_field(label, &mut pos)?;
        if bits.len() != 9 || !bits.bytes().all(|b| b == b'0' || b == b'1') {
            return Err(err(pos, "switch field must be exactly 9 bits"));
        }
        let bit = |i: usize| bits.as_bytes()[i] == b'1';
        let mut sched = Schedule {
            simplify_pass: bit(0),
            fusion_pass: bit(1),
            memplan: bit(2),
            check: bit(3),
            simplify: SimplifyToggles {
                copy_prop: bit(4),
                const_fold: bit(5),
                cse: bit(6),
                hoist: bit(7),
                dead_code: bit(8),
            },
            sites: std::array::from_fn(|_| SiteDecisions::uniform(true)),
        };
        for class in ChoiceClass::ALL {
            let start = pos;
            let body = take_field(label, &mut pos)?;
            let mut chars = body.as_bytes();
            let default = match chars.first() {
                Some(b'1') => true,
                Some(b'0') => false,
                _ => return Err(err(start, "class field must start with a default bit")),
            };
            chars = &chars[1..];
            let mut overrides = BTreeMap::new();
            let mut last: Option<u32> = None;
            while !chars.is_empty() {
                if chars[0] != b' ' {
                    return Err(err(start, "expected ' ' before an override"));
                }
                chars = &chars[1..];
                let digits_len = chars.iter().take_while(|b| b.is_ascii_digit()).count();
                if digits_len == 0 {
                    return Err(err(start, "override needs a site index"));
                }
                let digits = std::str::from_utf8(&chars[..digits_len]).unwrap();
                if digits.len() > 1 && digits.starts_with('0') {
                    return Err(err(start, "non-canonical site index"));
                }
                let site: u32 = digits
                    .parse()
                    .map_err(|_| err(start, "site index out of range"))?;
                if last.is_some_and(|l| site <= l) {
                    return Err(err(start, "overrides must be sorted and unique"));
                }
                last = Some(site);
                chars = &chars[digits_len..];
                let value = match chars.first() {
                    Some(b'+') => true,
                    Some(b'-') => false,
                    _ => return Err(err(start, "override needs a '+' or '-' decision")),
                };
                chars = &chars[1..];
                overrides.insert(site, value);
            }
            sched.sites[class.index()] = SiteDecisions { default, overrides };
        }
        if pos != bytes.len() {
            return Err(err(pos, "trailing input after last field"));
        }
        Ok(sched)
    }

    /// A short human-readable summary: `default`, or the list of
    /// deviations from the default schedule.
    pub fn describe(&self) -> String {
        if self.is_default() {
            return "default".to_string();
        }
        let mut parts = Vec::new();
        let base = Schedule::default();
        for (name, have, want) in [
            ("simplify", self.simplify_pass, base.simplify_pass),
            ("fusion", self.fusion_pass, base.fusion_pass),
            ("memplan", self.memplan, base.memplan),
            ("check", self.check, base.check),
        ] {
            if have != want {
                parts.push(format!("{}{}", if have { "+" } else { "-" }, name));
            }
        }
        for (name, have) in [
            ("copy_prop", self.simplify.copy_prop),
            ("const_fold", self.simplify.const_fold),
            ("cse", self.simplify.cse),
            ("hoist", self.simplify.hoist),
            ("dead_code", self.simplify.dead_code),
        ] {
            if !have {
                parts.push(format!("-{name}"));
            }
        }
        for class in ChoiceClass::ALL {
            let d = self.decisions(class);
            if !d.default {
                parts.push(format!("-{}", class.name()));
            }
            for (&site, &value) in &d.overrides {
                parts.push(format!(
                    "{}{}@{site}",
                    if value { "+" } else { "-" },
                    class.name()
                ));
            }
        }
        parts.join(" ")
    }
}

/// Appends one netstring field: `len:payload,`.
fn push_field(out: &mut String, payload: &str) {
    out.push_str(&payload.len().to_string());
    out.push(':');
    out.push_str(payload);
    out.push(',');
}

/// Consumes one netstring field at `*pos`, advancing past it.
fn take_field<'a>(label: &'a str, pos: &mut usize) -> Result<&'a str, LabelError> {
    let err = |offset: usize, message: &str| LabelError {
        offset,
        message: message.to_string(),
    };
    let bytes = label.as_bytes();
    let start = *pos;
    let digits_len = bytes[start..]
        .iter()
        .take_while(|b| b.is_ascii_digit())
        .count();
    if digits_len == 0 {
        return Err(err(start, "expected a field length"));
    }
    let digits = &label[start..start + digits_len];
    if digits.len() > 1 && digits.starts_with('0') {
        return Err(err(start, "non-canonical field length"));
    }
    let len: usize = digits
        .parse()
        .map_err(|_| err(start, "field length out of range"))?;
    let mut p = start + digits_len;
    if bytes.get(p) != Some(&b':') {
        return Err(err(p, "expected ':' after field length"));
    }
    p += 1;
    if p + len > bytes.len() || !label.is_char_boundary(p + len) {
        return Err(err(p, "field length exceeds input"));
    }
    let payload = &label[p..p + len];
    p += len;
    if bytes.get(p) != Some(&b',') {
        return Err(err(p, "expected ',' after field payload"));
    }
    *pos = p + 1;
    Ok(payload)
}

/// The pipeline's view of a [`Schedule`]: answers choice-point queries
/// and numbers the sites of each class in encounter order. Also records
/// how many sites of each class the compilation actually visited, which
/// is what the autotuner mutates over.
#[derive(Debug, Clone)]
pub struct ScheduleCursor {
    schedule: Schedule,
    counts: [u32; 9],
}

impl ScheduleCursor {
    /// A cursor at the start of compilation.
    pub fn new(schedule: Schedule) -> ScheduleCursor {
        ScheduleCursor {
            schedule,
            counts: [0; 9],
        }
    }

    /// Answers the next choice point of `class` and advances its
    /// counter. Call exactly once per *existing* choice site, in the
    /// pass's deterministic visit order.
    pub fn decide(&mut self, class: ChoiceClass) -> bool {
        let i = class.index();
        let n = self.counts[i];
        self.counts[i] += 1;
        self.schedule.sites[i].decide(n)
    }

    /// The schedule this cursor answers from.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// How many sites of `class` have been visited so far.
    pub fn observed(&self, class: ChoiceClass) -> u32 {
        self.counts[class.index()]
    }

    /// Per-class visit counts, indexed by [`ChoiceClass::index`].
    pub fn observed_counts(&self) -> [u32; 9] {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_answers_true_everywhere() {
        let mut cur = ScheduleCursor::new(Schedule::default());
        for class in ChoiceClass::ALL {
            for _ in 0..4 {
                assert!(cur.decide(class));
            }
            assert_eq!(cur.observed(class), 4);
        }
    }

    #[test]
    fn overrides_hit_exact_sites_only() {
        let sched = Schedule::default()
            .with_override(ChoiceClass::Tile, 1, false)
            .with_default(ChoiceClass::FuseVertical, false)
            .with_override(ChoiceClass::FuseVertical, 2, true);
        let mut cur = ScheduleCursor::new(sched);
        assert!(cur.decide(ChoiceClass::Tile));
        assert!(!cur.decide(ChoiceClass::Tile));
        assert!(cur.decide(ChoiceClass::Tile));
        assert!(!cur.decide(ChoiceClass::FuseVertical));
        assert!(!cur.decide(ChoiceClass::FuseVertical));
        assert!(cur.decide(ChoiceClass::FuseVertical));
    }

    #[test]
    fn label_round_trips() {
        let mut sched = Schedule::default()
            .with_default(ChoiceClass::Tile, false)
            .with_override(ChoiceClass::CoalesceInputs, 0, false)
            .with_override(ChoiceClass::CoalesceInputs, 13, false)
            .with_override(ChoiceClass::FuseChain, 7, true);
        sched.simplify.cse = false;
        sched.memplan = false;
        let label = sched.label();
        assert_eq!(Schedule::parse_label(&label), Ok(sched));
        let dflt = Schedule::default();
        assert_eq!(Schedule::parse_label(&dflt.label()), Ok(dflt));
    }

    #[test]
    fn labels_are_injective_on_distinct_schedules() {
        // The historical failure mode of name-joining labels is that two
        // different configurations render the same string. Exercise a
        // family of near-collisions: override index 12 vs indices 1 and
        // 2, empty overrides vs default flips, adjacent classes.
        let a = Schedule::default().with_override(ChoiceClass::Tile, 12, false);
        let b = Schedule::default()
            .with_override(ChoiceClass::Tile, 1, false)
            .with_override(ChoiceClass::Tile, 2, false);
        let c = Schedule::default().with_default(ChoiceClass::Tile, false);
        let d = Schedule::default().with_override(ChoiceClass::CoalesceOutputs, 12, false);
        let labels = [a.label(), b.label(), c.label(), d.label()];
        for (i, x) in labels.iter().enumerate() {
            for (j, y) in labels.iter().enumerate() {
                assert_eq!(i == j, x == y, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn malformed_labels_are_rejected() {
        let good = Schedule::default().label();
        for bad in [
            "".to_string(),
            "sched0,9:111111111,".to_string(),
            good[..good.len() - 1].to_string(),     // truncated
            format!("{good}x"),                     // trailing input
            good.replacen("9:", "09:", 1),          // non-canonical length
            good.replacen("1:1,", "6:1 1+1-,", 1),  // missing separator
            good.replacen("1:1,", "7:1 2+ 1-,", 1), // unsorted overrides
            good.replacen("1:1,", "7:1 1+ 1-,", 1), // duplicate site
            good.replacen("1:1,", "5:1 01+,", 1),   // non-canonical index
            good.replacen("9:", "10:", 1),          // wrong bit count
        ] {
            assert!(
                Schedule::parse_label(&bad).is_err(),
                "accepted malformed label {bad:?}"
            );
        }
    }

    #[test]
    fn describe_summarises_deviations() {
        assert_eq!(Schedule::default().describe(), "default");
        let s = Schedule::default()
            .with_default(ChoiceClass::Tile, false)
            .with_override(ChoiceClass::FuseVertical, 3, false);
        assert_eq!(s.describe(), "-fuse_vertical@3 -tile");
    }
}

//! Source provenance: which source lines a piece of IR came from.
//!
//! A [`Prov`] is a small sorted set of 1-based source line numbers. Every
//! [`Stm`](crate::ir::Stm) carries one; transformation passes *merge* rather
//! than drop provenance when they combine statements (fusion attributes a
//! fused kernel to all contributing sites), so the profiler can bucket
//! simulator counters by source line all the way from the decoded tape back
//! to the program text.

use std::fmt;

/// A set of 1-based source line numbers, kept sorted and deduplicated.
///
/// The empty set means "no known origin" (compiler-synthesised scaffolding);
/// the provenance fill pass replaces such gaps by inheritance before codegen.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Prov {
    lines: Vec<u32>,
}

impl Prov {
    /// The empty provenance (no known source origin).
    pub fn none() -> Prov {
        Prov::default()
    }

    /// Provenance of a single source line.
    pub fn line(line: u32) -> Prov {
        Prov { lines: vec![line] }
    }

    /// Provenance from an explicit set of lines (sorted + deduplicated).
    pub fn from_lines(mut lines: Vec<u32>) -> Prov {
        lines.sort_unstable();
        lines.dedup();
        Prov { lines }
    }

    /// The union of two provenance sets.
    pub fn union(&self, other: &Prov) -> Prov {
        if self.lines.is_empty() {
            return other.clone();
        }
        if other.lines.is_empty() {
            return self.clone();
        }
        let mut lines = Vec::with_capacity(self.lines.len() + other.lines.len());
        lines.extend_from_slice(&self.lines);
        lines.extend_from_slice(&other.lines);
        Prov::from_lines(lines)
    }

    /// Unions `other` into `self` in place.
    pub fn merge(&mut self, other: &Prov) {
        if other.lines.is_empty() {
            return;
        }
        *self = self.union(other);
    }

    /// The sorted line numbers.
    pub fn lines(&self) -> &[u32] {
        &self.lines
    }

    /// Whether no origin is known.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The canonical textual key used by profiling reports: comma-separated
    /// sorted line numbers (`"4"` or `"4,7"`), or `"?"` when empty.
    pub fn key(&self) -> String {
        if self.lines.is_empty() {
            return "?".to_string();
        }
        let mut s = String::new();
        for (i, l) in self.lines.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&l.to_string());
        }
        s
    }
}

/// Fills empty provenance by inheritance: a statement with no recorded
/// origin inherits the nearest preceding statement's provenance in its
/// body, or the enclosing statement's provenance for nested bodies. After
/// this pass every statement of a source-derived program carries a
/// non-empty provenance (assuming at least one stamped statement exists),
/// which codegen relies on when stamping kernel opcodes.
pub fn fill_program(prog: &mut crate::ir::Program) {
    for f in &mut prog.functions {
        fill_body(&mut f.body, &Prov::none());
    }
}

fn fill_body(body: &mut crate::ir::Body, enclosing: &Prov) {
    // Forward: inherit from the nearest preceding stamped statement (or the
    // enclosing statement).
    let mut last = enclosing.clone();
    for stm in &mut body.stms {
        if stm.prov.is_empty() {
            stm.prov = last.clone();
        } else {
            last = stm.prov.clone();
        }
    }
    // Backward: leading scaffolding (before the first stamped statement)
    // inherits from the nearest following stamped statement.
    let mut next = Prov::none();
    for stm in body.stms.iter_mut().rev() {
        if stm.prov.is_empty() {
            stm.prov = next.clone();
        } else {
            next = stm.prov.clone();
        }
    }
    for stm in &mut body.stms {
        let here = stm.prov.clone();
        for b in stm.exp.inner_bodies_mut() {
            fill_body(b, &here);
        }
    }
}

impl fmt::Display for Prov {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_sorts_and_dedups() {
        let a = Prov::from_lines(vec![7, 4]);
        let b = Prov::from_lines(vec![4, 9]);
        assert_eq!(a.union(&b).lines(), &[4, 7, 9]);
        assert_eq!(a.union(&Prov::none()), a);
        assert_eq!(Prov::none().union(&b), b);
    }

    #[test]
    fn key_rendering() {
        assert_eq!(Prov::none().key(), "?");
        assert_eq!(Prov::line(4).key(), "4");
        assert_eq!(Prov::from_lines(vec![7, 4]).key(), "4,7");
        assert_eq!(Prov::line(3).to_string(), "3");
    }

    #[test]
    fn merge_in_place() {
        let mut p = Prov::line(2);
        p.merge(&Prov::line(5));
        p.merge(&Prov::none());
        assert_eq!(p.lines(), &[2, 5]);
    }
}

//! A small deterministic PRNG (xorshift64* core seeded through splitmix64)
//! shared by the benchmark datasets and the differential fuzzer. In-tree so
//! the workspace builds without network access to crates.io; equal seeds
//! give equal streams on every platform, which makes every fuzz failure
//! reproducible from its seed alone.

/// A deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seeds the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        // One splitmix64 round de-correlates small consecutive seeds.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Rng64 {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform f32 in `[lo, hi)`.
    pub fn gen_f32(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (self.next_f64() as f32) * (hi - lo)
    }

    /// A uniform i64 in `[lo, hi)`.
    pub fn gen_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform usize in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// A Bernoulli draw: true with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        debug_assert!(den > 0);
        self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::Rng64;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            let k = r.gen_i64(-5, 6);
            assert!((-5..6).contains(&k));
            let p = r.pick(3);
            assert!(p < 3);
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let a = Rng64::seed_from_u64(1).next_u64();
        let b = Rng64::seed_from_u64(2).next_u64();
        assert_ne!(a, b);
    }
}

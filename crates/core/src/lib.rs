//! Core intermediate representation for `futhark-rs`, a Rust reproduction of
//! the compiler described in *Futhark: Purely Functional GPU-Programming with
//! Nested Parallelism and In-Place Array Updates* (PLDI 2017).
//!
//! This crate defines the data types shared by every other crate in the
//! workspace:
//!
//! - [`Name`] and [`NameSource`]: interned-ish variable names with globally
//!   unique identifiers, so transformation passes can generate fresh names.
//! - [`types`]: the monomorphic, shape-annotated array type system of the
//!   paper's Figure 1, including uniqueness attributes (`*[n]i32`).
//! - [`ir`]: the A-normal-form core language — let bindings, loops, in-place
//!   updates, and the second-order array combinators (SOACs) `map`, `reduce`,
//!   `scan`, `stream_map`, `stream_red`, and `stream_seq`.
//! - [`value`]: runtime values (scalars and regular multi-dimensional
//!   arrays) used by the interpreter and the GPU simulator.
//! - [`builder`]: an ergonomic programmatic construction API for IR.
//! - [`pretty`]: a pretty-printer whose output is re-parseable by
//!   `futhark-frontend`.
//!
//! # Example
//!
//! ```
//! use futhark_core::{NameSource, builder::ProgramBuilder};
//!
//! let mut names = NameSource::new();
//! let prog = ProgramBuilder::new(&mut names).build();
//! assert!(prog.functions.is_empty());
//! ```

pub mod builder;
pub mod ir;
pub mod name;
pub mod pretty;
pub mod prov;
pub mod rng;
pub mod schedule;
pub mod traverse;
pub mod types;
pub mod value;

pub use ir::{
    BinOp, Body, CmpOp, Exp, FunDef, Lambda, LoopForm, Param, PatElem, Program, Scalar, Soac, Stm,
    SubExp, UnOp,
};
pub use name::{Name, NameSource};
pub use prov::Prov;
pub use rng::Rng64;
pub use schedule::{ChoiceClass, Schedule, ScheduleCursor, SimplifyToggles, SiteDecisions};
pub use types::{ArrayType, DeclType, ScalarType, Size, Type};
pub use value::{ArrayVal, Buffer, Value};

//! The core intermediate representation (Figure 1 of the paper), in
//! A-normal form: every intermediate value is let-bound, and expression
//! operands are [`SubExp`]s (constants or variables).
//!
//! A [`Stm`] binds a *pattern* of one or more names, since core-language
//! SOACs may produce several arrays at once (the compiler transforms
//! arrays-of-tuples to tuples-of-arrays at an early stage, per Section 2.2).

use crate::name::Name;
use crate::prov::Prov;
use crate::types::{DeclType, ScalarType, Size, Type};
use std::fmt;

/// A compile-time scalar constant.
#[derive(Debug, Clone, Copy)]
pub enum Scalar {
    /// A boolean constant.
    Bool(bool),
    /// A 32-bit integer constant.
    I32(i32),
    /// A 64-bit integer constant.
    I64(i64),
    /// A 32-bit float constant.
    F32(f32),
    /// A 64-bit float constant.
    F64(f64),
}

impl Scalar {
    /// The type of this constant.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Scalar::Bool(_) => ScalarType::Bool,
            Scalar::I32(_) => ScalarType::I32,
            Scalar::I64(_) => ScalarType::I64,
            Scalar::F32(_) => ScalarType::F32,
            Scalar::F64(_) => ScalarType::F64,
        }
    }

    /// The value as an `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::I32(k) => Some(*k as i64),
            Scalar::I64(k) => Some(*k),
            _ => None,
        }
    }

    /// The value as an `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::I32(k) => Some(*k as f64),
            Scalar::I64(k) => Some(*k as f64),
            Scalar::F32(x) => Some(*x as f64),
            Scalar::F64(x) => Some(*x),
            Scalar::Bool(_) => None,
        }
    }

    /// The value as a `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Scalar::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The zero of the given numeric type, or `false` for booleans.
    pub fn zero(t: ScalarType) -> Scalar {
        match t {
            ScalarType::Bool => Scalar::Bool(false),
            ScalarType::I32 => Scalar::I32(0),
            ScalarType::I64 => Scalar::I64(0),
            ScalarType::F32 => Scalar::F32(0.0),
            ScalarType::F64 => Scalar::F64(0.0),
        }
    }

    /// The one of the given numeric type, or `true` for booleans.
    pub fn one(t: ScalarType) -> Scalar {
        match t {
            ScalarType::Bool => Scalar::Bool(true),
            ScalarType::I32 => Scalar::I32(1),
            ScalarType::I64 => Scalar::I64(1),
            ScalarType::F32 => Scalar::F32(1.0),
            ScalarType::F64 => Scalar::F64(1.0),
        }
    }
}

impl PartialEq for Scalar {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Scalar::Bool(a), Scalar::Bool(b)) => a == b,
            (Scalar::I32(a), Scalar::I32(b)) => a == b,
            (Scalar::I64(a), Scalar::I64(b)) => a == b,
            // Bitwise comparison so that constant folding and CSE treat NaNs
            // and signed zeros consistently.
            (Scalar::F32(a), Scalar::F32(b)) => a.to_bits() == b.to_bits(),
            (Scalar::F64(a), Scalar::F64(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Scalar {}

impl std::hash::Hash for Scalar {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Scalar::Bool(b) => b.hash(state),
            Scalar::I32(k) => k.hash(state),
            Scalar::I64(k) => k.hash(state),
            Scalar::F32(x) => x.to_bits().hash(state),
            Scalar::F64(x) => x.to_bits().hash(state),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Bool(b) => write!(f, "{b}"),
            Scalar::I32(k) => write!(f, "{k}i32"),
            Scalar::I64(k) => write!(f, "{k}i64"),
            Scalar::F32(x) => write!(f, "{x:?}f32"),
            Scalar::F64(x) => write!(f, "{x:?}f64"),
        }
    }
}

/// An atomic operand: a constant or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SubExp {
    /// A scalar constant.
    Const(Scalar),
    /// A variable in scope.
    Var(Name),
}

impl SubExp {
    /// Shorthand for an `i64` constant (sizes, indices).
    pub fn i64(k: i64) -> SubExp {
        SubExp::Const(Scalar::I64(k))
    }

    /// The variable, if this is one.
    pub fn as_var(&self) -> Option<&Name> {
        match self {
            SubExp::Var(v) => Some(v),
            SubExp::Const(_) => None,
        }
    }

    /// The constant, if this is one.
    pub fn as_const(&self) -> Option<&Scalar> {
        match self {
            SubExp::Const(k) => Some(k),
            SubExp::Var(_) => None,
        }
    }
}

impl From<Name> for SubExp {
    fn from(v: Name) -> Self {
        SubExp::Var(v)
    }
}

impl From<Scalar> for SubExp {
    fn from(k: Scalar) -> Self {
        SubExp::Const(k)
    }
}

impl From<&Size> for SubExp {
    fn from(s: &Size) -> Self {
        match s {
            Size::Const(k) => SubExp::i64(*k),
            Size::Var(v) => SubExp::Var(v.clone()),
        }
    }
}

impl fmt::Display for SubExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubExp::Const(k) => write!(f, "{k}"),
            SubExp::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Binary operators. All are type-homogeneous: both operands and the result
/// share one scalar type, checked by `futhark-check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition. Associative and commutative; usable as a reduction operator.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication. Associative and commutative.
    Mul,
    /// Division (float division or integer quotient).
    Div,
    /// Remainder.
    Rem,
    /// Minimum. Associative and commutative.
    Min,
    /// Maximum. Associative and commutative.
    Max,
    /// `x` raised to the power `y` (floats only).
    Pow,
    /// Logical conjunction (bools only).
    And,
    /// Logical disjunction (bools only).
    Or,
    /// Two-argument arctangent (floats only).
    Atan2,
}

impl BinOp {
    /// Whether the operator is associative (and thus usable in `reduce`,
    /// `scan`, and `stream_red`).
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or
        )
    }

    /// Whether the operator is commutative.
    pub fn is_commutative(self) -> bool {
        self.is_associative()
    }

    /// The textual operator name used by the pretty-printer and parser.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Pow => "pow",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::Atan2 => "atan2",
        }
    }
}

/// Comparison operators; result type is `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The textual operator used by the pretty-printer and parser.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation (bools only).
    Not,
    /// Absolute value.
    Abs,
    /// Sign (-1, 0, or 1).
    Signum,
    /// Square root (floats only).
    Sqrt,
    /// Natural exponential (floats only).
    Exp,
    /// Natural logarithm (floats only).
    Log,
    /// Sine (floats only).
    Sin,
    /// Cosine (floats only).
    Cos,
    /// Hyperbolic tangent (floats only).
    Tanh,
}

impl UnOp {
    /// The textual operator name used by the pretty-printer and parser.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "!",
            UnOp::Abs => "abs",
            UnOp::Signum => "signum",
            UnOp::Sqrt => "sqrt",
            UnOp::Exp => "exp",
            UnOp::Log => "log",
            UnOp::Sin => "sin",
            UnOp::Cos => "cos",
            UnOp::Tanh => "tanh",
        }
    }
}

/// One element of a statement's pattern: a bound name with its type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatElem {
    /// The bound name.
    pub name: Name,
    /// Its (shape-annotated) type.
    pub ty: Type,
}

impl PatElem {
    /// Convenience constructor.
    pub fn new(name: Name, ty: Type) -> Self {
        PatElem { name, ty }
    }
}

/// A function or lambda parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The parameter name.
    pub name: Name,
    /// Its type.
    pub ty: Type,
    /// Uniqueness attribute: whether the function takes ownership (`*`),
    /// allowing the body to consume this parameter (Section 3.1).
    pub unique: bool,
}

impl Param {
    /// A non-unique parameter.
    pub fn new(name: Name, ty: Type) -> Self {
        Param {
            name,
            ty,
            unique: false,
        }
    }

    /// A unique (consumable) parameter.
    pub fn unique(name: Name, ty: Type) -> Self {
        Param {
            name,
            ty,
            unique: true,
        }
    }
}

/// An anonymous function used as a SOAC operator.
#[derive(Debug, Clone, PartialEq)]
pub struct Lambda {
    /// Parameters bound by the lambda.
    pub params: Vec<Param>,
    /// The body.
    pub body: Body,
    /// Result types, one per body result.
    pub ret: Vec<Type>,
}

/// The sequential loop form (Figure 1); semantically a tail-recursive
/// function (Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub enum LoopForm {
    /// `loop (pat = init) for i < bound do body`.
    For {
        /// Loop counter, bound in the body, of type `i64`.
        var: Name,
        /// Iteration bound.
        bound: SubExp,
    },
    /// `loop (pat = init) while cond do body`; `cond` is evaluated with the
    /// merge parameters in scope before each iteration.
    While(Body),
}

/// Second-order array combinators (Sections 2.1 and 4, Figure 8).
///
/// Each SOAC records the outer `width` of its inputs so transformation
/// passes need not look it up.
#[derive(Debug, Clone, PartialEq)]
pub enum Soac {
    /// `map f xs₁ … xsₖ`: apply `lam` elementwise across `arrs`.
    Map {
        /// Outer size of all inputs.
        width: SubExp,
        /// The mapped function; one parameter per input array.
        lam: Lambda,
        /// Input arrays, all of outer size `width`.
        arrs: Vec<Name>,
    },
    /// `reduce ⊕ 0⊕ xs`: fold with an associative operator.
    Reduce {
        /// Outer size of all inputs.
        width: SubExp,
        /// The reduction operator, of type `(a…, a…) -> a…`.
        lam: Lambda,
        /// Neutral elements, one per result.
        neutral: Vec<SubExp>,
        /// Input arrays.
        arrs: Vec<Name>,
        /// Whether the user asserts commutativity in addition to
        /// associativity (footnote 4 in the paper).
        comm: bool,
    },
    /// `scan ⊕ 0⊕ xs`: all prefix sums.
    Scan {
        /// Outer size of all inputs.
        width: SubExp,
        /// The (associative) operator.
        lam: Lambda,
        /// Neutral elements.
        neutral: Vec<SubExp>,
        /// Input arrays.
        arrs: Vec<Name>,
    },
    /// The fused `map ∘ reduce` composition the fusion engine produces
    /// (Section 4: “the technique centers on the redomap SOAC”).
    ///
    /// Semantics: `reduce red_lam neutral (map map_lam arrs)`, where
    /// `map_lam` may additionally produce mapped-out arrays beyond the
    /// reduced values.
    Redomap {
        /// Outer size of all inputs.
        width: SubExp,
        /// The reduction operator over the first `neutral.len()` results of
        /// `map_lam`.
        red_lam: Lambda,
        /// The mapped function.
        map_lam: Lambda,
        /// Neutral elements for the reduced results.
        neutral: Vec<SubExp>,
        /// Input arrays.
        arrs: Vec<Name>,
        /// Commutativity assertion for `red_lam`.
        comm: bool,
    },
    /// `stream_map f xss`: partition inputs into chunks, apply `lam` to each
    /// chunk, concatenate the per-chunk array results (Figure 8).
    ///
    /// `lam`'s parameters are `(chunk_size: i64, chunk₁, …, chunkₖ)` where
    /// each `chunkᵢ` has outer size `chunk_size`.
    StreamMap {
        /// Outer size of all inputs.
        width: SubExp,
        /// Per-chunk function.
        lam: Lambda,
        /// Input arrays.
        arrs: Vec<Name>,
    },
    /// `stream_red ⊕ f acc xss`: like `stream_map` but each chunk also
    /// produces accumulator values, combined across chunks with the
    /// associative `red_lam` (Figure 8).
    ///
    /// `fold_lam`'s parameters are `(chunk_size, acc₁…accₘ, chunk₁…chunkₖ)`
    /// and its first `accs.len()` results are the new accumulator values.
    StreamRed {
        /// Outer size of all inputs.
        width: SubExp,
        /// The cross-chunk (associative) reduction operator.
        red_lam: Lambda,
        /// The per-chunk fold function.
        fold_lam: Lambda,
        /// Initial accumulator values (also the neutral elements).
        accs: Vec<SubExp>,
        /// Input arrays.
        arrs: Vec<Name>,
    },
    /// `stream_seq f acc xss`: process chunks sequentially, threading the
    /// accumulator from chunk `i` to chunk `i+1` (Figure 8).
    StreamSeq {
        /// Outer size of all inputs.
        width: SubExp,
        /// The per-chunk function; parameters as in [`Soac::StreamRed`].
        lam: Lambda,
        /// Initial accumulator values.
        accs: Vec<SubExp>,
        /// Input arrays.
        arrs: Vec<Name>,
    },
    /// `scatter dest is vs`: bulk in-place update writing `vs[i]` at
    /// position `is[i]` of `dest`, consuming `dest`. Out-of-bounds indices
    /// are ignored. (Mentioned in footnote 4 as supported; included as the
    /// extension the evaluation's Pathfinder/HotSpot ports use.)
    Scatter {
        /// Number of index/value pairs.
        width: SubExp,
        /// Destination array (consumed).
        dest: Name,
        /// Indices (`i64`), outer size `width`.
        indices: Name,
        /// Values, outer size `width`.
        values: Name,
    },
}

impl Soac {
    /// The outer width of the SOAC's inputs.
    pub fn width(&self) -> &SubExp {
        match self {
            Soac::Map { width, .. }
            | Soac::Reduce { width, .. }
            | Soac::Scan { width, .. }
            | Soac::Redomap { width, .. }
            | Soac::StreamMap { width, .. }
            | Soac::StreamRed { width, .. }
            | Soac::StreamSeq { width, .. }
            | Soac::Scatter { width, .. } => width,
        }
    }

    /// The input arrays.
    pub fn input_arrays(&self) -> Vec<&Name> {
        match self {
            Soac::Map { arrs, .. }
            | Soac::Reduce { arrs, .. }
            | Soac::Scan { arrs, .. }
            | Soac::Redomap { arrs, .. }
            | Soac::StreamMap { arrs, .. }
            | Soac::StreamRed { arrs, .. }
            | Soac::StreamSeq { arrs, .. } => arrs.iter().collect(),
            Soac::Scatter {
                dest,
                indices,
                values,
                ..
            } => vec![dest, indices, values],
        }
    }

    /// A short human-readable tag for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Soac::Map { .. } => "map",
            Soac::Reduce { .. } => "reduce",
            Soac::Scan { .. } => "scan",
            Soac::Redomap { .. } => "redomap",
            Soac::StreamMap { .. } => "stream_map",
            Soac::StreamRed { .. } => "stream_red",
            Soac::StreamSeq { .. } => "stream_seq",
            Soac::Scatter { .. } => "scatter",
        }
    }
}

/// An expression (the right-hand side of a let binding, Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub enum Exp {
    /// A bare operand.
    SubExp(SubExp),
    /// A unary operation.
    UnOp(UnOp, SubExp),
    /// A binary operation.
    BinOp(BinOp, SubExp, SubExp),
    /// A comparison.
    Cmp(CmpOp, SubExp, SubExp),
    /// A scalar conversion (cast) to the given type.
    Convert(ScalarType, SubExp),
    /// `if c then e₁ else e₂`; both branches produce `ret`-typed results.
    If {
        /// Condition.
        cond: SubExp,
        /// Then-branch.
        then_body: Body,
        /// Else-branch.
        else_body: Body,
        /// Result types of both branches.
        ret: Vec<Type>,
    },
    /// A call of a named (top-level) function.
    Apply {
        /// The callee's name as declared in the program.
        func: String,
        /// Arguments.
        args: Vec<SubExp>,
    },
    /// `a[i₁, …, iₖ]`: indexing; fewer indices than the rank yields a slice.
    Index {
        /// The indexed array.
        array: Name,
        /// The indices (`i64`).
        indices: Vec<SubExp>,
    },
    /// `a with [i₁, …, iₖ] <- v`: in-place update, consuming `array`
    /// (Section 3).
    Update {
        /// The updated (consumed) array.
        array: Name,
        /// Element position.
        indices: Vec<SubExp>,
        /// New value (a scalar, or an array for bulk row updates).
        value: SubExp,
    },
    /// `iota n`: `[0, 1, …, n-1]` of type `[n]i64`.
    Iota(SubExp),
    /// `replicate n v`: `[v, …, v]` of outer size `n`.
    Replicate(SubExp, SubExp),
    /// `rearrange (k₀, …) a`: reorder dimensions by a static permutation.
    /// `transpose` is `rearrange (1,0,…)` (Section 5.1).
    Rearrange {
        /// The permutation; `perm.len()` equals the array rank.
        perm: Vec<usize>,
        /// The rearranged array.
        array: Name,
    },
    /// `reshape (d₁, …) a`: view `a` with a different (same-element-count)
    /// shape; used by flattening's curry/uncurry isomorphism (Section 2.1).
    Reshape {
        /// The new shape.
        shape: Vec<SubExp>,
        /// The reshaped array.
        array: Name,
    },
    /// `concat a₁ … aₖ`: concatenation along the outer dimension.
    Concat {
        /// The concatenated arrays.
        arrays: Vec<Name>,
    },
    /// An explicit deep copy, yielding a fresh (alias-free, hence uniquely
    /// owned) array.
    Copy(Name),
    /// A sequential loop (Figure 1); see [`LoopForm`].
    Loop {
        /// Merge parameters with their initial values.
        params: Vec<(Param, SubExp)>,
        /// For- or while-form.
        form: LoopForm,
        /// The body; its results become the next iteration's merge values.
        body: Body,
    },
    /// A second-order array combinator.
    Soac(Soac),
}

impl Exp {
    /// The nested bodies of this expression (branches, loop and lambda
    /// bodies), for generic traversal.
    pub fn inner_bodies(&self) -> Vec<&Body> {
        let mut out = Vec::new();
        match self {
            Exp::If {
                then_body,
                else_body,
                ..
            } => {
                out.push(then_body);
                out.push(else_body);
            }
            Exp::Loop { form, body, .. } => {
                if let LoopForm::While(cond) = form {
                    out.push(cond);
                }
                out.push(body);
            }
            Exp::Soac(soac) => match soac {
                Soac::Map { lam, .. }
                | Soac::Scan { lam, .. }
                | Soac::Reduce { lam, .. }
                | Soac::StreamMap { lam, .. }
                | Soac::StreamSeq { lam, .. } => out.push(&lam.body),
                Soac::Redomap {
                    red_lam, map_lam, ..
                } => {
                    out.push(&red_lam.body);
                    out.push(&map_lam.body);
                }
                Soac::StreamRed {
                    red_lam, fold_lam, ..
                } => {
                    out.push(&red_lam.body);
                    out.push(&fold_lam.body);
                }
                Soac::Scatter { .. } => {}
            },
            _ => {}
        }
        out
    }

    /// Mutable variant of [`Exp::inner_bodies`].
    pub fn inner_bodies_mut(&mut self) -> Vec<&mut Body> {
        let mut out = Vec::new();
        match self {
            Exp::If {
                then_body,
                else_body,
                ..
            } => {
                out.push(then_body);
                out.push(else_body);
            }
            Exp::Loop { form, body, .. } => {
                if let LoopForm::While(cond) = form {
                    out.push(cond);
                }
                out.push(body);
            }
            Exp::Soac(soac) => match soac {
                Soac::Map { lam, .. }
                | Soac::Scan { lam, .. }
                | Soac::Reduce { lam, .. }
                | Soac::StreamMap { lam, .. }
                | Soac::StreamSeq { lam, .. } => out.push(&mut lam.body),
                Soac::Redomap {
                    red_lam, map_lam, ..
                } => {
                    out.push(&mut red_lam.body);
                    out.push(&mut map_lam.body);
                }
                Soac::StreamRed {
                    red_lam, fold_lam, ..
                } => {
                    out.push(&mut red_lam.body);
                    out.push(&mut fold_lam.body);
                }
                Soac::Scatter { .. } => {}
            },
            _ => {}
        }
        out
    }

    /// Whether this expression is cheap and pure enough to duplicate or
    /// hoist freely (no arrays constructed, no control flow).
    pub fn is_scalar_cheap(&self) -> bool {
        matches!(
            self,
            Exp::SubExp(_)
                | Exp::UnOp(..)
                | Exp::BinOp(..)
                | Exp::Cmp(..)
                | Exp::Convert(..)
                | Exp::Index { .. }
        )
    }
}

/// One let binding: `let (p₁, …, pₙ) = e`.
#[derive(Debug, Clone, PartialEq)]
pub struct Stm {
    /// The bound pattern.
    pub pat: Vec<PatElem>,
    /// The right-hand side.
    pub exp: Exp,
    /// Source provenance: which source lines this binding descends from.
    /// Empty for compiler-synthesised scaffolding until the fill pass runs.
    pub prov: Prov,
}

impl Stm {
    /// Convenience constructor (no provenance; see [`Stm::with_prov`]).
    pub fn new(pat: Vec<PatElem>, exp: Exp) -> Self {
        Stm {
            pat,
            exp,
            prov: Prov::none(),
        }
    }

    /// A single-binding statement.
    pub fn single(name: Name, ty: Type, exp: Exp) -> Self {
        Stm {
            pat: vec![PatElem::new(name, ty)],
            exp,
            prov: Prov::none(),
        }
    }

    /// Attaches source provenance (builder style).
    pub fn with_prov(mut self, prov: Prov) -> Self {
        self.prov = prov;
        self
    }
}

/// A sequence of bindings with a (possibly multi-valued) result.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Body {
    /// The bindings, in order.
    pub stms: Vec<Stm>,
    /// The result operands.
    pub result: Vec<SubExp>,
}

impl Body {
    /// Convenience constructor.
    pub fn new(stms: Vec<Stm>, result: Vec<SubExp>) -> Self {
        Body { stms, result }
    }
}

/// A top-level function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// The function's name.
    pub name: String,
    /// Parameters, each possibly with a uniqueness attribute.
    pub params: Vec<Param>,
    /// Return types, each possibly with a uniqueness attribute.
    pub ret: Vec<DeclType>,
    /// The body.
    pub body: Body,
}

/// A whole program: a set of functions, one of which is conventionally
/// called `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The functions, in declaration order.
    pub functions: Vec<FunDef>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&FunDef> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a function mutably by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut FunDef> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// The entry point (the function named `main`).
    pub fn main(&self) -> Option<&FunDef> {
        self.function("main")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::NameSource;

    #[test]
    fn scalar_constants_compare_bitwise() {
        assert_eq!(Scalar::F32(f32::NAN), Scalar::F32(f32::NAN));
        assert_ne!(Scalar::F32(0.0), Scalar::F32(-0.0));
        assert_eq!(Scalar::I64(3).as_i64(), Some(3));
        assert_eq!(Scalar::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn zero_and_one_match_types() {
        for t in [
            ScalarType::I32,
            ScalarType::I64,
            ScalarType::F32,
            ScalarType::F64,
        ] {
            assert_eq!(Scalar::zero(t).scalar_type(), t);
            assert_eq!(Scalar::one(t).scalar_type(), t);
        }
    }

    #[test]
    fn associative_ops() {
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::Min.is_associative());
        assert!(!BinOp::Sub.is_associative());
        assert!(!BinOp::Div.is_associative());
    }

    #[test]
    fn inner_bodies_of_if_and_loop() {
        let mut ns = NameSource::new();
        let body = Body::new(vec![], vec![SubExp::i64(0)]);
        let e = Exp::If {
            cond: SubExp::Const(Scalar::Bool(true)),
            then_body: body.clone(),
            else_body: body.clone(),
            ret: vec![Type::Scalar(ScalarType::I64)],
        };
        assert_eq!(e.inner_bodies().len(), 2);

        let i = ns.fresh("i");
        let l = Exp::Loop {
            params: vec![],
            form: LoopForm::For {
                var: i,
                bound: SubExp::i64(10),
            },
            body,
        };
        assert_eq!(l.inner_bodies().len(), 1);
    }

    #[test]
    fn soac_accessors() {
        let mut ns = NameSource::new();
        let xs = ns.fresh("xs");
        let p = ns.fresh("x");
        let lam = Lambda {
            params: vec![Param::new(p.clone(), Type::Scalar(ScalarType::I64))],
            body: Body::new(vec![], vec![SubExp::Var(p)]),
            ret: vec![Type::Scalar(ScalarType::I64)],
        };
        let soac = Soac::Map {
            width: SubExp::i64(4),
            lam,
            arrs: vec![xs.clone()],
        };
        assert_eq!(soac.width(), &SubExp::i64(4));
        assert_eq!(soac.input_arrays(), vec![&xs]);
        assert_eq!(soac.kind_name(), "map");
    }

    #[test]
    fn program_function_lookup() {
        let prog = Program {
            functions: vec![FunDef {
                name: "main".into(),
                params: vec![],
                ret: vec![],
                body: Body::default(),
            }],
        };
        assert!(prog.main().is_some());
        assert!(prog.function("nope").is_none());
    }
}

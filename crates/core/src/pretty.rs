//! A pretty-printer for the core IR.
//!
//! The output is valid input for the `futhark-frontend` parser, with one
//! deliberate divergence from the paper's Figure 1: SOACs print their outer
//! width explicitly (`map n (\x -> …) xs`), since the IR records it.

use crate::ir::{Body, Exp, FunDef, Lambda, LoopForm, Program, Soac, Stm, SubExp};
use std::fmt::{self, Write};

/// Pretty-prints a whole program.
pub fn program_to_string(prog: &Program) -> String {
    let mut out = String::new();
    for (i, f) in prog.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        fundef(&mut out, f).expect("infallible write");
    }
    out
}

/// Pretty-prints a single function.
pub fn fundef_to_string(f: &FunDef) -> String {
    let mut out = String::new();
    fundef(&mut out, f).expect("infallible write");
    out
}

/// Pretty-prints a body at the given indentation.
pub fn body_to_string(b: &Body) -> String {
    let mut out = String::new();
    body(&mut out, b, 1).expect("infallible write");
    out
}

fn indent(out: &mut String, level: usize) -> fmt::Result {
    for _ in 0..level {
        out.push_str("  ");
    }
    Ok(())
}

fn fundef(out: &mut String, f: &FunDef) -> fmt::Result {
    write!(out, "fun {}", f.name)?;
    for p in &f.params {
        let star = if p.unique { "*" } else { "" };
        write!(out, " ({}: {}{})", p.name, star, p.ty)?;
    }
    out.push_str(": ");
    if f.ret.len() == 1 {
        write!(out, "{}", f.ret[0])?;
    } else {
        out.push('(');
        for (i, t) in f.ret.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{t}")?;
        }
        out.push(')');
    }
    out.push_str(" =\n");
    body(out, &f.body, 1)?;
    out.push('\n');
    Ok(())
}

fn body(out: &mut String, b: &Body, level: usize) -> fmt::Result {
    for stm_ in &b.stms {
        indent(out, level)?;
        stm(out, stm_, level)?;
        out.push('\n');
    }
    indent(out, level)?;
    out.push_str("in ");
    result(out, &b.result)?;
    Ok(())
}

fn result(out: &mut String, res: &[SubExp]) -> fmt::Result {
    if res.len() == 1 {
        write!(out, "{}", res[0])
    } else {
        out.push('(');
        for (i, se) in res.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{se}")?;
        }
        out.push(')');
        Ok(())
    }
}

fn stm(out: &mut String, s: &Stm, level: usize) -> fmt::Result {
    out.push_str("let ");
    if s.pat.len() == 1 {
        write!(out, "{}: {}", s.pat[0].name, s.pat[0].ty)?;
    } else {
        out.push('(');
        for (i, pe) in s.pat.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{}: {}", pe.name, pe.ty)?;
        }
        out.push(')');
    }
    out.push_str(" = ");
    exp(out, &s.exp, level)
}

fn paren_body(out: &mut String, b: &Body, level: usize) -> fmt::Result {
    if b.stms.is_empty() {
        out.push('(');
        result(out, &b.result)?;
        out.push(')');
        Ok(())
    } else {
        out.push_str("(\n");
        body(out, b, level + 1)?;
        out.push(')');
        Ok(())
    }
}

fn lambda(out: &mut String, l: &Lambda, level: usize) -> fmt::Result {
    out.push('\\');
    for p in &l.params {
        write!(out, "({}: {})", p.name, p.ty)?;
    }
    out.push_str(": ");
    if l.ret.len() == 1 {
        write!(out, "{}", l.ret[0])?;
    } else {
        out.push('(');
        for (i, t) in l.ret.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{t}")?;
        }
        out.push(')');
    }
    out.push_str(" -> ");
    if l.body.stms.is_empty() {
        result(out, &l.body.result)
    } else {
        out.push('\n');
        body(out, &l.body, level + 1)
    }
}

fn subexps(out: &mut String, args: &[SubExp]) -> fmt::Result {
    out.push('(');
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{a}")?;
    }
    out.push(')');
    Ok(())
}

fn exp(out: &mut String, e: &Exp, level: usize) -> fmt::Result {
    match e {
        Exp::SubExp(se) => write!(out, "{se}"),
        Exp::UnOp(op, a) => write!(out, "{} {a}", op.symbol()),
        Exp::BinOp(op, a, b) => {
            let sym = op.symbol();
            if sym.chars().next().map(char::is_alphabetic).unwrap_or(false) {
                write!(out, "{sym} {a} {b}")
            } else {
                write!(out, "{a} {sym} {b}")
            }
        }
        Exp::Cmp(op, a, b) => write!(out, "{a} {} {b}", op.symbol()),
        Exp::Convert(t, a) => write!(out, "convert {t} {a}"),
        Exp::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            write!(out, "if {cond} then ")?;
            paren_body(out, then_body, level)?;
            out.push_str(" else ");
            paren_body(out, else_body, level)
        }
        Exp::Apply { func, args } => {
            write!(out, "{func}")?;
            subexps(out, args)
        }
        Exp::Index { array, indices } => {
            write!(out, "{array}[")?;
            for (i, ix) in indices.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write!(out, "{ix}")?;
            }
            out.push(']');
            Ok(())
        }
        Exp::Update {
            array,
            indices,
            value,
        } => {
            write!(out, "{array} with [")?;
            for (i, ix) in indices.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write!(out, "{ix}")?;
            }
            write!(out, "] <- {value}")
        }
        Exp::Iota(n) => write!(out, "iota {n}"),
        Exp::Replicate(n, v) => write!(out, "replicate {n} {v}"),
        Exp::Rearrange { perm, array } => {
            out.push_str("rearrange (");
            for (i, p) in perm.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write!(out, "{p}")?;
            }
            write!(out, ") {array}")
        }
        Exp::Reshape { shape, array } => {
            out.push_str("reshape (");
            for (i, s) in shape.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write!(out, "{s}")?;
            }
            write!(out, ") {array}")
        }
        Exp::Concat { arrays } => {
            out.push_str("concat");
            for a in arrays {
                write!(out, " {a}")?;
            }
            Ok(())
        }
        Exp::Copy(a) => write!(out, "copy {a}"),
        Exp::Loop {
            params,
            form,
            body: b,
        } => {
            out.push_str("loop (");
            for (i, (p, init)) in params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let star = if p.unique { "*" } else { "" };
                write!(out, "{}: {}{} = {}", p.name, star, p.ty, init)?;
            }
            out.push(')');
            match form {
                LoopForm::For { var, bound } => {
                    write!(out, " for {var} < {bound} do ")?;
                }
                LoopForm::While(cond) => {
                    out.push_str(" while ");
                    paren_body(out, cond, level)?;
                    out.push_str(" do ");
                }
            }
            paren_body(out, b, level)
        }
        Exp::Soac(soac) => match soac {
            Soac::Map { width, lam, arrs } => {
                write!(out, "map {width} (")?;
                lambda(out, lam, level)?;
                out.push(')');
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                comm,
            } => {
                let kw = if *comm { "reduce_comm" } else { "reduce" };
                write!(out, "{kw} {width} (")?;
                lambda(out, lam, level)?;
                out.push_str(") ");
                subexps(out, neutral)?;
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::Scan {
                width,
                lam,
                neutral,
                arrs,
            } => {
                write!(out, "scan {width} (")?;
                lambda(out, lam, level)?;
                out.push_str(") ");
                subexps(out, neutral)?;
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                comm,
            } => {
                let kw = if *comm { "redomap_comm" } else { "redomap" };
                write!(out, "{kw} {width} (")?;
                lambda(out, red_lam, level)?;
                out.push_str(") (");
                lambda(out, map_lam, level)?;
                out.push_str(") ");
                subexps(out, neutral)?;
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::StreamMap { width, lam, arrs } => {
                write!(out, "stream_map {width} (")?;
                lambda(out, lam, level)?;
                out.push(')');
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::StreamRed {
                width,
                red_lam,
                fold_lam,
                accs,
                arrs,
            } => {
                write!(out, "stream_red {width} (")?;
                lambda(out, red_lam, level)?;
                out.push_str(") (");
                lambda(out, fold_lam, level)?;
                out.push_str(") ");
                subexps(out, accs)?;
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::StreamSeq {
                width,
                lam,
                accs,
                arrs,
            } => {
                write!(out, "stream_seq {width} (")?;
                lambda(out, lam, level)?;
                out.push_str(") ");
                subexps(out, accs)?;
                for a in arrs {
                    write!(out, " {a}")?;
                }
                Ok(())
            }
            Soac::Scatter {
                width,
                dest,
                indices,
                values,
            } => {
                write!(out, "scatter {width} {dest} {indices} {values}")
            }
        },
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&program_to_string(self))
    }
}

impl fmt::Display for FunDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&fundef_to_string(self))
    }
}

impl fmt::Display for Body {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&body_to_string(self))
    }
}

impl fmt::Display for Exp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        exp(&mut s, self, 0).expect("infallible write");
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, Param, PatElem};
    use crate::name::NameSource;
    use crate::types::{ScalarType, Size, Type};

    #[test]
    fn prints_a_map_function() {
        let mut ns = NameSource::new();
        let n = ns.fresh("n");
        let xs = ns.fresh("xs");
        let x = ns.fresh("x");
        let y = ns.fresh("y");
        let ys = ns.fresh("ys");
        let arr_t = Type::array_of(ScalarType::F32, vec![Size::Var(n.clone())]);
        let f = FunDef {
            name: "main".into(),
            params: vec![
                Param::new(n.clone(), Type::Scalar(ScalarType::I64)),
                Param::new(xs.clone(), arr_t.clone()),
            ],
            ret: vec![crate::types::DeclType::unique(arr_t.clone())],
            body: Body::new(
                vec![Stm {
                    pat: vec![PatElem::new(ys.clone(), arr_t)],
                    prov: crate::prov::Prov::none(),
                    exp: Exp::Soac(Soac::Map {
                        width: SubExp::Var(n.clone()),
                        lam: Lambda {
                            params: vec![Param::new(x.clone(), Type::Scalar(ScalarType::F32))],
                            body: Body::new(
                                vec![Stm::single(
                                    y.clone(),
                                    Type::Scalar(ScalarType::F32),
                                    Exp::BinOp(
                                        BinOp::Add,
                                        SubExp::Var(x.clone()),
                                        SubExp::Const(crate::ir::Scalar::F32(1.0)),
                                    ),
                                )],
                                vec![SubExp::Var(y.clone())],
                            ),
                            ret: vec![Type::Scalar(ScalarType::F32)],
                        },
                        arrs: vec![xs.clone()],
                    }),
                }],
                vec![SubExp::Var(ys.clone())],
            ),
        };
        let s = fundef_to_string(&f);
        assert!(s.contains("fun main"), "{s}");
        assert!(s.contains("map n_0"), "{s}");
        assert!(s.contains("*[n_0]f32"), "{s}");
        assert!(s.contains("x_2 + 1.0f32"), "{s}");
    }

    #[test]
    fn prints_update_and_index() {
        let mut ns = NameSource::new();
        let a = ns.fresh("a");
        let e = Exp::Update {
            array: a.clone(),
            indices: vec![SubExp::i64(0)],
            value: SubExp::i64(7),
        };
        assert_eq!(e.to_string(), format!("{a} with [0i64] <- 7i64"));
        let ix = Exp::Index {
            array: a.clone(),
            indices: vec![SubExp::i64(1), SubExp::i64(2)],
        };
        assert_eq!(ix.to_string(), format!("{a}[1i64, 2i64]"));
    }
}

//! Variable names with globally unique identifiers.
//!
//! A [`Name`] pairs a human-readable hint with a `u32` tag. Equality,
//! ordering, and hashing consider only the tag, so two names with the same
//! hint but different tags are distinct variables — exactly what compiler
//! passes need when they duplicate or specialise code.

use std::fmt;
use std::sync::Arc;

/// A variable name: a textual hint plus a unique numeric tag.
///
/// Produce names through a [`NameSource`] so tags stay unique within a
/// program.
///
/// ```
/// use futhark_core::NameSource;
/// let mut ns = NameSource::new();
/// let a = ns.fresh("x");
/// let b = ns.fresh("x");
/// assert_ne!(a, b); // same hint, different variables
/// ```
#[derive(Clone)]
pub struct Name {
    hint: Arc<str>,
    tag: u32,
}

impl Name {
    /// The textual hint this name was created with.
    pub fn hint(&self) -> &str {
        &self.hint
    }

    /// The unique numeric tag.
    pub fn tag(&self) -> u32 {
        self.tag
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.tag.cmp(&other.tag)
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.tag.hash(state);
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.hint, self.tag)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.hint, self.tag)
    }
}

/// A generator of fresh [`Name`]s.
///
/// Every program carries one so that transformation passes can invent new
/// variables without colliding with existing ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NameSource {
    next: u32,
}

impl NameSource {
    /// Creates a source whose first name will have tag 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a source that will only produce tags `>= next`.
    pub fn starting_at(next: u32) -> Self {
        NameSource { next }
    }

    /// Produces a fresh name with the given hint.
    pub fn fresh(&mut self, hint: &str) -> Name {
        let tag = self.next;
        self.next += 1;
        Name {
            hint: Arc::from(hint),
            tag,
        }
    }

    /// Produces a fresh name reusing the hint of an existing name.
    pub fn fresh_from(&mut self, like: &Name) -> Name {
        let tag = self.next;
        self.next += 1;
        Name {
            hint: Arc::clone(&like.hint),
            tag,
        }
    }

    /// The tag the next fresh name will receive.
    pub fn peek(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fresh_names_are_distinct() {
        let mut ns = NameSource::new();
        let names: Vec<Name> = (0..100).map(|_| ns.fresh("v")).collect();
        let set: HashSet<&Name> = names.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn equality_ignores_hint() {
        let mut ns = NameSource::new();
        let a = ns.fresh("foo");
        let b = Name {
            hint: Arc::from("bar"),
            tag: a.tag(),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn display_includes_hint_and_tag() {
        let mut ns = NameSource::starting_at(7);
        let a = ns.fresh("xs");
        assert_eq!(a.to_string(), "xs_7");
    }

    #[test]
    fn fresh_from_preserves_hint() {
        let mut ns = NameSource::new();
        let a = ns.fresh("acc");
        let b = ns.fresh_from(&a);
        assert_eq!(b.hint(), "acc");
        assert_ne!(a, b);
    }

    #[test]
    fn starting_at_skips_tags() {
        let mut ns = NameSource::starting_at(10);
        assert_eq!(ns.fresh("x").tag(), 10);
        assert_eq!(ns.peek(), 11);
    }
}

//! Runtime values: scalars and regular multi-dimensional arrays.
//!
//! Arrays are stored flat in row-major order with a typed [`Buffer`], the
//! same layout the GPU simulator uses for global memory, so the interpreter
//! and simulator results are directly comparable.

use crate::ir::Scalar;
use crate::types::ScalarType;
use std::fmt;

/// A flat, homogeneously typed data buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Buffer {
    /// Booleans.
    Bool(Vec<bool>),
    /// 32-bit integers.
    I32(Vec<i32>),
    /// 64-bit integers.
    I64(Vec<i64>),
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
}

impl Buffer {
    /// An all-zero buffer of `n` elements of type `t`.
    pub fn zeros(t: ScalarType, n: usize) -> Buffer {
        match t {
            ScalarType::Bool => Buffer::Bool(vec![false; n]),
            ScalarType::I32 => Buffer::I32(vec![0; n]),
            ScalarType::I64 => Buffer::I64(vec![0; n]),
            ScalarType::F32 => Buffer::F32(vec![0.0; n]),
            ScalarType::F64 => Buffer::F64(vec![0.0; n]),
        }
    }

    /// The element type.
    pub fn elem_type(&self) -> ScalarType {
        match self {
            Buffer::Bool(_) => ScalarType::Bool,
            Buffer::I32(_) => ScalarType::I32,
            Buffer::I64(_) => ScalarType::I64,
            Buffer::F32(_) => ScalarType::F32,
            Buffer::F64(_) => ScalarType::F64,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Buffer::Bool(v) => v.len(),
            Buffer::I32(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> Scalar {
        match self {
            Buffer::Bool(v) => Scalar::Bool(v[i]),
            Buffer::I32(v) => Scalar::I32(v[i]),
            Buffer::I64(v) => Scalar::I64(v[i]),
            Buffer::F32(v) => Scalar::F32(v[i]),
            Buffer::F64(v) => Scalar::F64(v[i]),
        }
    }

    /// Writes element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds or the scalar's type mismatches.
    pub fn set(&mut self, i: usize, s: Scalar) {
        match (self, s) {
            (Buffer::Bool(v), Scalar::Bool(b)) => v[i] = b,
            (Buffer::I32(v), Scalar::I32(k)) => v[i] = k,
            (Buffer::I64(v), Scalar::I64(k)) => v[i] = k,
            (Buffer::F32(v), Scalar::F32(x)) => v[i] = x,
            (Buffer::F64(v), Scalar::F64(x)) => v[i] = x,
            (b, s) => panic!(
                "buffer type mismatch: writing {:?} into {:?} buffer",
                s.scalar_type(),
                b.elem_type()
            ),
        }
    }

    /// Copies `count` elements from `src[src_at..]` into `self[dst_at..]`.
    ///
    /// # Panics
    /// Panics on range or type mismatch.
    pub fn copy_from(&mut self, dst_at: usize, src: &Buffer, src_at: usize, count: usize) {
        match (self, src) {
            (Buffer::Bool(d), Buffer::Bool(s)) => {
                d[dst_at..dst_at + count].copy_from_slice(&s[src_at..src_at + count])
            }
            (Buffer::I32(d), Buffer::I32(s)) => {
                d[dst_at..dst_at + count].copy_from_slice(&s[src_at..src_at + count])
            }
            (Buffer::I64(d), Buffer::I64(s)) => {
                d[dst_at..dst_at + count].copy_from_slice(&s[src_at..src_at + count])
            }
            (Buffer::F32(d), Buffer::F32(s)) => {
                d[dst_at..dst_at + count].copy_from_slice(&s[src_at..src_at + count])
            }
            (Buffer::F64(d), Buffer::F64(s)) => {
                d[dst_at..dst_at + count].copy_from_slice(&s[src_at..src_at + count])
            }
            (d, s) => panic!(
                "buffer type mismatch in copy: {:?} from {:?}",
                d.elem_type(),
                s.elem_type()
            ),
        }
    }

    /// Collects scalars into a buffer of type `t`.
    ///
    /// # Panics
    /// Panics if any scalar has a different type than `t`.
    pub fn from_scalars<I: IntoIterator<Item = Scalar>>(t: ScalarType, items: I) -> Buffer {
        let mut buf = Buffer::zeros(t, 0);
        match &mut buf {
            Buffer::Bool(v) => {
                for s in items {
                    v.push(s.as_bool().expect("bool scalar"));
                }
            }
            Buffer::I32(v) => {
                for s in items {
                    match s {
                        Scalar::I32(k) => v.push(k),
                        other => panic!("expected i32, got {other}"),
                    }
                }
            }
            Buffer::I64(v) => {
                for s in items {
                    match s {
                        Scalar::I64(k) => v.push(k),
                        other => panic!("expected i64, got {other}"),
                    }
                }
            }
            Buffer::F32(v) => {
                for s in items {
                    match s {
                        Scalar::F32(x) => v.push(x),
                        other => panic!("expected f32, got {other}"),
                    }
                }
            }
            Buffer::F64(v) => {
                for s in items {
                    match s {
                        Scalar::F64(x) => v.push(x),
                        other => panic!("expected f64, got {other}"),
                    }
                }
            }
        }
        buf
    }
}

/// A regular multi-dimensional array value with row-major flat storage.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayVal {
    /// The shape, outermost first. Never empty.
    pub shape: Vec<usize>,
    /// The flat data; `data.len() == shape.iter().product()`.
    pub data: Buffer,
}

impl ArrayVal {
    /// Creates an array, checking that data length matches the shape.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.iter().product()`.
    pub fn new(shape: Vec<usize>, data: Buffer) -> ArrayVal {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "array data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        ArrayVal { shape, data }
    }

    /// An all-zero array.
    pub fn zeros(t: ScalarType, shape: Vec<usize>) -> ArrayVal {
        let n = shape.iter().product();
        ArrayVal {
            shape,
            data: Buffer::zeros(t, n),
        }
    }

    /// Builds a rank-1 array from `i64` values.
    pub fn from_i64s(v: Vec<i64>) -> ArrayVal {
        ArrayVal {
            shape: vec![v.len()],
            data: Buffer::I64(v),
        }
    }

    /// Builds a rank-1 array from `f32` values.
    pub fn from_f32s(v: Vec<f32>) -> ArrayVal {
        ArrayVal {
            shape: vec![v.len()],
            data: Buffer::F32(v),
        }
    }

    /// Builds a rank-1 array from `i32` values.
    pub fn from_i32s(v: Vec<i32>) -> ArrayVal {
        ArrayVal {
            shape: vec![v.len()],
            data: Buffer::I32(v),
        }
    }

    /// Builds a rank-1 array from `f64` values.
    pub fn from_f64s(v: Vec<f64>) -> ArrayVal {
        ArrayVal {
            shape: vec![v.len()],
            data: Buffer::F64(v),
        }
    }

    /// The element type.
    pub fn elem_type(&self) -> ScalarType {
        self.data.elem_type()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Number of elements in one outermost row.
    pub fn row_elems(&self) -> usize {
        self.shape[1..].iter().product()
    }

    /// Converts multi-dimensional indices to a flat offset, checking bounds.
    pub fn flat_index(&self, idx: &[i64]) -> Option<usize> {
        if idx.len() > self.shape.len() {
            return None;
        }
        let mut off = 0usize;
        for (d, &i) in idx.iter().enumerate() {
            if i < 0 || i as usize >= self.shape[d] {
                return None;
            }
            off = off * self.shape[d] + i as usize;
        }
        // Scale by the remaining (unindexed) dimensions.
        let rest: usize = self.shape[idx.len()..].iter().product();
        Some(off * rest)
    }

    /// Reads a scalar at fully specified indices.
    pub fn index_scalar(&self, idx: &[i64]) -> Option<Scalar> {
        if idx.len() != self.shape.len() {
            return None;
        }
        self.flat_index(idx).map(|off| self.data.get(off))
    }

    /// Takes a slice with a prefix of indices, producing the sub-array.
    pub fn index_slice(&self, idx: &[i64]) -> Option<ArrayVal> {
        if idx.len() >= self.shape.len() {
            return None;
        }
        let off = self.flat_index(idx)?;
        let shape: Vec<usize> = self.shape[idx.len()..].to_vec();
        let count: usize = shape.iter().product();
        let mut data = Buffer::zeros(self.elem_type(), count);
        data.copy_from(0, &self.data, off, count);
        Some(ArrayVal { shape, data })
    }

    /// Writes a scalar at fully specified indices, in place.
    pub fn update_scalar(&mut self, idx: &[i64], v: Scalar) -> bool {
        if idx.len() != self.shape.len() {
            return false;
        }
        match self.flat_index(idx) {
            Some(off) => {
                self.data.set(off, v);
                true
            }
            None => false,
        }
    }

    /// Writes a whole sub-array at a prefix of indices, in place (the bulk
    /// update generalisation of footnote 3).
    pub fn update_slice(&mut self, idx: &[i64], v: &ArrayVal) -> bool {
        if idx.len() >= self.shape.len() || self.shape[idx.len()..] != v.shape[..] {
            return false;
        }
        match self.flat_index(idx) {
            Some(off) => {
                self.data.copy_from(off, &v.data, 0, v.data.len());
                true
            }
            None => false,
        }
    }

    /// Reorders dimensions by the given permutation (`rearrange`).
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn rearrange(&self, perm: &[usize]) -> ArrayVal {
        assert_eq!(perm.len(), self.rank(), "permutation rank mismatch");
        let new_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let n = self.data.len();
        let mut out = Buffer::zeros(self.elem_type(), n);
        // Strides of the source array.
        let mut strides = vec![1usize; self.rank()];
        for d in (0..self.rank().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * self.shape[d + 1];
        }
        let mut idx = vec![0usize; self.rank()];
        for flat_new in 0..n {
            // Decompose flat_new into the permuted index space.
            let mut rem = flat_new;
            for (d, &extent) in new_shape.iter().enumerate().rev() {
                idx[d] = rem % extent;
                rem /= extent;
            }
            // Map back to source coordinates: new dim d is source dim perm[d].
            let mut src = 0usize;
            for (d, &p) in perm.iter().enumerate() {
                src += idx[d] * strides[p];
            }
            out.set(flat_new, self.data.get(src));
        }
        ArrayVal {
            shape: new_shape,
            data: out,
        }
    }

    /// Views the data with a new shape of the same element count.
    pub fn reshape(&self, shape: Vec<usize>) -> Option<ArrayVal> {
        if shape.iter().product::<usize>() != self.data.len() {
            return None;
        }
        Some(ArrayVal {
            shape,
            data: self.data.clone(),
        })
    }

    /// Concatenates along the outer dimension.
    ///
    /// # Panics
    /// Panics if inner shapes or element types disagree, or `parts` is empty.
    pub fn concat(parts: &[&ArrayVal]) -> ArrayVal {
        assert!(!parts.is_empty(), "concat of zero arrays");
        let inner = &parts[0].shape[1..];
        let t = parts[0].elem_type();
        let mut outer = 0usize;
        for p in parts {
            assert_eq!(&p.shape[1..], inner, "concat inner shape mismatch");
            assert_eq!(p.elem_type(), t, "concat element type mismatch");
            outer += p.shape[0];
        }
        let mut shape = vec![outer];
        shape.extend_from_slice(inner);
        let total: usize = shape.iter().product();
        let mut data = Buffer::zeros(t, total);
        let mut at = 0;
        for p in parts {
            data.copy_from(at, &p.data, 0, p.data.len());
            at += p.data.len();
        }
        ArrayVal { shape, data }
    }

    /// Iterates over the scalar elements in row-major order.
    pub fn iter_scalars(&self) -> impl Iterator<Item = Scalar> + '_ {
        (0..self.data.len()).map(move |i| self.data.get(i))
    }
}

/// A runtime value: a scalar or an array.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A scalar value.
    Scalar(Scalar),
    /// An array value.
    Array(ArrayVal),
}

impl Value {
    /// Shorthand for an `i64` scalar.
    pub fn i64(k: i64) -> Value {
        Value::Scalar(Scalar::I64(k))
    }

    /// Shorthand for an `f32` scalar.
    pub fn f32(x: f32) -> Value {
        Value::Scalar(Scalar::F32(x))
    }

    /// The scalar, if this is one.
    pub fn as_scalar(&self) -> Option<Scalar> {
        match self {
            Value::Scalar(s) => Some(*s),
            Value::Array(_) => None,
        }
    }

    /// The array, if this is one.
    pub fn as_array(&self) -> Option<&ArrayVal> {
        match self {
            Value::Scalar(_) => None,
            Value::Array(a) => Some(a),
        }
    }

    /// Consumes the value, returning the array if it is one.
    pub fn into_array(self) -> Option<ArrayVal> {
        match self {
            Value::Scalar(_) => None,
            Value::Array(a) => Some(a),
        }
    }

    /// Exact bitwise equality: shapes, element types, and every element
    /// identical, with floats compared by bit pattern (so `NaN == NaN` and
    /// `0.0 != -0.0`). This is the differential-fuzzing oracle's notion of
    /// agreement: any optimisation configuration that changes even one bit
    /// of output is a bug by construction.
    pub fn bit_eq(&self, other: &Value) -> bool {
        fn scalar_bits(a: &Scalar, b: &Scalar) -> bool {
            match (a, b) {
                (Scalar::Bool(x), Scalar::Bool(y)) => x == y,
                (Scalar::I32(x), Scalar::I32(y)) => x == y,
                (Scalar::I64(x), Scalar::I64(y)) => x == y,
                (Scalar::F32(x), Scalar::F32(y)) => x.to_bits() == y.to_bits(),
                (Scalar::F64(x), Scalar::F64(y)) => x.to_bits() == y.to_bits(),
                _ => false,
            }
        }
        match (self, other) {
            (Value::Scalar(a), Value::Scalar(b)) => scalar_bits(a, b),
            (Value::Array(a), Value::Array(b)) => {
                a.shape == b.shape
                    && a.elem_type() == b.elem_type()
                    && (0..a.data.len()).all(|i| scalar_bits(&a.data.get(i), &b.data.get(i)))
            }
            _ => false,
        }
    }

    /// The first element position (row-major) where two values differ under
    /// [`Value::bit_eq`], for diagnostics; `None` when equal or when the
    /// difference is structural (shape or type).
    pub fn first_mismatch(&self, other: &Value) -> Option<usize> {
        if let (Value::Array(a), Value::Array(b)) = (self, other) {
            if a.shape == b.shape && a.elem_type() == b.elem_type() {
                return (0..a.data.len()).find(|&i| {
                    !Value::Scalar(a.data.get(i)).bit_eq(&Value::Scalar(b.data.get(i)))
                });
            }
        }
        None
    }

    /// Approximate equality: arrays/scalars equal up to a relative float
    /// tolerance. Used to compare interpreter and simulator outputs.
    pub fn approx_eq(&self, other: &Value, tol: f64) -> bool {
        fn close(a: f64, b: f64, tol: f64) -> bool {
            if a == b {
                return true;
            }
            if a.is_nan() && b.is_nan() {
                return true;
            }
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        }
        fn scalar_close(a: &Scalar, b: &Scalar, tol: f64) -> bool {
            match (a, b) {
                (Scalar::Bool(x), Scalar::Bool(y)) => x == y,
                (Scalar::I32(x), Scalar::I32(y)) => x == y,
                (Scalar::I64(x), Scalar::I64(y)) => x == y,
                (Scalar::F32(x), Scalar::F32(y)) => close(*x as f64, *y as f64, tol),
                (Scalar::F64(x), Scalar::F64(y)) => close(*x, *y, tol),
                _ => false,
            }
        }
        match (self, other) {
            (Value::Scalar(a), Value::Scalar(b)) => scalar_close(a, b, tol),
            (Value::Array(a), Value::Array(b)) => {
                a.shape == b.shape
                    && a.elem_type() == b.elem_type()
                    && (0..a.data.len()).all(|i| scalar_close(&a.data.get(i), &b.data.get(i), tol))
            }
            _ => false,
        }
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Self {
        Value::Scalar(s)
    }
}

impl From<ArrayVal> for Value {
    fn from(a: ArrayVal) -> Self {
        Value::Array(a)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Scalar(s) => write!(f, "{s}"),
            Value::Array(a) => {
                // Print nested brackets for low ranks, else a summary.
                if a.data.len() > 64 {
                    write!(
                        f,
                        "<{}{}>",
                        a.shape.iter().map(|d| format!("[{d}]")).collect::<String>(),
                        a.elem_type()
                    )
                } else {
                    fmt_array(f, a, &mut 0, 0)
                }
            }
        }
    }
}

fn fmt_array(
    f: &mut fmt::Formatter<'_>,
    a: &ArrayVal,
    offset: &mut usize,
    dim: usize,
) -> fmt::Result {
    write!(f, "[")?;
    let extent = a.shape[dim];
    for i in 0..extent {
        if i > 0 {
            write!(f, ", ")?;
        }
        if dim + 1 == a.shape.len() {
            write!(f, "{}", a.data.get(*offset))?;
            *offset += 1;
        } else {
            fmt_array(f, a, offset, dim + 1)?;
        }
    }
    write!(f, "]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_indexing_row_major() {
        let a = ArrayVal::new(vec![2, 3], Buffer::I64((0..6).collect()));
        assert_eq!(a.index_scalar(&[0, 0]), Some(Scalar::I64(0)));
        assert_eq!(a.index_scalar(&[1, 2]), Some(Scalar::I64(5)));
        assert_eq!(a.index_scalar(&[2, 0]), None);
        assert_eq!(a.index_scalar(&[0, -1]), None);
    }

    #[test]
    fn slicing_returns_rows() {
        let a = ArrayVal::new(vec![2, 3], Buffer::I64((0..6).collect()));
        let row = a.index_slice(&[1]).unwrap();
        assert_eq!(row.shape, vec![3]);
        assert_eq!(row.data, Buffer::I64(vec![3, 4, 5]));
    }

    #[test]
    fn in_place_updates() {
        let mut a = ArrayVal::new(vec![4], Buffer::I64(vec![0; 4]));
        assert!(a.update_scalar(&[2], Scalar::I64(9)));
        assert_eq!(a.data, Buffer::I64(vec![0, 0, 9, 0]));
        assert!(!a.update_scalar(&[4], Scalar::I64(1)));

        let mut m = ArrayVal::zeros(ScalarType::I64, vec![2, 2]);
        let row = ArrayVal::from_i64s(vec![7, 8]);
        assert!(m.update_slice(&[1], &row));
        assert_eq!(m.data, Buffer::I64(vec![0, 0, 7, 8]));
    }

    #[test]
    fn rearrange_transposes() {
        let a = ArrayVal::new(vec![2, 3], Buffer::I64((0..6).collect()));
        let t = a.rearrange(&[1, 0]);
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.data, Buffer::I64(vec![0, 3, 1, 4, 2, 5]));
        // Transposing twice is the identity.
        assert_eq!(t.rearrange(&[1, 0]), a);
    }

    #[test]
    fn rearrange_rank3() {
        let a = ArrayVal::new(vec![2, 3, 4], Buffer::I64((0..24).collect()));
        let r = a.rearrange(&[2, 0, 1]);
        assert_eq!(r.shape, vec![4, 2, 3]);
        // Element at new [i][j][k] equals source [j][k][i].
        assert_eq!(r.index_scalar(&[1, 1, 2]), a.index_scalar(&[1, 2, 1]));
    }

    #[test]
    fn reshape_preserves_data() {
        let a = ArrayVal::new(vec![2, 3], Buffer::I64((0..6).collect()));
        let b = a.reshape(vec![6]).unwrap();
        assert_eq!(b.shape, vec![6]);
        assert_eq!(b.data, a.data);
        assert!(a.reshape(vec![4]).is_none());
    }

    #[test]
    fn concat_outer() {
        let a = ArrayVal::from_i64s(vec![1, 2]);
        let b = ArrayVal::from_i64s(vec![3]);
        let c = ArrayVal::concat(&[&a, &b]);
        assert_eq!(c.shape, vec![3]);
        assert_eq!(c.data, Buffer::I64(vec![1, 2, 3]));
    }

    #[test]
    fn bit_eq_is_exact() {
        let a = Value::Array(ArrayVal::from_i64s(vec![1, 2, 3]));
        let b = Value::Array(ArrayVal::from_i64s(vec![1, 2, 3]));
        let c = Value::Array(ArrayVal::from_i64s(vec![1, 2, 4]));
        assert!(a.bit_eq(&b));
        assert!(!a.bit_eq(&c));
        assert_eq!(a.first_mismatch(&c), Some(2));
        // NaNs agree bitwise; signed zeros do not.
        let n1 = Value::Array(ArrayVal::from_f32s(vec![f32::NAN]));
        let n2 = Value::Array(ArrayVal::from_f32s(vec![f32::NAN]));
        assert!(n1.bit_eq(&n2));
        let z1 = Value::f32(0.0);
        let z2 = Value::f32(-0.0);
        assert!(!z1.bit_eq(&z2));
        // Shape mismatches are structural, not positional.
        let flat = Value::Array(ArrayVal::from_i64s(vec![1, 2, 3, 4]));
        let mat = Value::Array(ArrayVal::new(vec![2, 2], Buffer::I64(vec![1, 2, 3, 4])));
        assert!(!flat.bit_eq(&mat));
        assert_eq!(flat.first_mismatch(&mat), None);
    }

    #[test]
    fn approx_eq_tolerates_rounding() {
        let a = Value::Array(ArrayVal::from_f32s(vec![1.0, 2.0]));
        let b = Value::Array(ArrayVal::from_f32s(vec![1.0 + 1e-7, 2.0]));
        assert!(a.approx_eq(&b, 1e-5));
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn display_small_arrays() {
        let a = Value::Array(ArrayVal::new(vec![2, 2], Buffer::I64(vec![1, 2, 3, 4])));
        assert_eq!(a.to_string(), "[[1i64, 2i64], [3i64, 4i64]]");
    }
}

//! GPU backend for `futhark-rs`: kernel IR, code generation from the
//! flattened core IR, and a SIMT virtual GPU with a coalescing-aware cost
//! model (the evaluation substrate standing in for the paper's physical
//! GTX 780 Ti and FirePro W8100).

pub mod codegen;
pub mod device;
pub mod exec;
pub mod kernel;
pub mod memplan;
pub mod plan;
pub mod sim;
pub mod tape;

pub use device::DeviceProfile;
pub use memplan::{plan_memory, predict_peak_bytes, PeakPrediction};
pub use sim::{
    kernel_time_breakdown, kernel_time_us, Arg, BufId, DeviceMemory, KernelStats, Limiter,
    MemEvent, MemOp, MemStats, SimError, SiteStats, TimeBreakdown,
};
pub use tape::{
    host_threads, launch_decoded, launch_decoded_profiled, launch_decoded_with, sim_engine,
    DecodedKernel, LaunchOpts, LaunchOut, SimEngine,
};

//! Code generation: flattened core IR → [`GpuPlan`].
//!
//! Perfect map nests become `SegMap`-style kernels (one thread per element
//! of the nest's index space); nests whose innermost statement is a
//! `reduce`/`scan` become segmented-operator kernels (one thread per
//! segment, reducing sequentially — always efficient, cf. the discussion
//! of rule G5); top-level `reduce`/`redomap`/`stream_red` become two-stage
//! streaming folds. All remaining SOACs inside a thread body are
//! *efficiently sequentialised* (Section 4): loops over registers and
//! private arrays, with in-place updates compiled to plain writes.
//!
//! Two locality optimisations from Section 5.2 are applied here:
//!
//! - **Memory coalescing**: a context array whose rows are iterated
//!   sequentially inside the thread is requested in a transposed layout
//!   (sequential dimensions outermost), making consecutive threads touch
//!   consecutive addresses. The executor materialises layouts lazily and
//!   caches them.
//! - **1-D block tiling**: a thread-body loop reading a thread-invariant
//!   array element per iteration is rewritten to stage the array through
//!   local memory, one tile per barrier round (the N-body pattern).

use crate::kernel::{KExp, KParam, KStm, Kernel, PrivId, Reg};
use crate::plan::{ArgSpec, GpuPlan, HBody, HStm, LaunchKind, LaunchSpec, OutSpec};
use futhark_core::schedule::{ChoiceClass, Schedule, ScheduleCursor};
use futhark_core::{
    BinOp, Body, Exp, Lambda, LoopForm, Name, Param, PatElem, Program, Prov, ScalarType, Size,
    Soac, Stm, SubExp, Type,
};
use std::collections::HashMap;
use std::fmt;

/// Options controlling the locality optimisations (for the §6.1.1
/// ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Apply the coalescing-by-transposition transformation.
    pub coalescing: bool,
    /// Apply 1-D block tiling in local memory.
    pub tiling: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            coalescing: true,
            tiling: true,
        }
    }
}

/// A code-generation failure (construct outside the supported subset; such
/// statements fall back to interpreted device ops instead, so this error
/// is internal).
#[derive(Debug, Clone, PartialEq)]
pub struct CodegenError {
    /// Explanation.
    pub message: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen: {}", self.message)
    }
}

impl std::error::Error for CodegenError {}

type CResult<T> = Result<T, CodegenError>;

fn cerr<T>(m: impl Into<String>) -> CResult<T> {
    Err(CodegenError { message: m.into() })
}

/// Compiles the `main` function of a flattened program into a GPU plan.
///
/// # Errors
///
/// Returns a [`CodegenError`] only if `main` is missing; unsupported
/// statements become interpreter fallbacks, not errors.
pub fn compile(prog: &Program, opts: CodegenOptions) -> Result<GpuPlan, CodegenError> {
    let mut cur = ScheduleCursor::new(Schedule::default());
    compile_with(prog, opts, &mut cur)
}

/// As [`compile`], but the coalescing-transposition and 1-D tiling sites
/// consult (and advance) the given schedule cursor. The `opts` flags act
/// as coarse master switches: a disabled flag means the corresponding
/// sites are never even queried.
pub fn compile_with(
    prog: &Program,
    opts: CodegenOptions,
    cur: &mut ScheduleCursor,
) -> Result<GpuPlan, CodegenError> {
    let main = prog.main().ok_or_else(|| CodegenError {
        message: "program has no main function".into(),
    })?;
    let mut cg = Codegen {
        opts,
        cur,
        kernels: Vec::new(),
        types: HashMap::new(),
        kcount: 0,
    };
    for p in &main.params {
        cg.types.insert(p.name.clone(), p.ty.clone());
    }
    let body = cg.host_body(&main.body);
    futhark_trace::event_n("codegen.kernels_extracted", cg.kcount as u64);
    Ok(GpuPlan {
        params: main.params.clone(),
        kernels: cg.kernels,
        body,
        mem_planned: false,
    })
}

struct Codegen<'a> {
    opts: CodegenOptions,
    /// Choice points: per-site coalescing and per-kernel tiling decisions.
    cur: &'a mut ScheduleCursor,
    kernels: Vec<Kernel>,
    types: HashMap<Name, Type>,
    kcount: usize,
}

impl Codegen<'_> {
    fn host_body(&mut self, body: &Body) -> HBody {
        let mut out = Vec::new();
        for stm in &body.stms {
            for pe in &stm.pat {
                self.types.insert(pe.name.clone(), pe.ty.clone());
            }
            match &stm.exp {
                Exp::Soac(_) => match self.try_launch(stm) {
                    Ok(hstms) => out.extend(hstms),
                    Err(_) => {
                        // The statement runs as an interpreter fallback; the
                        // trace counter (surfaced by futhark-prof) replaces
                        // the old stderr diagnostic.
                        futhark_trace::event("codegen.fallback_sites");
                        out.push(HStm::Direct(stm.clone()));
                    }
                },
                Exp::Loop {
                    params,
                    form,
                    body: lbody,
                } if body_has_soac(lbody)
                    || matches!(form, LoopForm::While(c) if body_has_soac(c)) =>
                {
                    for (p, _) in params {
                        self.types.insert(p.name.clone(), p.ty.clone());
                    }
                    let hb = self.host_body(lbody);
                    match form {
                        LoopForm::For { var, bound } => out.push(HStm::Loop {
                            pat: stm.pat.clone(),
                            params: params.clone(),
                            while_cond: None,
                            for_var: Some((var.clone(), bound.clone())),
                            body: hb,
                        }),
                        LoopForm::While(c) => out.push(HStm::Loop {
                            pat: stm.pat.clone(),
                            params: params.clone(),
                            while_cond: Some(self.host_body(c)),
                            for_var: None,
                            body: hb,
                        }),
                    }
                }
                Exp::If {
                    cond,
                    then_body,
                    else_body,
                    ..
                } if body_has_soac(then_body) || body_has_soac(else_body) => {
                    let t = self.host_body(then_body);
                    let e = self.host_body(else_body);
                    out.push(HStm::If {
                        pat: stm.pat.clone(),
                        cond: cond.clone(),
                        then_b: t,
                        else_b: e,
                    });
                }
                _ => out.push(HStm::Direct(stm.clone())),
            }
        }
        HBody {
            stms: out,
            result: body.result.clone(),
        }
    }

    fn kernel_name(&mut self, tag: &str) -> String {
        self.kcount += 1;
        format!("{tag}_{}", self.kcount)
    }

    /// Attempts to compile a SOAC statement into kernel launches.
    fn try_launch(&mut self, stm: &Stm) -> CResult<Vec<HStm>> {
        match &stm.exp {
            Exp::Soac(Soac::Map { width, lam, arrs }) => self.segmap(stm, width, lam, arrs),
            Exp::Soac(Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                ..
            }) if lam.ret.iter().all(Type::is_scalar) => {
                self.stream_fold_launch(
                    stm, width, neutral, arrs, lam, None, // plain reduce: identity map stage
                )
            }
            Exp::Soac(Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                ..
            }) if red_lam.ret.iter().all(Type::is_scalar) && map_lam.ret.len() == neutral.len() => {
                self.stream_fold_launch(stm, width, neutral, arrs, red_lam, Some(map_lam))
            }
            Exp::Soac(Soac::StreamRed {
                width,
                red_lam,
                fold_lam,
                accs,
                arrs,
            }) if fold_lam.ret.len() == accs.len() => {
                self.stream_red_launch(stm, width, red_lam, fold_lam, accs, arrs)
            }
            Exp::Soac(Soac::Scatter {
                width,
                dest,
                indices,
                values,
            }) => self.scatter_launch(stm, width, dest, indices, values),
            _ => cerr("unsupported SOAC at host level"),
        }
    }

    /// Builds a SegMap-family kernel from a perfect map nest.
    fn segmap(
        &mut self,
        stm: &Stm,
        width: &SubExp,
        lam: &Lambda,
        arrs: &[Name],
    ) -> CResult<Vec<HStm>> {
        // Peel the nest.
        let mut widths = vec![width.clone()];
        let mut levels: Vec<(Vec<Param>, Vec<Name>)> = vec![(lam.params.clone(), arrs.to_vec())];
        let mut innermost = &lam.body;
        loop {
            if innermost.stms.len() == 1 && innermost.result.len() == innermost.stms[0].pat.len() {
                if let Exp::Soac(Soac::Map {
                    width: w2,
                    lam: l2,
                    arrs: a2,
                }) = &innermost.stms[0].exp
                {
                    // The nest continues only if the map's outputs are the
                    // body result in order.
                    let all_res = innermost.stms[0]
                        .pat
                        .iter()
                        .zip(&innermost.result)
                        .all(|(pe, se)| se.as_var() == Some(&pe.name));
                    if all_res {
                        widths.push(w2.clone());
                        levels.push((l2.params.clone(), a2.clone()));
                        innermost = &l2.body;
                        continue;
                    }
                }
            }
            break;
        }
        let mut kb = KBuild::new(self.kernel_name("segmap"), stm.prov.clone());
        let depth = widths.len();
        // Thread indices.
        let width_args: Vec<KExp> = widths
            .iter()
            .map(|w| kb.scalar_subexp(w, ScalarType::I64))
            .collect::<CResult<_>>()?;
        let mut body_stms: Vec<KStm> = Vec::new();
        let idx_regs = kb.grid_indices(&width_args, &mut body_stms);
        // Decide coalescing layouts for context arrays: a context array
        // whose rows are themselves arrays is iterated sequentially inside
        // the thread, so we want its sequential dimensions outermost.
        let mut env: HashMap<Name, TVal> = HashMap::new();
        for (l, (params, anames)) in levels.iter().enumerate() {
            for (p, a) in params.iter().zip(anames) {
                // Resolve the array: at level 0 it is a host array; deeper
                // it is a previous level's parameter.
                let base = if l == 0 {
                    let ty = self.types.get(a).cloned().ok_or_else(|| CodegenError {
                        message: format!("unknown host array {a}"),
                    })?;
                    let row_rank = ty.rank().saturating_sub(depth);
                    let perm = if self.opts.coalescing
                        && row_rank >= 1
                        && ty.rank() >= 2
                        && self.cur.decide(ChoiceClass::CoalesceInputs)
                    {
                        // Sequential (row) dims first, context dims last.
                        let d = ty.rank() - row_rank;
                        let mut perm: Vec<usize> = (d..ty.rank()).collect();
                        perm.extend(0..d);
                        futhark_trace::event("codegen.coalesced_inputs");
                        perm
                    } else {
                        Vec::new()
                    };
                    kb.array_ref(a, &ty, perm)?
                } else {
                    match env.get(a) {
                        Some(TVal::GArr(g)) => TVal::GArr(g.clone()),
                        Some(other) => other.clone(),
                        None => {
                            // A nested map over an array invariant to the
                            // outer levels (bound at host level): bind it
                            // row-major — its slicing index is this level's
                            // thread index, which is the faster-varying one,
                            // so row-major is already the coalesced layout
                            // for rank-1 rows.
                            let ty = self.types.get(a).cloned().ok_or_else(|| CodegenError {
                                message: format!("nest array {a} not bound"),
                            })?;
                            kb.array_ref(a, &ty, Vec::new())?
                        }
                    }
                };
                // Slice by this level's thread index; scalar rows become
                // register reads.
                let idx = KExp::Var(idx_regs[l]);
                let sliced = if base.rank() == 1 {
                    let TVal::GArr(g) = &base else {
                        return cerr("nest level over non-global array");
                    };
                    let s = g.slice(&[idx]);
                    let r = kb.reg();
                    body_stms.push(KStm::GlobalRead {
                        var: r,
                        buf: g.buf_arg,
                        index: s.offset,
                    });
                    TVal::Reg(r, g.elem)
                } else {
                    slice_tval(&base, &[idx])?
                };
                env.insert(p.name.clone(), sliced);
            }
        }
        // Output buffers.
        let mut outs = Vec::new();
        let mut out_refs: Vec<GRef> = Vec::new();
        for pe in &stm.pat {
            let Some(at) = pe.ty.as_array() else {
                return cerr("map output must be an array");
            };
            let row_rank = at.rank() - depth;
            let perm = if self.opts.coalescing
                && row_rank >= 1
                && self.cur.decide(ChoiceClass::CoalesceOutputs)
            {
                let mut perm: Vec<usize> = (depth..at.rank()).collect();
                perm.extend(0..depth);
                futhark_trace::event("codegen.coalesced_outputs");
                perm
            } else {
                Vec::new()
            };
            let arg = kb.out_arg(outs.len(), at.elem);
            let dims: Vec<KExp> = at
                .dims
                .iter()
                .map(|d| kb.scalar_subexp(&SubExp::from(d), ScalarType::I64))
                .collect::<CResult<_>>()?;
            out_refs.push(GRef::new(arg, at.elem, dims, &perm));
            outs.push(OutSpec {
                elem: at.elem,
                shape: at.dims.iter().map(SubExp::from).collect(),
                perm,
                init_from: None,
                steal: None,
                write_into: None,
            });
        }
        // Lower the thread body.
        let mut lower = Lower {
            cg_types: &self.types,
            kb: &mut kb,
            env,
        };
        let results = lower.body(innermost, &mut body_stms)?;
        // Write results.
        for (r, oref) in results.iter().zip(&out_refs) {
            let idxs: Vec<KExp> = idx_regs.iter().map(|&r| KExp::Var(r)).collect();
            let dst = oref.slice(&idxs);
            lower.write_into(&dst, r, &mut body_stms)?;
        }
        let mut kernel = kb.finish(body_stms);
        if self.opts.tiling
            && tile_1d_candidate(&kernel)
            && self.cur.decide(ChoiceClass::Tile)
            && tile_1d(&mut kernel)
        {
            futhark_trace::event("codegen.tiled_kernels");
        }
        let spec = LaunchSpec {
            kernel: self.push_kernel(kernel),
            widths,
            kind: LaunchKind::Grid,
            args: kb_args(&kb),
            outs,
        };
        Ok(vec![HStm::Launch {
            pat: stm.pat.clone(),
            spec,
        }])
    }

    /// Two-stage reduction: a streaming fold kernel producing per-thread
    /// partials, then a host-side combine (counted as a small device op).
    /// Covers top-level `reduce` and `redomap`.
    fn stream_fold_launch(
        &mut self,
        stm: &Stm,
        width: &SubExp,
        neutral: &[SubExp],
        arrs: &[Name],
        red_lam: &Lambda,
        map_lam: Option<&Lambda>,
    ) -> CResult<Vec<HStm>> {
        let mut kb = KBuild::new(self.kernel_name("redstage1"), stm.prov.clone());
        let n = kb.scalar_subexp(width, ScalarType::I64)?;
        let mut body_stms = Vec::new();
        let (lo, len) = kb.stream_chunk(&n, &mut body_stms);
        let mut lower = Lower {
            cg_types: &self.types,
            kb: &mut kb,
            env: HashMap::new(),
        };
        // Accumulator registers initialised with the neutral elements.
        let mut acc_regs = Vec::new();
        for ne in neutral {
            let e = lower.subexp(ne, &mut body_stms)?;
            let r = lower.kb.reg();
            body_stms.push(KStm::Assign { var: r, exp: e });
            acc_regs.push(r);
        }
        // Input refs.
        let mut inputs = Vec::new();
        for a in arrs {
            inputs.push(lower.lookup_array(a)?);
        }
        // Sequential loop over the chunk.
        let i = lower.kb.reg();
        let mut loop_body: Vec<KStm> = Vec::new();
        let elem_idx = KExp::Var(i).add(KExp::Var(lo));
        let mut elems: Vec<TVal> = Vec::new();
        for inp in &inputs {
            elems.push(lower.read_elem_or_slice(
                inp,
                std::slice::from_ref(&elem_idx),
                &mut loop_body,
            )?);
        }
        // Optionally apply the map stage (names are globally unique, so
        // binding into the shared environment is safe).
        let mapped: Vec<TVal> = match map_lam {
            Some(ml) => {
                for (p, v) in ml.params.iter().zip(&elems) {
                    lower.env.insert(p.name.clone(), v.clone());
                }
                lower.body(&ml.body, &mut loop_body)?
            }
            None => elems,
        };
        // acc = red(acc, mapped).
        let k = acc_regs.len();
        for (j, p) in red_lam.params.iter().enumerate() {
            let v = if j < k {
                TVal::Reg(acc_regs[j], scalar_of(&p.ty)?)
            } else {
                mapped[j - k].clone()
            };
            lower.env.insert(p.name.clone(), v);
        }
        let res = lower.body(&red_lam.body, &mut loop_body)?;
        for (r, acc) in res.iter().zip(&acc_regs) {
            let e = tval_scalar(r)?;
            loop_body.push(KStm::Assign { var: *acc, exp: e });
        }
        body_stms.push(KStm::For {
            var: i,
            bound: KExp::Var(len),
            body: loop_body,
        });
        // Write partials: one output buffer per accumulator, size T (the
        // executor substitutes the chosen thread count for the -1 shape).
        let mut outs = Vec::new();
        for (j, ne) in neutral.iter().enumerate() {
            let t = self.subexp_scalar_type(ne)?;
            let arg = lower.kb.out_arg(j, t);
            body_stms.push(KStm::GlobalWrite {
                buf: arg,
                index: KExp::GlobalId,
                value: KExp::Var(acc_regs[j]),
            });
            outs.push(OutSpec {
                elem: t,
                shape: vec![SubExp::i64(-1)],
                perm: Vec::new(),
                init_from: None,
                steal: None,
                write_into: None,
            });
        }
        let kernel = kb.finish(body_stms);
        // The launch binds the partials under the final output names (the
        // Combine reads them before rebinding, so the shadowing is safe).
        let pat: Vec<PatElem> = stm
            .pat
            .iter()
            .zip(neutral)
            .map(|(pe, ne)| {
                let t = self.subexp_scalar_type(ne).expect("scalar neutral");
                PatElem::new(pe.name.clone(), Type::array_of(t, vec![Size::Const(-1)]))
            })
            .collect();
        let partial_names: Vec<Name> = pat.iter().map(|pe| pe.name.clone()).collect();
        let spec = LaunchSpec {
            kernel: self.push_kernel(kernel),
            widths: vec![width.clone()],
            kind: LaunchKind::Stream {
                total: width.clone(),
            },
            args: kb_args(&kb),
            outs,
        };
        Ok(vec![
            HStm::Launch { pat, spec },
            HStm::Combine {
                pat: stm.pat.clone(),
                partials: partial_names,
                red_lam: red_lam.clone(),
                init: neutral.to_vec(),
            },
        ])
    }

    /// Top-level `stream_red`: fold kernel over chunks + combine.
    fn stream_red_launch(
        &mut self,
        stm: &Stm,
        width: &SubExp,
        red_lam: &Lambda,
        fold_lam: &Lambda,
        accs: &[SubExp],
        arrs: &[Name],
    ) -> CResult<Vec<HStm>> {
        // Only accumulator results supported (no mapped-out chunk arrays).
        if fold_lam.ret.len() != accs.len() {
            return cerr("stream_red with chunk array outputs not kernelised");
        }
        let mut kb = KBuild::new(self.kernel_name("streamred"), stm.prov.clone());
        let n = kb.scalar_subexp(width, ScalarType::I64)?;
        let mut body_stms = Vec::new();
        let (lo, len) = kb.stream_chunk(&n, &mut body_stms);
        let mut lower = Lower {
            cg_types: &self.types,
            kb: &mut kb,
            env: HashMap::new(),
        };
        // chunk-size parameter.
        let chunk_param = &fold_lam.params[0];
        let chunk_reg = lower.kb.reg();
        body_stms.push(KStm::Assign {
            var: chunk_reg,
            exp: KExp::Var(len),
        });
        lower.env.insert(
            chunk_param.name.clone(),
            TVal::Reg(chunk_reg, ScalarType::I64),
        );
        // Accumulator parameters: materialised per-thread (consumable).
        let k = accs.len();
        for (p, init) in fold_lam.params[1..1 + k].iter().zip(accs) {
            let v = lower.init_acc(p, init, &mut body_stms)?;
            lower.env.insert(p.name.clone(), v);
        }
        // Chunk arrays: slices [lo, lo+len) of the inputs.
        for (p, a) in fold_lam.params[1 + k..].iter().zip(arrs) {
            let base = lower.lookup_array(a)?;
            let TVal::GArr(mut g) = base else {
                return cerr("stream input must be global");
            };
            g.offset = g
                .offset
                .clone()
                .add(KExp::Var(lo).mul(g.strides[0].clone()));
            g.dims[0] = KExp::Var(len);
            lower.env.insert(p.name.clone(), TVal::GArr(g));
        }
        let results = lower.body(&fold_lam.body, &mut body_stms)?;
        // Write per-thread accumulator partials.
        let mut outs = Vec::new();
        for (j, r) in results.iter().enumerate() {
            let acc_ty = &fold_lam.ret[j];
            match acc_ty {
                Type::Scalar(t) => {
                    let arg = lower.kb.out_arg(j, *t);
                    let e = tval_scalar(r)?;
                    body_stms.push(KStm::GlobalWrite {
                        buf: arg,
                        index: KExp::GlobalId,
                        value: e,
                    });
                    outs.push(OutSpec {
                        elem: *t,
                        shape: vec![SubExp::i64(-1)],
                        perm: Vec::new(),
                        init_from: None,
                        steal: None,
                        write_into: None,
                    });
                }
                Type::Array(at) => {
                    let arg = lower.kb.out_arg(j, at.elem);
                    let mut dim_exprs = Vec::new();
                    for d in &at.dims {
                        dim_exprs.push(lower.kb.scalar_subexp(&SubExp::from(d), ScalarType::I64)?);
                    }
                    let rowlen = dim_exprs
                        .iter()
                        .cloned()
                        .reduce(|a, b| a.mul(b))
                        .unwrap_or(KExp::i64(1));
                    let base_off = KExp::GlobalId.mul(rowlen);
                    let mut strides = vec![KExp::i64(1); dim_exprs.len()];
                    for q in (0..dim_exprs.len().saturating_sub(1)).rev() {
                        strides[q] = strides[q + 1].clone().mul(dim_exprs[q + 1].clone());
                    }
                    let dst = GRef {
                        buf_arg: arg,
                        elem: at.elem,
                        dims: dim_exprs,
                        strides,
                        offset: base_off,
                    };
                    lower.write_into(&dst, r, &mut body_stms)?;
                    let mut shape = vec![SubExp::i64(-1)];
                    shape.extend(at.dims.iter().map(SubExp::from));
                    outs.push(OutSpec {
                        elem: at.elem,
                        shape,
                        perm: Vec::new(),
                        init_from: None,
                        steal: None,
                        write_into: None,
                    });
                }
            }
        }
        let kernel = kb.finish(body_stms);
        let pat: Vec<PatElem> = stm
            .pat
            .iter()
            .zip(&fold_lam.ret)
            .map(|(pe, t)| {
                let mut dims = vec![Size::Const(-1)];
                if let Type::Array(at) = t {
                    dims.extend(at.dims.iter().cloned());
                }
                PatElem::new(pe.name.clone(), Type::array_of(t.elem(), dims))
            })
            .collect();
        let partial_names: Vec<Name> = pat.iter().map(|pe| pe.name.clone()).collect();
        let spec = LaunchSpec {
            kernel: self.push_kernel(kernel),
            widths: vec![width.clone()],
            kind: LaunchKind::Stream {
                total: width.clone(),
            },
            args: kb_args(&kb),
            outs,
        };
        Ok(vec![
            HStm::Launch { pat, spec },
            HStm::Combine {
                pat: stm.pat.clone(),
                partials: partial_names,
                red_lam: red_lam.clone(),
                init: accs.to_vec(),
            },
        ])
    }

    /// A scatter kernel: one thread per index/value pair. The output buffer
    /// starts as a copy of the destination; the kernel writes only the
    /// scattered positions.
    fn scatter_launch(
        &mut self,
        stm: &Stm,
        width: &SubExp,
        dest: &Name,
        indices: &Name,
        values: &Name,
    ) -> CResult<Vec<HStm>> {
        let dty = self.types.get(dest).cloned().ok_or_else(|| CodegenError {
            message: format!("unknown array {dest}"),
        })?;
        let Type::Array(dat) = &dty else {
            return cerr("scatter destination must be an array");
        };
        if dat.rank() != 1 {
            return cerr("only rank-1 scatter kernels supported");
        }
        let mut kb = KBuild::new(self.kernel_name("scatter"), stm.prov.clone());
        let mut body = Vec::new();
        let ity = self
            .types
            .get(indices)
            .cloned()
            .ok_or_else(|| CodegenError {
                message: format!("unknown array {indices}"),
            })?;
        let vty = self
            .types
            .get(values)
            .cloned()
            .ok_or_else(|| CodegenError {
                message: format!("unknown array {values}"),
            })?;
        let iref = kb.array_ref(indices, &ity, Vec::new())?;
        let vref = kb.array_ref(values, &vty, Vec::new())?;
        let out_arg = kb.out_arg(0, dat.elem);
        let dlen = kb.scalar_subexp(&SubExp::from(&dat.dims[0]), ScalarType::I64)?;
        let (TVal::GArr(ig), TVal::GArr(vg)) = (&iref, &vref) else {
            return cerr("scatter inputs must be global");
        };
        let ix = kb.reg();
        body.push(KStm::GlobalRead {
            var: ix,
            buf: ig.buf_arg,
            index: KExp::GlobalId,
        });
        let v = kb.reg();
        body.push(KStm::GlobalRead {
            var: v,
            buf: vg.buf_arg,
            index: KExp::GlobalId,
        });
        let in_bounds = KExp::BinOp(
            BinOp::And,
            Box::new(KExp::Cmp(
                futhark_core::CmpOp::Ge,
                Box::new(KExp::Var(ix)),
                Box::new(KExp::i64(0)),
            )),
            Box::new(KExp::Cmp(
                futhark_core::CmpOp::Lt,
                Box::new(KExp::Var(ix)),
                Box::new(dlen),
            )),
        );
        body.push(KStm::If {
            cond: in_bounds,
            then_s: vec![KStm::GlobalWrite {
                buf: out_arg,
                index: KExp::Var(ix),
                value: KExp::Var(v),
            }],
            else_s: vec![],
        });
        let kernel = kb.finish(body);
        let spec = LaunchSpec {
            kernel: self.push_kernel(kernel),
            widths: vec![width.clone()],
            kind: LaunchKind::Grid,
            args: kb_args(&kb),
            outs: vec![OutSpec {
                elem: dat.elem,
                shape: dat.dims.iter().map(SubExp::from).collect(),
                perm: Vec::new(),
                init_from: Some(dest.clone()),
                steal: None,
                write_into: None,
            }],
        };
        Ok(vec![HStm::Launch {
            pat: stm.pat.clone(),
            spec,
        }])
    }

    fn push_kernel(&mut self, k: Kernel) -> usize {
        self.kernels.push(k);
        self.kernels.len() - 1
    }

    fn subexp_scalar_type(&self, se: &SubExp) -> CResult<ScalarType> {
        match se {
            SubExp::Const(k) => Ok(k.scalar_type()),
            SubExp::Var(v) => match self.types.get(v) {
                Some(Type::Scalar(t)) => Ok(*t),
                _ => cerr(format!("{v} is not a scalar")),
            },
        }
    }
}

fn kb_args(kb: &KBuild) -> Vec<ArgSpec> {
    kb.launch_args.clone()
}

fn scalar_of(t: &Type) -> CResult<ScalarType> {
    match t {
        Type::Scalar(s) => Ok(*s),
        t => cerr(format!("expected scalar type, got {t}")),
    }
}

fn tval_scalar(v: &TVal) -> CResult<KExp> {
    match v {
        TVal::Reg(r, _) => Ok(KExp::Var(*r)),
        _ => cerr("expected a scalar value"),
    }
}

// ---- Kernel builder ----

/// Incremental kernel construction state.
struct KBuild {
    name: String,
    params: Vec<KParam>,
    launch_args: Vec<ArgSpec>,
    scalar_cache: HashMap<Name, usize>,
    array_cache: HashMap<(Name, Vec<usize>), usize>,
    locals: Vec<(ScalarType, KExp)>,
    regs: u32,
    privs: usize,
    /// Provenance table under construction (deduplicated).
    provs: Vec<Prov>,
    prov_cache: HashMap<Prov, u32>,
    /// Provenance of the host statement this kernel implements; wraps the
    /// whole body so scaffolding (index math, output writes) is attributed
    /// to the originating site rather than left unattributed.
    root_prov: Prov,
}

impl KBuild {
    fn new(name: String, root_prov: Prov) -> Self {
        KBuild {
            name,
            params: Vec::new(),
            launch_args: Vec::new(),
            scalar_cache: HashMap::new(),
            array_cache: HashMap::new(),
            locals: Vec::new(),
            regs: 0,
            privs: 0,
            provs: Vec::new(),
            prov_cache: HashMap::new(),
            root_prov,
        }
    }

    /// Interns a provenance set, returning its table index.
    fn prov_idx(&mut self, p: &Prov) -> u32 {
        if let Some(&i) = self.prov_cache.get(p) {
            return i;
        }
        let i = self.provs.len() as u32;
        self.provs.push(p.clone());
        self.prov_cache.insert(p.clone(), i);
        i
    }

    fn reg(&mut self) -> Reg {
        self.regs += 1;
        self.regs - 1
    }

    fn priv_id(&mut self) -> PrivId {
        self.privs += 1;
        self.privs - 1
    }

    /// A scalar argument (or constant) as a kernel expression. `t` is the
    /// scalar's type, declared on the kernel parameter so the simulator can
    /// give the argument a correctly-typed register.
    fn scalar_subexp(&mut self, se: &SubExp, t: ScalarType) -> CResult<KExp> {
        Ok(match se {
            SubExp::Const(k) => KExp::Const(*k),
            SubExp::Var(v) => {
                let idx = *self.scalar_cache.entry(v.clone()).or_insert_with(|| {
                    self.params.push(KParam::Scalar(t));
                    self.launch_args.push(ArgSpec::ScalarVar(v.clone()));
                    self.params.len() - 1
                });
                KExp::ScalarArg(idx)
            }
        })
    }

    /// A global array argument with a requested layout; returns a base ref.
    fn array_ref(&mut self, name: &Name, ty: &Type, perm: Vec<usize>) -> CResult<TVal> {
        let Type::Array(at) = ty else {
            return cerr(format!("{name} is not an array"));
        };
        let key = (name.clone(), perm.clone());
        let arg = match self.array_cache.get(&key) {
            Some(&i) => i,
            None => {
                self.params.push(KParam::Buffer(at.elem));
                self.launch_args.push(ArgSpec::ArrayIn {
                    name: name.clone(),
                    perm: perm.clone(),
                });
                let i = self.params.len() - 1;
                self.array_cache.insert(key, i);
                i
            }
        };
        let dims: Vec<KExp> = at
            .dims
            .iter()
            .map(|d| self.scalar_subexp(&SubExp::from(d), ScalarType::I64))
            .collect::<CResult<_>>()?;
        Ok(TVal::GArr(GRef::new(arg, at.elem, dims, &perm)))
    }

    /// Adds an output buffer parameter.
    fn out_arg(&mut self, out_idx: usize, elem: ScalarType) -> usize {
        self.params.push(KParam::Buffer(elem));
        self.launch_args.push(ArgSpec::Out(out_idx));
        self.params.len() - 1
    }

    /// Emits grid-index computation: decomposes the linear thread id into
    /// per-level indices (innermost fastest).
    fn grid_indices(&mut self, widths: &[KExp], out: &mut Vec<KStm>) -> Vec<Reg> {
        let lin = self.reg();
        out.push(KStm::Assign {
            var: lin,
            exp: KExp::GlobalId,
        });
        let mut regs = vec![0; widths.len()];
        let mut cur = lin;
        for l in (0..widths.len()).rev() {
            let r = self.reg();
            if l == 0 {
                out.push(KStm::Assign {
                    var: r,
                    exp: KExp::Var(cur),
                });
            } else {
                out.push(KStm::Assign {
                    var: r,
                    exp: KExp::Var(cur).rem(widths[l].clone()),
                });
                let next = self.reg();
                out.push(KStm::Assign {
                    var: next,
                    exp: KExp::Var(cur).div(widths[l].clone()),
                });
                cur = next;
            }
            regs[l] = r;
        }
        regs
    }

    /// Emits the chunk computation for streaming kernels: returns registers
    /// holding the chunk start and length for this thread.
    fn stream_chunk(&mut self, n: &KExp, out: &mut Vec<KStm>) -> (Reg, Reg) {
        // c = ceil(n / T); lo = gid*c; len = max(0, min(c, n - lo)).
        let c = self.reg();
        out.push(KStm::Assign {
            var: c,
            exp: n
                .clone()
                .add(KExp::NumThreads.add(KExp::i64(-1)))
                .div(KExp::NumThreads),
        });
        let lo = self.reg();
        out.push(KStm::Assign {
            var: lo,
            exp: KExp::GlobalId.mul(KExp::Var(c)),
        });
        let len = self.reg();
        let remaining = n.clone().add(KExp::Var(lo).mul(KExp::i64(-1)));
        out.push(KStm::Assign {
            var: len,
            exp: KExp::BinOp(
                BinOp::Max,
                Box::new(KExp::i64(0)),
                Box::new(KExp::BinOp(
                    BinOp::Min,
                    Box::new(KExp::Var(c)),
                    Box::new(remaining),
                )),
            ),
        });
        (lo, len)
    }

    fn finish(&mut self, body: Vec<KStm>) -> Kernel {
        // Root provenance marker: inner At markers (stamped per core
        // statement during lowering) refine it, so only scaffolding with no
        // closer origin falls back to the root site.
        let body = if self.root_prov.is_empty() {
            body
        } else {
            let prov = self.prov_idx(&self.root_prov.clone());
            vec![KStm::At { prov, body }]
        };
        Kernel {
            name: self.name.clone(),
            params: self.params.clone(),
            locals: self.locals.clone(),
            num_regs: self.regs,
            num_priv: self.privs,
            body,
            prov_table: self.provs.clone(),
        }
    }
}

// ---- Thread-local values ----

/// A reference into a global buffer with symbolic dims/strides (logical
/// dimension order).
#[derive(Debug, Clone)]
struct GRef {
    buf_arg: usize,
    elem: ScalarType,
    dims: Vec<KExp>,
    strides: Vec<KExp>,
    offset: KExp,
}

impl GRef {
    /// Builds a ref with strides derived from `perm` (physical order).
    fn new(buf_arg: usize, elem: ScalarType, dims: Vec<KExp>, perm: &[usize]) -> GRef {
        let rank = dims.len();
        let physical: Vec<usize> = if perm.is_empty() {
            (0..rank).collect()
        } else {
            perm.to_vec()
        };
        // stride(logical i) = product of physical dims after i's position.
        let mut strides = vec![KExp::i64(1); rank];
        for (pos, &l) in physical.iter().enumerate() {
            let mut s = KExp::i64(1);
            for &l2 in &physical[pos + 1..] {
                s = s.mul(dims[l2].clone());
            }
            strides[l] = s;
        }
        GRef {
            buf_arg,
            elem,
            dims,
            strides,
            offset: KExp::i64(0),
        }
    }

    fn slice(&self, idxs: &[KExp]) -> GRef {
        let mut offset = self.offset.clone();
        for (i, idx) in idxs.iter().enumerate() {
            offset = offset.add(idx.clone().mul(self.strides[i].clone()));
        }
        GRef {
            buf_arg: self.buf_arg,
            elem: self.elem,
            dims: self.dims[idxs.len()..].to_vec(),
            strides: self.strides[idxs.len()..].to_vec(),
            offset,
        }
    }
}

/// A reference into a per-thread private array.
#[derive(Debug, Clone)]
struct PRef {
    id: PrivId,
    elem: ScalarType,
    dims: Vec<KExp>,
    strides: Vec<KExp>,
    offset: KExp,
}

impl PRef {
    fn slice(&self, idxs: &[KExp]) -> PRef {
        let mut offset = self.offset.clone();
        for (i, idx) in idxs.iter().enumerate() {
            offset = offset.add(idx.clone().mul(self.strides[i].clone()));
        }
        PRef {
            id: self.id,
            elem: self.elem,
            dims: self.dims[idxs.len()..].to_vec(),
            strides: self.strides[idxs.len()..].to_vec(),
            offset,
        }
    }
}

/// A thread-local value.
#[derive(Debug, Clone)]
enum TVal {
    /// A scalar in a register.
    Reg(Reg, ScalarType),
    /// A view into global memory.
    GArr(GRef),
    /// A view into a private array.
    Priv(PRef),
    /// A virtual `iota n` (element `i` reads as `i`).
    VirtIota(KExp),
    /// A virtual `replicate` of a scalar.
    VirtRepl {
        /// Element value.
        value: KExp,
        /// Element type.
        elem: ScalarType,
        /// Dimensions.
        dims: Vec<KExp>,
    },
}

impl TVal {
    fn rank(&self) -> usize {
        match self {
            TVal::Reg(..) => 0,
            TVal::GArr(g) => g.dims.len(),
            TVal::Priv(p) => p.dims.len(),
            TVal::VirtIota(_) => 1,
            TVal::VirtRepl { dims, .. } => dims.len(),
        }
    }

    fn elem(&self) -> ScalarType {
        match self {
            TVal::Reg(_, t) => *t,
            TVal::GArr(g) => g.elem,
            TVal::Priv(p) => p.elem,
            TVal::VirtIota(_) => ScalarType::I64,
            TVal::VirtRepl { elem, .. } => *elem,
        }
    }

    fn dims(&self) -> Vec<KExp> {
        match self {
            TVal::Reg(..) => vec![],
            TVal::GArr(g) => g.dims.clone(),
            TVal::Priv(p) => p.dims.clone(),
            TVal::VirtIota(n) => vec![n.clone()],
            TVal::VirtRepl { dims, .. } => dims.clone(),
        }
    }
}

fn slice_tval(v: &TVal, idxs: &[KExp]) -> CResult<TVal> {
    Ok(match v {
        TVal::GArr(g) => TVal::GArr(g.slice(idxs)),
        TVal::Priv(p) => TVal::Priv(p.slice(idxs)),
        TVal::VirtRepl { value, elem, dims } => TVal::VirtRepl {
            value: value.clone(),
            elem: *elem,
            dims: dims[idxs.len()..].to_vec(),
        },
        TVal::VirtIota(_) => return cerr("cannot slice an iota (rank 1)"),
        TVal::Reg(..) => return cerr("cannot slice a scalar"),
    })
}

// ---- Thread body lowering ----

struct Lower<'a> {
    cg_types: &'a HashMap<Name, Type>,
    kb: &'a mut KBuild,
    env: HashMap<Name, TVal>,
}

impl<'a> Lower<'a> {
    fn subexp(&mut self, se: &SubExp, out: &mut Vec<KStm>) -> CResult<KExp> {
        match se {
            SubExp::Const(k) => Ok(KExp::Const(*k)),
            SubExp::Var(v) => match self.env.get(v) {
                Some(TVal::Reg(r, _)) => Ok(KExp::Var(*r)),
                Some(_) => cerr(format!("{v} is an array, not a scalar")),
                None => {
                    let _ = out;
                    // A free host scalar: declare the kernel param with the
                    // variable's real type (the simulator type-checks args).
                    let t = match self.cg_types.get(v) {
                        Some(ty) => scalar_of(ty)?,
                        None => ScalarType::I64,
                    };
                    self.kb.scalar_subexp(se, t)
                }
            },
        }
    }

    fn lookup_array(&mut self, v: &Name) -> CResult<TVal> {
        if let Some(t) = self.env.get(v) {
            return Ok(t.clone());
        }
        // A free (host) array used inside the kernel.
        let ty = self.cg_types.get(v).cloned().ok_or_else(|| CodegenError {
            message: format!("unknown array {v} in kernel body"),
        })?;
        let r = self.kb.array_ref(v, &ty, Vec::new())?;
        self.env.insert(v.clone(), r.clone());
        Ok(r)
    }

    /// Reads a single element (full indexing) or produces a slice.
    fn read_elem_or_slice(
        &mut self,
        v: &TVal,
        idxs: &[KExp],
        out: &mut Vec<KStm>,
    ) -> CResult<TVal> {
        if idxs.len() < v.rank() {
            return slice_tval(v, idxs);
        }
        let t = v.elem();
        let r = self.kb.reg();
        match v {
            TVal::GArr(g) => {
                let s = g.slice(idxs);
                out.push(KStm::GlobalRead {
                    var: r,
                    buf: g.buf_arg,
                    index: s.offset,
                });
            }
            TVal::Priv(p) => {
                let s = p.slice(idxs);
                out.push(KStm::PrivRead {
                    var: r,
                    arr: p.id,
                    index: s.offset,
                });
            }
            TVal::VirtIota(_) => {
                out.push(KStm::Assign {
                    var: r,
                    exp: idxs[0].clone(),
                });
            }
            TVal::VirtRepl { value, .. } => {
                out.push(KStm::Assign {
                    var: r,
                    exp: value.clone(),
                });
            }
            TVal::Reg(..) => return cerr("indexing a scalar"),
        }
        Ok(TVal::Reg(r, t))
    }

    /// Materialises an array value into a fresh private array.
    fn materialise(&mut self, v: &TVal, out: &mut Vec<KStm>) -> CResult<PRef> {
        let dims = v.dims();
        let elem = v.elem();
        let total = dims
            .iter()
            .cloned()
            .reduce(|a, b| a.mul(b))
            .unwrap_or(KExp::i64(1));
        let id = self.kb.priv_id();
        out.push(KStm::PrivAlloc {
            arr: id,
            elem,
            size: total,
        });
        let mut strides = vec![KExp::i64(1); dims.len()];
        for i in (0..dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1].clone().mul(dims[i + 1].clone());
        }
        let dst = PRef {
            id,
            elem,
            dims,
            strides,
            offset: KExp::i64(0),
        };
        self.copy_elements(&CopyDst::Priv(dst.clone()), v, out)?;
        Ok(dst)
    }

    /// Copies every element of `src` into the destination view.
    fn copy_elements(&mut self, dst: &CopyDst, src: &TVal, out: &mut Vec<KStm>) -> CResult<()> {
        let dims = src.dims();
        // Nested loops over the logical dims.
        let mut idx_regs: Vec<Reg> = Vec::new();
        for _ in &dims {
            idx_regs.push(self.kb.reg());
        }
        // Build from innermost out.
        let idxs: Vec<KExp> = idx_regs.iter().map(|&r| KExp::Var(r)).collect();
        let mut inner: Vec<KStm> = Vec::new();
        let val = self.read_elem_or_slice(src, &idxs, &mut inner)?;
        let ve = tval_scalar(&val)?;
        match dst {
            CopyDst::Priv(p) => {
                let s = p.slice(&idxs);
                inner.push(KStm::PrivWrite {
                    arr: p.id,
                    index: s.offset,
                    value: ve,
                });
            }
            CopyDst::Global(g) => {
                let s = g.slice(&idxs);
                inner.push(KStm::GlobalWrite {
                    buf: g.buf_arg,
                    index: s.offset,
                    value: ve,
                });
            }
        }
        let mut block = inner;
        for l in (0..dims.len()).rev() {
            block = vec![KStm::For {
                var: idx_regs[l],
                bound: dims[l].clone(),
                body: block,
            }];
        }
        out.extend(block);
        Ok(())
    }

    /// Writes a result value into a destination view (global output).
    fn write_into(&mut self, dst: &GRef, src: &TVal, out: &mut Vec<KStm>) -> CResult<()> {
        match src {
            TVal::Reg(r, _) => {
                out.push(KStm::GlobalWrite {
                    buf: dst.buf_arg,
                    index: dst.offset.clone(),
                    value: KExp::Var(*r),
                });
                Ok(())
            }
            arr => self.copy_elements(&CopyDst::Global(dst.clone()), arr, out),
        }
    }

    /// Initialises a (consumable) accumulator parameter from its initial
    /// value: scalars to registers, arrays to private copies.
    fn init_acc(&mut self, p: &Param, init: &SubExp, out: &mut Vec<KStm>) -> CResult<TVal> {
        match &p.ty {
            Type::Scalar(t) => {
                let e = self.subexp(init, out)?;
                let r = self.kb.reg();
                out.push(KStm::Assign { var: r, exp: e });
                Ok(TVal::Reg(r, *t))
            }
            Type::Array(_) => {
                let v = match init {
                    SubExp::Var(n) => self.lookup_array(n)?,
                    SubExp::Const(_) => return cerr("array accumulator from constant"),
                };
                let pr = self.materialise(&v, out)?;
                Ok(TVal::Priv(pr))
            }
        }
    }

    fn body(&mut self, body: &Body, out: &mut Vec<KStm>) -> CResult<Vec<TVal>> {
        for stm in &body.stms {
            // Everything emitted for this core statement is attributed to
            // its source site (inner statements re-wrap with their own,
            // finer provenance as lowering recurses).
            let start = out.len();
            let vals = self.exp(&stm.exp, &stm.pat, out)?;
            if !stm.prov.is_empty() && out.len() > start {
                let prov = self.kb.prov_idx(&stm.prov);
                let inner: Vec<KStm> = out.drain(start..).collect();
                out.push(KStm::At { prov, body: inner });
            }
            for (pe, v) in stm.pat.iter().zip(vals) {
                self.env.insert(pe.name.clone(), v);
            }
        }
        body.result
            .iter()
            .map(|se| match se {
                SubExp::Const(k) => {
                    let r = self.kb.reg();
                    out.push(KStm::Assign {
                        var: r,
                        exp: KExp::Const(*k),
                    });
                    Ok(TVal::Reg(r, k.scalar_type()))
                }
                SubExp::Var(v) => self
                    .env
                    .get(v)
                    .cloned()
                    .ok_or(())
                    .or_else(|_| self.lookup_array(v)),
            })
            .collect()
    }

    fn exp(&mut self, e: &Exp, pat: &[PatElem], out: &mut Vec<KStm>) -> CResult<Vec<TVal>> {
        match e {
            Exp::SubExp(se) => match se {
                SubExp::Const(k) => {
                    let r = self.kb.reg();
                    out.push(KStm::Assign {
                        var: r,
                        exp: KExp::Const(*k),
                    });
                    Ok(vec![TVal::Reg(r, k.scalar_type())])
                }
                SubExp::Var(v) => Ok(vec![self.env.get(v).cloned().ok_or(()).or_else(|_| {
                    if matches!(self.cg_types.get(v), Some(Type::Scalar(_))) {
                        let t = scalar_of(&self.cg_types[v])?;
                        let e = self.kb.scalar_subexp(se, t)?;
                        let r = self.kb.reg();
                        out.push(KStm::Assign { var: r, exp: e });
                        Ok(TVal::Reg(r, t))
                    } else {
                        self.lookup_array(v)
                    }
                })?]),
            },
            Exp::BinOp(op, a, b) => {
                let x = self.subexp(a, out)?;
                let y = self.subexp(b, out)?;
                let r = self.kb.reg();
                out.push(KStm::Assign {
                    var: r,
                    exp: KExp::BinOp(*op, Box::new(x), Box::new(y)),
                });
                Ok(vec![TVal::Reg(r, scalar_of(&pat[0].ty)?)])
            }
            Exp::UnOp(op, a) => {
                let x = self.subexp(a, out)?;
                let r = self.kb.reg();
                out.push(KStm::Assign {
                    var: r,
                    exp: KExp::UnOp(*op, Box::new(x)),
                });
                Ok(vec![TVal::Reg(r, scalar_of(&pat[0].ty)?)])
            }
            Exp::Cmp(op, a, b) => {
                let x = self.subexp(a, out)?;
                let y = self.subexp(b, out)?;
                let r = self.kb.reg();
                out.push(KStm::Assign {
                    var: r,
                    exp: KExp::Cmp(*op, Box::new(x), Box::new(y)),
                });
                Ok(vec![TVal::Reg(r, ScalarType::Bool)])
            }
            Exp::Convert(t, a) => {
                let x = self.subexp(a, out)?;
                let r = self.kb.reg();
                out.push(KStm::Assign {
                    var: r,
                    exp: KExp::Convert(*t, Box::new(x)),
                });
                Ok(vec![TVal::Reg(r, *t)])
            }
            Exp::Index { array, indices } => {
                let v = self.lookup_array(array)?;
                let idxs: Vec<KExp> = indices
                    .iter()
                    .map(|i| self.subexp(i, out))
                    .collect::<CResult<_>>()?;
                Ok(vec![self.read_elem_or_slice(&v, &idxs, out)?])
            }
            Exp::Update {
                array,
                indices,
                value,
            } => {
                let v = self.lookup_array(array)?;
                // Consumed target: ensure a private copy (global inputs are
                // never written by thread bodies).
                let pr = match v {
                    TVal::Priv(p) => p,
                    other => self.materialise(&other, out)?,
                };
                let idxs: Vec<KExp> = indices
                    .iter()
                    .map(|i| self.subexp(i, out))
                    .collect::<CResult<_>>()?;
                if idxs.len() == pr.dims.len() {
                    let s = pr.slice(&idxs);
                    let val = self.subexp(value, out)?;
                    out.push(KStm::PrivWrite {
                        arr: pr.id,
                        index: s.offset,
                        value: val,
                    });
                } else {
                    // Bulk row update.
                    let dst = pr.slice(&idxs);
                    let srcv = match value {
                        SubExp::Var(n) => self.lookup_array(n)?,
                        SubExp::Const(_) => return cerr("bulk update from constant"),
                    };
                    self.copy_elements(&CopyDst::Priv(dst), &srcv, out)?;
                }
                Ok(vec![TVal::Priv(pr)])
            }
            Exp::Iota(n) => {
                let e = self.subexp(n, out)?;
                Ok(vec![TVal::VirtIota(e)])
            }
            Exp::Replicate(n, v) => {
                let ne = self.subexp(n, out)?;
                match v {
                    SubExp::Const(k) => Ok(vec![TVal::VirtRepl {
                        value: KExp::Const(*k),
                        elem: k.scalar_type(),
                        dims: vec![ne],
                    }]),
                    SubExp::Var(name) => match self.env.get(name).cloned() {
                        Some(TVal::Reg(r, t)) => Ok(vec![TVal::VirtRepl {
                            value: KExp::Var(r),
                            elem: t,
                            dims: vec![ne],
                        }]),
                        Some(arr) => {
                            // replicate of an array value: materialise.
                            let mut dims = vec![ne];
                            dims.extend(arr.dims());
                            let elem = arr.elem();
                            let total = dims.iter().cloned().reduce(|a, b| a.mul(b)).unwrap();
                            let id = self.kb.priv_id();
                            out.push(KStm::PrivAlloc {
                                arr: id,
                                elem,
                                size: total,
                            });
                            let mut strides = vec![KExp::i64(1); dims.len()];
                            for i in (0..dims.len() - 1).rev() {
                                strides[i] = strides[i + 1].clone().mul(dims[i + 1].clone());
                            }
                            let pr = PRef {
                                id,
                                elem,
                                dims: dims.clone(),
                                strides,
                                offset: KExp::i64(0),
                            };
                            let i = self.kb.reg();
                            let mut inner = Vec::new();
                            let row = pr.slice(&[KExp::Var(i)]);
                            self.copy_elements(&CopyDst::Priv(row), &arr, &mut inner)?;
                            out.push(KStm::For {
                                var: i,
                                bound: dims[0].clone(),
                                body: inner,
                            });
                            Ok(vec![TVal::Priv(pr)])
                        }
                        None => {
                            let t = scalar_of(
                                &self
                                    .cg_types
                                    .get(name)
                                    .cloned()
                                    .unwrap_or(Type::Scalar(ScalarType::I64)),
                            )?;
                            let e = self.kb.scalar_subexp(v, t)?;
                            Ok(vec![TVal::VirtRepl {
                                value: e,
                                elem: t,
                                dims: vec![ne],
                            }])
                        }
                    },
                }
            }
            Exp::Rearrange { perm, array } => {
                let v = self.lookup_array(array)?;
                match v {
                    TVal::GArr(g) => {
                        let dims = perm.iter().map(|&p| g.dims[p].clone()).collect();
                        let strides = perm.iter().map(|&p| g.strides[p].clone()).collect();
                        Ok(vec![TVal::GArr(GRef {
                            buf_arg: g.buf_arg,
                            elem: g.elem,
                            dims,
                            strides,
                            offset: g.offset,
                        })])
                    }
                    TVal::Priv(p) => {
                        let dims = perm.iter().map(|&q| p.dims[q].clone()).collect();
                        let strides = perm.iter().map(|&q| p.strides[q].clone()).collect();
                        Ok(vec![TVal::Priv(PRef {
                            id: p.id,
                            elem: p.elem,
                            dims,
                            strides,
                            offset: p.offset,
                        })])
                    }
                    other => Ok(vec![other]), // rank-1 virtuals
                }
            }
            Exp::Reshape { shape, array } => {
                let v = self.lookup_array(array)?;
                // Materialise then view row-major with the new shape.
                let pr = self.materialise(&v, out)?;
                let dims: Vec<KExp> = shape
                    .iter()
                    .map(|s| self.subexp(s, out))
                    .collect::<CResult<_>>()?;
                let mut strides = vec![KExp::i64(1); dims.len()];
                for i in (0..dims.len().saturating_sub(1)).rev() {
                    strides[i] = strides[i + 1].clone().mul(dims[i + 1].clone());
                }
                Ok(vec![TVal::Priv(PRef {
                    id: pr.id,
                    elem: pr.elem,
                    dims,
                    strides,
                    offset: KExp::i64(0),
                })])
            }
            Exp::Copy(a) => {
                let v = self.lookup_array(a)?;
                let pr = self.materialise(&v, out)?;
                Ok(vec![TVal::Priv(pr)])
            }
            Exp::Concat { arrays } => {
                let vals: Vec<TVal> = arrays
                    .iter()
                    .map(|a| self.lookup_array(a))
                    .collect::<CResult<_>>()?;
                let elem = vals[0].elem();
                let total = vals
                    .iter()
                    .map(|v| {
                        v.dims()
                            .iter()
                            .cloned()
                            .reduce(|a, b| a.mul(b))
                            .unwrap_or(KExp::i64(1))
                    })
                    .reduce(|a, b| a.add(b))
                    .unwrap();
                let id = self.kb.priv_id();
                out.push(KStm::PrivAlloc {
                    arr: id,
                    elem,
                    size: total.clone(),
                });
                // Sequential copy with a running offset register.
                let off = self.kb.reg();
                out.push(KStm::Assign {
                    var: off,
                    exp: KExp::i64(0),
                });
                for v in &vals {
                    let dims = v.dims();
                    let i = self.kb.reg();
                    let mut inner = Vec::new();
                    let x = self.read_elem_or_slice(v, &[KExp::Var(i)], &mut inner)?;
                    match x {
                        TVal::Reg(r, _) => inner.push(KStm::PrivWrite {
                            arr: id,
                            index: KExp::Var(off).add(KExp::Var(i)),
                            value: KExp::Var(r),
                        }),
                        _ => return cerr("concat of multi-dim arrays in kernels"),
                    }
                    out.push(KStm::For {
                        var: i,
                        bound: dims[0].clone(),
                        body: inner,
                    });
                    out.push(KStm::Assign {
                        var: off,
                        exp: KExp::Var(off).add(dims[0].clone()),
                    });
                }
                let first_dims = total;
                Ok(vec![TVal::Priv(PRef {
                    id,
                    elem,
                    dims: vec![first_dims],
                    strides: vec![KExp::i64(1)],
                    offset: KExp::i64(0),
                })])
            }
            Exp::If {
                cond,
                then_body,
                else_body,
                ret,
            } => {
                let c = self.subexp(cond, out)?;
                // Result registers / private arrays per return value.
                let mut result_slots: Vec<TVal> = Vec::new();
                for t in ret {
                    match t {
                        Type::Scalar(s) => {
                            let r = self.kb.reg();
                            result_slots.push(TVal::Reg(r, *s));
                        }
                        Type::Array(_) => {
                            // Allocate lazily inside branches via copy; use
                            // a priv allocated with the then-branch's size.
                            let id = self.kb.priv_id();
                            result_slots.push(TVal::Priv(PRef {
                                id,
                                elem: t.elem(),
                                dims: vec![],
                                strides: vec![],
                                offset: KExp::i64(0),
                            }));
                        }
                    }
                }
                let lower_branch =
                    |lower: &mut Self, b: &Body| -> CResult<(Vec<KStm>, Vec<TVal>)> {
                        let mut stms = Vec::new();
                        let vals = lower.body(b, &mut stms)?;
                        Ok((stms, vals))
                    };
                let (mut then_s, tvals) = lower_branch(self, then_body)?;
                let (mut else_s, evals) = lower_branch(self, else_body)?;
                let mut final_slots = Vec::new();
                for ((slot, tv), ev) in result_slots.iter().zip(&tvals).zip(&evals) {
                    match slot {
                        TVal::Reg(r, t) => {
                            then_s.push(KStm::Assign {
                                var: *r,
                                exp: tval_scalar(tv)?,
                            });
                            else_s.push(KStm::Assign {
                                var: *r,
                                exp: tval_scalar(ev)?,
                            });
                            final_slots.push(TVal::Reg(*r, *t));
                        }
                        TVal::Priv(p) => {
                            // Copy branch results into the shared priv.
                            let dims = tv.dims();
                            let total = dims
                                .iter()
                                .cloned()
                                .reduce(|a, b| a.mul(b))
                                .unwrap_or(KExp::i64(1));
                            let mut strides = vec![KExp::i64(1); dims.len()];
                            for i in (0..dims.len().saturating_sub(1)).rev() {
                                strides[i] = strides[i + 1].clone().mul(dims[i + 1].clone());
                            }
                            let dst = PRef {
                                id: p.id,
                                elem: p.elem,
                                dims: dims.clone(),
                                strides,
                                offset: KExp::i64(0),
                            };
                            then_s.push(KStm::PrivAlloc {
                                arr: p.id,
                                elem: p.elem,
                                size: total.clone(),
                            });
                            self.copy_elements(&CopyDst::Priv(dst.clone()), tv, &mut then_s)?;
                            else_s.push(KStm::PrivAlloc {
                                arr: p.id,
                                elem: p.elem,
                                size: total,
                            });
                            self.copy_elements(&CopyDst::Priv(dst.clone()), ev, &mut else_s)?;
                            final_slots.push(TVal::Priv(dst));
                        }
                        _ => unreachable!(),
                    }
                }
                out.push(KStm::If {
                    cond: c,
                    then_s,
                    else_s,
                });
                Ok(final_slots)
            }
            Exp::Loop { params, form, body } => self.lower_loop(params, form, body, out),
            Exp::Soac(soac) => self.lower_soac(soac, pat, out),
            Exp::Apply { .. } => cerr("function call in kernel body (inlining missed it)"),
        }
    }

    fn lower_loop(
        &mut self,
        params: &[(Param, SubExp)],
        form: &LoopForm,
        body: &Body,
        out: &mut Vec<KStm>,
    ) -> CResult<Vec<TVal>> {
        // Initialise merge values.
        let mut merge: Vec<TVal> = Vec::new();
        for (p, init) in params {
            let v = self.init_acc(p, init, out)?;
            self.env.insert(p.name.clone(), v.clone());
            merge.push(v);
        }
        let write_back = |lower: &mut Self,
                          merge: &[TVal],
                          results: &[TVal],
                          stms: &mut Vec<KStm>|
         -> CResult<()> {
            for (m, r) in merge.iter().zip(results) {
                match (m, r) {
                    (TVal::Reg(mr, _), rv) => {
                        stms.push(KStm::Assign {
                            var: *mr,
                            exp: tval_scalar(rv)?,
                        });
                    }
                    (TVal::Priv(mp), TVal::Priv(rp)) if mp.id == rp.id => {}
                    (TVal::Priv(mp), rv) => {
                        let total = mp
                            .dims
                            .iter()
                            .cloned()
                            .reduce(|a, b| a.mul(b))
                            .unwrap_or(KExp::i64(1));
                        let _ = total;
                        lower.copy_elements(&CopyDst::Priv(mp.clone()), rv, stms)?;
                    }
                    _ => return cerr("unsupported loop merge shape"),
                }
            }
            Ok(())
        };
        match form {
            LoopForm::For { var, bound } => {
                let b = self.subexp(bound, out)?;
                let i = self.kb.reg();
                self.env.insert(var.clone(), TVal::Reg(i, ScalarType::I64));
                let mut inner = Vec::new();
                let results = self.body(body, &mut inner)?;
                write_back(self, &merge, &results, &mut inner)?;
                out.push(KStm::For {
                    var: i,
                    bound: b,
                    body: inner,
                });
            }
            LoopForm::While(cond) => {
                // Evaluate the condition before the loop and at the end of
                // each iteration.
                let mut pre = Vec::new();
                let cvals = self.body(cond, &mut pre)?;
                let c0 = tval_scalar(&cvals[0])?;
                let cr = self.kb.reg();
                pre.push(KStm::Assign { var: cr, exp: c0 });
                out.extend(pre);
                let mut inner = Vec::new();
                let results = self.body(body, &mut inner)?;
                write_back(self, &merge, &results, &mut inner)?;
                let cvals2 = self.body(cond, &mut inner)?;
                let c2 = tval_scalar(&cvals2[0])?;
                inner.push(KStm::Assign { var: cr, exp: c2 });
                out.push(KStm::While {
                    cond: KExp::Var(cr),
                    body: inner,
                });
            }
        }
        Ok(merge)
    }

    fn lower_soac(
        &mut self,
        soac: &Soac,
        pat: &[PatElem],
        out: &mut Vec<KStm>,
    ) -> CResult<Vec<TVal>> {
        match soac {
            Soac::Map { width, lam, arrs } => {
                let w = self.subexp(width, out)?;
                let inputs: Vec<TVal> = arrs
                    .iter()
                    .map(|a| self.lookup_array(a))
                    .collect::<CResult<_>>()?;
                // Output private arrays.
                let mut outputs: Vec<PRef> = Vec::new();
                for (t, _pe) in lam.ret.iter().zip(pat) {
                    let mut dims = vec![w.clone()];
                    if let Type::Array(at) = t {
                        for d in &at.dims {
                            dims.push(self.kb.scalar_subexp(&SubExp::from(d), ScalarType::I64)?);
                        }
                    }
                    let elem = t.elem();
                    let total = dims.iter().cloned().reduce(|a, b| a.mul(b)).unwrap();
                    let id = self.kb.priv_id();
                    out.push(KStm::PrivAlloc {
                        arr: id,
                        elem,
                        size: total,
                    });
                    let mut strides = vec![KExp::i64(1); dims.len()];
                    for i in (0..dims.len() - 1).rev() {
                        strides[i] = strides[i + 1].clone().mul(dims[i + 1].clone());
                    }
                    outputs.push(PRef {
                        id,
                        elem,
                        dims,
                        strides,
                        offset: KExp::i64(0),
                    });
                }
                let i = self.kb.reg();
                let mut inner = Vec::new();
                for (p, v) in lam.params.iter().zip(&inputs) {
                    let elem = self.read_elem_or_slice(v, &[KExp::Var(i)], &mut inner)?;
                    self.env.insert(p.name.clone(), elem);
                }
                let results = self.body(&lam.body, &mut inner)?;
                for (r, o) in results.iter().zip(&outputs) {
                    let dst = o.slice(&[KExp::Var(i)]);
                    match r {
                        TVal::Reg(reg, _) => inner.push(KStm::PrivWrite {
                            arr: o.id,
                            index: dst.offset.clone(),
                            value: KExp::Var(*reg),
                        }),
                        arr => {
                            self.copy_elements(&CopyDst::Priv(dst), arr, &mut inner)?;
                        }
                    }
                }
                out.push(KStm::For {
                    var: i,
                    bound: w,
                    body: inner,
                });
                Ok(outputs.into_iter().map(TVal::Priv).collect())
            }
            Soac::Reduce {
                width,
                lam,
                neutral,
                arrs,
                ..
            } => self.sequential_fold(width, lam, None, neutral, arrs, out),
            Soac::Redomap {
                width,
                red_lam,
                map_lam,
                neutral,
                arrs,
                ..
            } => self.sequential_fold(width, red_lam, Some(map_lam), neutral, arrs, out),
            Soac::Scan {
                width,
                lam,
                neutral,
                arrs,
            } => {
                // Sequential scan: carry registers + output priv arrays.
                let w = self.subexp(width, out)?;
                let inputs: Vec<TVal> = arrs
                    .iter()
                    .map(|a| self.lookup_array(a))
                    .collect::<CResult<_>>()?;
                let mut carries = Vec::new();
                for ne in neutral {
                    let e = self.subexp(ne, out)?;
                    let r = self.kb.reg();
                    out.push(KStm::Assign { var: r, exp: e });
                    carries.push(r);
                }
                let mut outputs = Vec::new();
                for t in &lam.ret {
                    let elem = t.elem();
                    let id = self.kb.priv_id();
                    out.push(KStm::PrivAlloc {
                        arr: id,
                        elem,
                        size: w.clone(),
                    });
                    outputs.push(PRef {
                        id,
                        elem,
                        dims: vec![w.clone()],
                        strides: vec![KExp::i64(1)],
                        offset: KExp::i64(0),
                    });
                }
                let i = self.kb.reg();
                let mut inner = Vec::new();
                let k = neutral.len();
                for (j, p) in lam.params.iter().enumerate() {
                    if j < k {
                        self.env
                            .insert(p.name.clone(), TVal::Reg(carries[j], scalar_of(&p.ty)?));
                    } else {
                        let elem =
                            self.read_elem_or_slice(&inputs[j - k], &[KExp::Var(i)], &mut inner)?;
                        self.env.insert(p.name.clone(), elem);
                    }
                }
                let results = self.body(&lam.body, &mut inner)?;
                for ((r, o), c) in results.iter().zip(&outputs).zip(&carries) {
                    let e = tval_scalar(r)?;
                    inner.push(KStm::Assign {
                        var: *c,
                        exp: e.clone(),
                    });
                    inner.push(KStm::PrivWrite {
                        arr: o.id,
                        index: KExp::Var(i),
                        value: e,
                    });
                }
                out.push(KStm::For {
                    var: i,
                    bound: w,
                    body: inner,
                });
                Ok(outputs.into_iter().map(TVal::Priv).collect())
            }
            Soac::StreamSeq {
                width,
                lam,
                accs,
                arrs,
            } => self.inline_stream(width, lam, accs, arrs, out),
            Soac::StreamRed {
                width,
                fold_lam,
                accs,
                arrs,
                ..
            } => self.inline_stream(width, fold_lam, accs, arrs, out),
            Soac::StreamMap { width, lam, arrs } => self.inline_stream(width, lam, &[], arrs, out),
            _ => cerr("unsupported SOAC in kernel body"),
        }
    }

    /// Single-chunk inlining of a streaming SOAC inside a thread body:
    /// `stream f a ≡ f n a` (Section 4.1, chunk-size maximisation).
    fn inline_stream(
        &mut self,
        width: &SubExp,
        lam: &Lambda,
        accs: &[SubExp],
        arrs: &[Name],
        out: &mut Vec<KStm>,
    ) -> CResult<Vec<TVal>> {
        let w = self.subexp(width, out)?;
        let chunk = &lam.params[0];
        let cr = self.kb.reg();
        out.push(KStm::Assign { var: cr, exp: w });
        self.env
            .insert(chunk.name.clone(), TVal::Reg(cr, ScalarType::I64));
        let k = accs.len();
        for (p, init) in lam.params[1..1 + k].iter().zip(accs) {
            let v = self.init_acc(p, init, out)?;
            self.env.insert(p.name.clone(), v);
        }
        for (p, a) in lam.params[1 + k..].iter().zip(arrs) {
            let v = self.lookup_array(a)?;
            self.env.insert(p.name.clone(), v);
        }
        self.body(&lam.body, out)
    }

    /// Sequential reduce/redomap: accumulator registers + loop.
    fn sequential_fold(
        &mut self,
        width: &SubExp,
        red_lam: &Lambda,
        map_lam: Option<&Lambda>,
        neutral: &[SubExp],
        arrs: &[Name],
        out: &mut Vec<KStm>,
    ) -> CResult<Vec<TVal>> {
        if !red_lam.ret.iter().all(Type::is_scalar) {
            return cerr("array-valued reduction operators must be flattened (G5)");
        }
        let w = self.subexp(width, out)?;
        let inputs: Vec<TVal> = arrs
            .iter()
            .map(|a| self.lookup_array(a))
            .collect::<CResult<_>>()?;
        let mut accs = Vec::new();
        for ne in neutral {
            let e = self.subexp(ne, out)?;
            let r = self.kb.reg();
            out.push(KStm::Assign { var: r, exp: e });
            accs.push(r);
        }
        let i = self.kb.reg();
        let mut inner = Vec::new();
        let mut elems: Vec<TVal> = Vec::new();
        for v in &inputs {
            elems.push(self.read_elem_or_slice(v, &[KExp::Var(i)], &mut inner)?);
        }
        let mapped = match map_lam {
            Some(ml) => {
                for (p, v) in ml.params.iter().zip(&elems) {
                    self.env.insert(p.name.clone(), v.clone());
                }
                self.body(&ml.body, &mut inner)?
            }
            None => elems,
        };
        let k = accs.len();
        for (j, p) in red_lam.params.iter().enumerate() {
            let v = if j < k {
                TVal::Reg(accs[j], scalar_of(&p.ty)?)
            } else {
                mapped[j - k].clone()
            };
            self.env.insert(p.name.clone(), v);
        }
        let results = self.body(&red_lam.body, &mut inner)?;
        for (r, acc) in results.iter().zip(&accs) {
            let e = tval_scalar(r)?;
            inner.push(KStm::Assign { var: *acc, exp: e });
        }
        out.push(KStm::For {
            var: i,
            bound: w,
            body: inner,
        });
        Ok(accs
            .iter()
            .zip(&red_lam.ret)
            .map(|(r, t)| TVal::Reg(*r, t.elem()))
            .collect())
    }
}

enum CopyDst {
    Priv(PRef),
    Global(GRef),
}

// ---- 1-D block tiling (Section 5.2) ----

/// Rewrites top-level thread-body loops that read thread-invariant arrays
/// elementwise (`A[j]`) to stage tiles through local memory with barriers —
/// the N-body pattern. Only applied at the outermost statement level so
/// barriers stay convergent.
/// Pure applicability probe for [`tile_1d`]: true iff the rewrite would
/// tile at least one loop. Used to ask the schedule's `Tile` choice point
/// only at kernels where tiling is actually possible.
pub fn tile_1d_candidate(kernel: &Kernel) -> bool {
    fn scan(stms: &[KStm]) -> bool {
        stms.iter().any(|s| match s {
            KStm::At { body, .. } => scan(body),
            KStm::For { var, bound, body } if is_uniform(bound) => {
                !qualifying_reads(body, *var).is_empty() && !contains_barrier(body)
            }
            _ => false,
        })
    }
    scan(&kernel.body)
}

pub fn tile_1d(kernel: &mut Kernel) -> bool {
    let mut locals = kernel.locals.clone();
    let mut next_reg = kernel.num_regs;
    let mut tiled = false;
    let body = std::mem::take(&mut kernel.body);
    kernel.body = tile_stms(body, &kernel.params, &mut locals, &mut next_reg, &mut tiled);
    kernel.locals = locals;
    kernel.num_regs = next_reg;
    tiled
}

/// Collects buffers read as `A[var]` among `stms`, looking through
/// provenance markers (which are transparent statement grouping).
fn qualifying_reads(stms: &[KStm], var: Reg) -> Vec<usize> {
    let mut bufs = Vec::new();
    for s in stms {
        match s {
            KStm::GlobalRead { buf, index, .. } if *index == KExp::Var(var) => bufs.push(*buf),
            KStm::At { body, .. } => bufs.extend(qualifying_reads(body, var)),
            _ => {}
        }
    }
    bufs
}

fn tile_stms(
    stms: Vec<KStm>,
    params: &[KParam],
    locals: &mut Vec<(ScalarType, KExp)>,
    next_reg: &mut u32,
    tiled: &mut bool,
) -> Vec<KStm> {
    let mut new_body = Vec::new();
    for stm in stms {
        match stm {
            // Provenance markers are transparent: a loop directly inside
            // one is still at the outermost (convergent) statement level.
            KStm::At { prov, body } => new_body.push(KStm::At {
                prov,
                body: tile_stms(body, params, locals, next_reg, tiled),
            }),
            KStm::For { var, bound, body } if is_uniform(&bound) => {
                // Qualifying reads: GlobalRead { index: Var(var) }.
                let bufs = qualifying_reads(&body, var);
                if bufs.is_empty() || contains_barrier(&body) {
                    new_body.push(KStm::For { var, bound, body });
                    continue;
                }
                // Allocate one local buffer per distinct qualifying array.
                let mut local_of: HashMap<usize, usize> = HashMap::new();
                for (i, p) in params.iter().enumerate() {
                    if bufs.contains(&i) {
                        if let KParam::Buffer(t) = p {
                            local_of.entry(i).or_insert_with(|| {
                                locals.push((*t, KExp::GroupSize));
                                locals.len() - 1
                            });
                        }
                    }
                }
                // The tile size is the number of live lanes in this group
                // (the last group may be partial):
                //   lanes = min(GroupSize, NumThreads - GroupId*GroupSize).
                let lanes = *next_reg;
                let to = *next_reg + 1;
                let base = *next_reg + 2;
                let ji = *next_reg + 3;
                let lim = *next_reg + 4;
                let ld = *next_reg + 5;
                *next_reg += 6;
                new_body.push(KStm::Assign {
                    var: lanes,
                    exp: KExp::BinOp(
                        BinOp::Min,
                        Box::new(KExp::GroupSize),
                        Box::new(
                            KExp::NumThreads
                                .add(KExp::GroupId.mul(KExp::GroupSize).mul(KExp::i64(-1))),
                        ),
                    ),
                });
                let ntiles = bound
                    .clone()
                    .add(KExp::Var(lanes).add(KExp::i64(-1)))
                    .div(KExp::Var(lanes));
                let mut tile_body: Vec<KStm> = Vec::new();
                tile_body.push(KStm::Assign {
                    var: base,
                    exp: KExp::Var(to).mul(KExp::Var(lanes)),
                });
                // Clamped cooperative load (one element per live lane).
                tile_body.push(KStm::Assign {
                    var: ld,
                    exp: KExp::BinOp(
                        BinOp::Min,
                        Box::new(KExp::Var(base).add(KExp::LocalId)),
                        Box::new(bound.clone().add(KExp::i64(-1))),
                    ),
                });
                for (&buf, &lmem) in &local_of {
                    let tmp = *next_reg;
                    *next_reg += 1;
                    tile_body.push(KStm::GlobalRead {
                        var: tmp,
                        buf,
                        index: KExp::Var(ld),
                    });
                    tile_body.push(KStm::LocalWrite {
                        mem: lmem,
                        index: KExp::LocalId,
                        value: KExp::Var(tmp),
                    });
                }
                tile_body.push(KStm::Barrier);
                // Inner loop over the tile.
                tile_body.push(KStm::Assign {
                    var: lim,
                    exp: KExp::BinOp(
                        BinOp::Min,
                        Box::new(KExp::Var(lanes)),
                        Box::new(bound.clone().add(KExp::Var(base).mul(KExp::i64(-1)))),
                    ),
                });
                let mut inner = vec![KStm::Assign {
                    var,
                    exp: KExp::Var(base).add(KExp::Var(ji)),
                }];
                inner.extend(
                    body.iter()
                        .map(|s| rewrite_reads(s.clone(), &local_of, var, ji)),
                );
                tile_body.push(KStm::For {
                    var: ji,
                    bound: KExp::Var(lim),
                    body: inner,
                });
                tile_body.push(KStm::Barrier);
                new_body.push(KStm::For {
                    var: to,
                    bound: ntiles,
                    body: tile_body,
                });
                *tiled = true;
            }
            other => new_body.push(other),
        }
    }
    new_body
}

fn is_uniform(e: &KExp) -> bool {
    match e {
        KExp::Const(_) | KExp::ScalarArg(_) | KExp::GroupSize | KExp::NumThreads => true,
        KExp::Var(_) | KExp::GlobalId | KExp::GroupId | KExp::LocalId => false,
        KExp::BinOp(_, a, b) | KExp::Cmp(_, a, b) => is_uniform(a) && is_uniform(b),
        KExp::UnOp(_, a) | KExp::Convert(_, a) => is_uniform(a),
    }
}

fn contains_barrier(stms: &[KStm]) -> bool {
    stms.iter().any(|s| match s {
        KStm::Barrier => true,
        KStm::For { body, .. } | KStm::While { body, .. } | KStm::At { body, .. } => {
            contains_barrier(body)
        }
        KStm::If { then_s, else_s, .. } => contains_barrier(then_s) || contains_barrier(else_s),
        _ => false,
    })
}

fn rewrite_reads(stm: KStm, local_of: &HashMap<usize, usize>, j: Reg, ji: Reg) -> KStm {
    match stm {
        KStm::GlobalRead { var, buf, index }
            if index == KExp::Var(j) && local_of.contains_key(&buf) =>
        {
            KStm::LocalRead {
                var,
                mem: local_of[&buf],
                index: KExp::Var(ji),
            }
        }
        KStm::For { var, bound, body } => KStm::For {
            var,
            bound,
            body: body
                .into_iter()
                .map(|s| rewrite_reads(s, local_of, j, ji))
                .collect(),
        },
        KStm::While { cond, body } => KStm::While {
            cond,
            body: body
                .into_iter()
                .map(|s| rewrite_reads(s, local_of, j, ji))
                .collect(),
        },
        KStm::At { prov, body } => KStm::At {
            prov,
            body: body
                .into_iter()
                .map(|s| rewrite_reads(s, local_of, j, ji))
                .collect(),
        },
        KStm::If {
            cond,
            then_s,
            else_s,
        } => KStm::If {
            cond,
            then_s: then_s
                .into_iter()
                .map(|s| rewrite_reads(s, local_of, j, ji))
                .collect(),
            else_s: else_s
                .into_iter()
                .map(|s| rewrite_reads(s, local_of, j, ji))
                .collect(),
        },
        other => other,
    }
}

/// Whether a body contains any SOAC (i.e. potential kernels). Host loops
/// and branches without SOACs are executed whole as interpreter fallbacks —
/// exactly how a hand-written host-side implementation behaves (one
/// transfer, then sequential host work).
fn body_has_soac(b: &Body) -> bool {
    b.stms.iter().any(|s| {
        matches!(s.exp, Exp::Soac(_)) || s.exp.inner_bodies().into_iter().any(body_has_soac)
    })
}

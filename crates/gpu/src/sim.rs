//! The SIMT virtual GPU.
//!
//! Kernels execute group-by-group; within a group all threads run in
//! lockstep with divergence masks, exactly like warps on real hardware.
//! The simulator is *functional* (it computes the real answer in device
//! buffers) and *counted* (it accumulates the cost events the paper's
//! evaluation hinges on):
//!
//! - **warp instructions**: each statement costs one issue per active warp;
//! - **global-memory transactions**: per warp and access, the distinct
//!   aligned segments covered by the active lanes' addresses — the
//!   *coalescing* model of Section 5.2;
//! - **bus bytes**: transactions × transaction size (so uncoalesced code
//!   pays the full segment even for 4 useful bytes);
//! - local-memory accesses and barriers.

use crate::device::DeviceProfile;
use crate::kernel::Kernel;
use crate::tape::{host_threads, launch_decoded, DecodedKernel};
use futhark_core::{Buffer, Scalar, ScalarType};
use std::collections::HashMap;
use std::fmt;

/// A device buffer handle. Ids are recycled through the free lists, so
/// identity over time is the allocation *stamp* (see
/// [`DeviceMemory::stamp`]), never the id.
pub type BufId = usize;

/// Deterministic memory counters for one run: allocation traffic, reuse
/// hits, hoisted allocations, and the live/peak footprint in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Buffers allocated or uploaded (including reuse hits).
    pub allocs: u64,
    /// Buffers explicitly freed (poisoned).
    pub frees: u64,
    /// Allocations serviced from a dead buffer of compatible type and
    /// size — the free-list hits, plus in-place steals by the executor.
    pub reuses: u64,
    /// Loop-invariant allocations hoisted out of loop bodies (counted per
    /// iteration that wrote into a hoisted buffer).
    pub hoisted: u64,
    /// Bytes live at the end of the run.
    pub live_bytes: u64,
    /// High-water mark of live bytes over the run.
    pub peak_bytes: u64,
}

impl MemStats {
    /// Reuse rate: reuses / allocs (0.0 when nothing was allocated).
    pub fn reuse_rate(&self) -> f64 {
        if self.allocs == 0 {
            0.0
        } else {
            self.reuses as f64 / self.allocs as f64
        }
    }

    /// Serialises to JSON (for trace archives and baselines).
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("allocs", Json::U64(self.allocs)),
            ("frees", Json::U64(self.frees)),
            ("reuses", Json::U64(self.reuses)),
            ("hoisted", Json::U64(self.hoisted)),
            ("live_bytes", Json::U64(self.live_bytes)),
            ("peak_bytes", Json::U64(self.peak_bytes)),
        ])
    }

    /// Deserialises from JSON.
    pub fn from_json(j: &futhark_trace::Json) -> Option<MemStats> {
        Some(MemStats {
            allocs: j.get("allocs")?.as_u64()?,
            frees: j.get("frees")?.as_u64()?,
            reuses: j.get("reuses")?.as_u64()?,
            hoisted: j.get("hoisted")?.as_u64()?,
            live_bytes: j.get("live_bytes")?.as_u64()?,
            peak_bytes: j.get("peak_bytes")?.as_u64()?,
        })
    }
}

/// What bound a launch's modelled time: the component that won the `max`
/// in the timing model (ties resolve compute ≥ memory ≥ local, matching
/// the `.max()` chain in [`kernel_time_us`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Limiter {
    /// Warp-instruction issue throughput bound the launch.
    Compute,
    /// Global-memory bandwidth bound the launch.
    Memory,
    /// Local-memory throughput bound the launch.
    Local,
}

impl Limiter {
    /// The stable string form used in JSON and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Limiter::Compute => "compute",
            Limiter::Memory => "memory",
            Limiter::Local => "local",
        }
    }

    /// Parses the stable string form back.
    pub fn parse(s: &str) -> Option<Limiter> {
        match s {
            "compute" => Some(Limiter::Compute),
            "memory" => Some(Limiter::Memory),
            "local" => Some(Limiter::Local),
            _ => None,
        }
    }
}

impl fmt::Display for Limiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The full time decomposition of one (or several merged) launches:
/// the fixed overhead plus the three overlapping throughput components
/// of which only the slowest is paid.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Fixed launch overhead, microseconds.
    pub overhead_us: f64,
    /// Warp-instruction issue time, microseconds.
    pub compute_us: f64,
    /// Global-memory bus time, microseconds.
    pub memory_us: f64,
    /// Local-memory access time, microseconds.
    pub local_us: f64,
}

impl TimeBreakdown {
    /// The modelled launch time: `overhead + max(compute, memory, local)`
    /// — bit-identical to [`kernel_time_us`] for a per-launch breakdown.
    pub fn total_us(&self) -> f64 {
        self.overhead_us + self.compute_us.max(self.memory_us).max(self.local_us)
    }

    /// The binding component. Ties resolve compute ≥ memory ≥ local,
    /// consistent with [`Self::total_us`]'s `max` chain.
    pub fn limiter(&self) -> Limiter {
        if self.compute_us >= self.memory_us && self.compute_us >= self.local_us {
            Limiter::Compute
        } else if self.memory_us >= self.local_us {
            Limiter::Memory
        } else {
            Limiter::Local
        }
    }

    /// Adds another breakdown component-wise (overheads sum too, so a
    /// merged breakdown's `total_us` is a lower bound on the summed
    /// per-launch totals, not equal to them: max-of-sums ≤ sum-of-maxes).
    pub fn merge(&mut self, o: &TimeBreakdown) {
        self.overhead_us += o.overhead_us;
        self.compute_us += o.compute_us;
        self.memory_us += o.memory_us;
        self.local_us += o.local_us;
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("overhead_us", Json::F64(self.overhead_us)),
            ("compute_us", Json::F64(self.compute_us)),
            ("memory_us", Json::F64(self.memory_us)),
            ("local_us", Json::F64(self.local_us)),
            ("limiter", Json::Str(self.limiter().as_str().to_string())),
        ])
    }

    /// Deserialises from JSON (the redundant `limiter` field is checked,
    /// not trusted).
    pub fn from_json(j: &futhark_trace::Json) -> Option<TimeBreakdown> {
        let b = TimeBreakdown {
            overhead_us: j.get("overhead_us")?.as_f64()?,
            compute_us: j.get("compute_us")?.as_f64()?,
            memory_us: j.get("memory_us")?.as_f64()?,
            local_us: j.get("local_us")?.as_f64()?,
        };
        let lim = Limiter::parse(j.get("limiter")?.as_str()?)?;
        if lim != b.limiter() {
            return None;
        }
        Some(b)
    }
}

/// The kind of a device-memory timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemOp {
    /// A fresh allocation (or upload) that created a new slot.
    Alloc,
    /// An allocation serviced from the free list (a dead slot recycled).
    Reuse,
    /// An explicit free: the slot's data dropped and poisoned.
    Free,
    /// An in-place steal by the executor: a kernel output took over its
    /// input's buffer instead of allocating.
    Steal,
    /// A loop-hoisted allocation written in place per iteration.
    Hoist,
    /// A double-buffer rotation free at a loop step boundary.
    Rotate,
}

impl MemOp {
    /// The stable string form used in JSON and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            MemOp::Alloc => "alloc",
            MemOp::Reuse => "reuse",
            MemOp::Free => "free",
            MemOp::Steal => "steal",
            MemOp::Hoist => "hoist",
            MemOp::Rotate => "rotate",
        }
    }

    /// Parses the stable string form back.
    pub fn parse(s: &str) -> Option<MemOp> {
        match s {
            "alloc" => Some(MemOp::Alloc),
            "reuse" => Some(MemOp::Reuse),
            "free" => Some(MemOp::Free),
            "steal" => Some(MemOp::Steal),
            "hoist" => Some(MemOp::Hoist),
            "rotate" => Some(MemOp::Rotate),
            _ => None,
        }
    }
}

impl fmt::Display for MemOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One device-memory timeline event: what happened to which buffer, how
/// many bytes it covered, the live footprint right after, and the source
/// site (provenance key) the executor attributed it to ("?" when unknown).
#[derive(Debug, Clone, PartialEq)]
pub struct MemEvent {
    /// What happened.
    pub op: MemOp,
    /// The buffer id involved (ids recycle; identity over time is the
    /// event order).
    pub buf: BufId,
    /// Bytes the buffer covers.
    pub bytes: u64,
    /// Live bytes immediately after the event.
    pub live_bytes: u64,
    /// Provenance key of the owning source site ("?" when unattributed).
    pub site: String,
}

impl MemEvent {
    /// Serialises to JSON.
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("op", Json::Str(self.op.as_str().to_string())),
            ("buf", Json::U64(self.buf as u64)),
            ("bytes", Json::U64(self.bytes)),
            ("live_bytes", Json::U64(self.live_bytes)),
            ("site", Json::Str(self.site.clone())),
        ])
    }

    /// Deserialises from JSON.
    pub fn from_json(j: &futhark_trace::Json) -> Option<MemEvent> {
        Some(MemEvent {
            op: MemOp::parse(j.get("op")?.as_str()?)?,
            buf: usize::try_from(j.get("buf")?.as_u64()?).ok()?,
            bytes: j.get("bytes")?.as_u64()?,
            live_bytes: j.get("live_bytes")?.as_u64()?,
            site: j.get("site")?.as_str()?.to_string(),
        })
    }
}

/// A raw, site-less memory event recorded inside [`DeviceMemory`]; the
/// executor attributes sites when draining the log.
pub type RawMemEvent = (MemOp, BufId, u64, u64);

/// One slot of the device-memory arena.
#[derive(Debug)]
enum Slot {
    /// A live buffer; `stamp` is the monotone allocation epoch that
    /// distinguishes successive occupants of a recycled id.
    Live { buf: Buffer, stamp: u64 },
    /// A freed slot: the data is *dropped* (poisoned), only the shape is
    /// kept so the slot can be recycled by a compatible allocation.
    Freed { t: ScalarType, len: usize },
}

/// Device global memory: a typed-buffer arena with free lists, poisoned
/// freed slots, live/peak byte tracking and an optional capacity taken
/// from the [`DeviceProfile`].
///
/// Freed slots keep no data — any access through a stale [`BufId`] is a
/// structured [`SimError::UseAfterFree`], and reuse re-creates the buffer
/// zero-initialised, so recycling is observationally identical to a fresh
/// allocation.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    slots: Vec<Slot>,
    /// Dead slots by (element type, length), LIFO.
    free_lists: HashMap<(ScalarType, usize), Vec<BufId>>,
    next_stamp: u64,
    capacity: Option<u64>,
    live_bytes: u64,
    peak_bytes: u64,
    allocs: u64,
    frees: u64,
    reuses: u64,
    /// Raw timeline events, recorded only when the log was enabled (the
    /// executor enables it; bare simulator use stays log-free).
    event_log: Option<Vec<RawMemEvent>>,
}

impl DeviceMemory {
    /// Creates empty device memory with unlimited capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates empty device memory with an explicit capacity in bytes.
    pub fn with_capacity(capacity: u64) -> Self {
        DeviceMemory {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Creates empty device memory sized from a device profile.
    pub fn from_profile(device: &DeviceProfile) -> Self {
        Self::with_capacity(device.global_mem_bytes)
    }

    fn charge(&mut self, t: ScalarType, len: usize) -> SResult<u64> {
        let bytes = (len * t.byte_size()) as u64;
        if let Some(cap) = self.capacity {
            if self.live_bytes + bytes > cap {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    live: self.live_bytes,
                    capacity: cap,
                });
            }
        }
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        self.allocs += 1;
        Ok(bytes)
    }

    fn place(&mut self, t: ScalarType, len: usize, buf: Buffer) -> BufId {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let bytes = (len * t.byte_size()) as u64;
        let (id, op) = match self.free_lists.get_mut(&(t, len)).and_then(|l| l.pop()) {
            Some(id) => {
                debug_assert!(
                    matches!(self.slots[id], Slot::Freed { t: ft, len: fl } if ft == t && fl == len),
                    "free-list entry {id} does not match its (type, length) class"
                );
                self.reuses += 1;
                self.slots[id] = Slot::Live { buf, stamp };
                (id, MemOp::Reuse)
            }
            None => {
                self.slots.push(Slot::Live { buf, stamp });
                (self.slots.len() - 1, MemOp::Alloc)
            }
        };
        if let Some(log) = &mut self.event_log {
            log.push((op, id, bytes, self.live_bytes));
        }
        id
    }

    /// Turns on the raw event log; every alloc/reuse/free from here on is
    /// recorded for [`Self::take_events`]. Off by default so bare
    /// simulator use (unit tests, simbench) pays nothing.
    pub fn enable_event_log(&mut self) {
        if self.event_log.is_none() {
            self.event_log = Some(Vec::new());
        }
    }

    /// Drains the raw events recorded since the last call (empty when the
    /// log was never enabled).
    pub fn take_events(&mut self) -> Vec<RawMemEvent> {
        match &mut self.event_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Allocates a zero-initialised buffer, recycling a dead slot of the
    /// same element type and length when one exists.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when the allocation would push the live
    /// footprint past the device capacity.
    pub fn alloc(&mut self, t: ScalarType, len: usize) -> SResult<BufId> {
        self.charge(t, len)?;
        Ok(self.place(t, len, Buffer::zeros(t, len)))
    }

    /// Uploads host data, recycling a dead slot when one fits.
    ///
    /// # Errors
    ///
    /// [`SimError::OutOfMemory`] when over capacity.
    pub fn upload(&mut self, data: Buffer) -> SResult<BufId> {
        let (t, len) = (data.elem_type(), data.len());
        self.charge(t, len)?;
        Ok(self.place(t, len, data))
    }

    /// Frees a buffer: the data is dropped (poisoning any stale handle)
    /// and the slot joins the free list for its (type, length) class.
    /// Freeing an already-dead id is a no-op, so plan-inserted frees over
    /// alias classes are idempotent.
    pub fn free(&mut self, id: BufId) {
        let Some(slot) = self.slots.get_mut(id) else {
            return;
        };
        if let Slot::Live { buf, .. } = slot {
            let (t, len) = (buf.elem_type(), buf.len());
            let bytes = (len * t.byte_size()) as u64;
            self.live_bytes -= bytes;
            self.frees += 1;
            *slot = Slot::Freed { t, len };
            self.free_lists.entry((t, len)).or_default().push(id);
            if let Some(log) = &mut self.event_log {
                log.push((MemOp::Free, id, bytes, self.live_bytes));
            }
        }
    }

    /// Whether `id` currently names a live buffer.
    pub fn is_live(&self, id: BufId) -> bool {
        matches!(self.slots.get(id), Some(Slot::Live { .. }))
    }

    /// The allocation stamp of a live buffer (monotone across the run;
    /// unlike ids, never recycled).
    pub fn stamp(&self, id: BufId) -> Option<u64> {
        match self.slots.get(id) {
            Some(Slot::Live { stamp, .. }) => Some(*stamp),
            _ => None,
        }
    }

    /// The next allocation stamp: every buffer allocated from now on has
    /// `stamp >= epoch()`. The executor snapshots this at loop entry as
    /// the double-buffer rotation watermark.
    pub fn epoch(&self) -> u64 {
        self.next_stamp
    }

    /// Reads a buffer back.
    ///
    /// # Errors
    ///
    /// [`SimError::UseAfterFree`] if the id was freed (or never existed).
    pub fn download(&self, id: BufId) -> SResult<&Buffer> {
        match self.slots.get(id) {
            Some(Slot::Live { buf, .. }) => Ok(buf),
            _ => Err(SimError::UseAfterFree {
                buf: id,
                what: "download".into(),
            }),
        }
    }

    /// Mutable access.
    ///
    /// # Errors
    ///
    /// [`SimError::UseAfterFree`] if the id was freed (or never existed).
    pub fn buffer_mut(&mut self, id: BufId) -> SResult<&mut Buffer> {
        match self.slots.get_mut(id) {
            Some(Slot::Live { buf, .. }) => Ok(buf),
            _ => Err(SimError::UseAfterFree {
                buf: id,
                what: "mutable access".into(),
            }),
        }
    }

    /// Infallible access for the kernel hot path: callers must have
    /// validated liveness at launch entry (as `launch_decoded` does for
    /// every buffer argument).
    pub(crate) fn raw(&self, id: BufId) -> &Buffer {
        match &self.slots[id] {
            Slot::Live { buf, .. } => buf,
            Slot::Freed { .. } => panic!("raw access to freed buffer {id} (unvalidated launch)"),
        }
    }

    /// Infallible mutable access for the validated kernel commit path.
    pub(crate) fn raw_mut(&mut self, id: BufId) -> &mut Buffer {
        match &mut self.slots[id] {
            Slot::Live { buf, .. } => buf,
            Slot::Freed { .. } => panic!("raw access to freed buffer {id} (unvalidated launch)"),
        }
    }

    /// Bytes currently live (allocated and not freed).
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// High-water mark of [`Self::live_bytes`] over the arena's lifetime.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// The memory counters so far (`hoisted` is an executor-side event and
    /// stays zero here).
    pub fn stats(&self) -> MemStats {
        MemStats {
            allocs: self.allocs,
            frees: self.frees,
            reuses: self.reuses,
            hoisted: 0,
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// An argument to a kernel launch.
#[derive(Debug, Clone)]
pub enum Arg {
    /// A global buffer.
    Buffer(BufId),
    /// A scalar.
    Scalar(Scalar),
}

/// Cost counters accumulated by one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Threads launched.
    pub threads: u64,
    /// Warp instruction issues.
    pub warp_instructions: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Bytes moved over the bus (transactions × transaction size).
    pub bus_bytes: u64,
    /// Bytes actually requested by threads.
    pub useful_bytes: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Barriers executed (per group).
    pub barriers: u64,
}

impl KernelStats {
    /// Coalescing efficiency: useful bytes / bus bytes (1.0 = perfect).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.bus_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.bus_bytes as f64
        }
    }

    /// Adds the counters of another launch into this one (used for
    /// per-kernel and whole-run aggregation).
    pub fn merge(&mut self, o: &KernelStats) {
        self.threads += o.threads;
        self.warp_instructions += o.warp_instructions;
        self.global_transactions += o.global_transactions;
        self.bus_bytes += o.bus_bytes;
        self.useful_bytes += o.useful_bytes;
        self.local_accesses += o.local_accesses;
        self.barriers += o.barriers;
    }

    /// Serialises to JSON (for trace archives).
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("threads", Json::U64(self.threads)),
            ("warp_instructions", Json::U64(self.warp_instructions)),
            ("global_transactions", Json::U64(self.global_transactions)),
            ("bus_bytes", Json::U64(self.bus_bytes)),
            ("useful_bytes", Json::U64(self.useful_bytes)),
            ("local_accesses", Json::U64(self.local_accesses)),
            ("barriers", Json::U64(self.barriers)),
        ])
    }

    /// Deserialises from JSON.
    pub fn from_json(j: &futhark_trace::Json) -> Option<KernelStats> {
        Some(KernelStats {
            threads: j.get("threads")?.as_u64()?,
            warp_instructions: j.get("warp_instructions")?.as_u64()?,
            global_transactions: j.get("global_transactions")?.as_u64()?,
            bus_bytes: j.get("bus_bytes")?.as_u64()?,
            useful_bytes: j.get("useful_bytes")?.as_u64()?,
            local_accesses: j.get("local_accesses")?.as_u64()?,
            barriers: j.get("barriers")?.as_u64()?,
        })
    }
}

/// Cost counters for one *source site* (a [`Prov`](futhark_core::Prov) set
/// from a kernel's provenance table), collected only in profiled execution
/// mode. Mirrors [`KernelStats`] minus `threads`, plus the inactive-lane
/// issue slots lost to divergence — tracked here and not in the aggregate
/// counters, so enabling profiling cannot perturb [`KernelStats`] by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SiteStats {
    /// Warp instruction issues attributed to this site.
    pub warp_instructions: u64,
    /// Issue slots executed by masked-off lanes of otherwise-active warps
    /// (SIMT divergence waste), scaled by instruction cost like
    /// `warp_instructions`.
    pub inactive_lane_instructions: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Bytes moved over the bus.
    pub bus_bytes: u64,
    /// Bytes actually requested by threads.
    pub useful_bytes: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Barriers executed (per group).
    pub barriers: u64,
    /// Modelled microseconds attributed to this site: each launch's busy
    /// time (total minus overhead) split across sites in proportion to
    /// their share of the launch's *limiting* counter.
    pub modelled_us: f64,
}

impl SiteStats {
    /// Whether every counter is zero (such sites are omitted from reports).
    pub fn is_zero(&self) -> bool {
        *self == SiteStats::default()
    }

    /// Adds another site's counters into this one.
    pub fn merge(&mut self, o: &SiteStats) {
        self.warp_instructions += o.warp_instructions;
        self.inactive_lane_instructions += o.inactive_lane_instructions;
        self.global_transactions += o.global_transactions;
        self.bus_bytes += o.bus_bytes;
        self.useful_bytes += o.useful_bytes;
        self.local_accesses += o.local_accesses;
        self.barriers += o.barriers;
        self.modelled_us += o.modelled_us;
    }

    /// Serialises to JSON (for trace archives).
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("warp_instructions", Json::U64(self.warp_instructions)),
            (
                "inactive_lane_instructions",
                Json::U64(self.inactive_lane_instructions),
            ),
            ("global_transactions", Json::U64(self.global_transactions)),
            ("bus_bytes", Json::U64(self.bus_bytes)),
            ("useful_bytes", Json::U64(self.useful_bytes)),
            ("local_accesses", Json::U64(self.local_accesses)),
            ("barriers", Json::U64(self.barriers)),
            ("modelled_us", Json::F64(self.modelled_us)),
        ])
    }

    /// Deserialises from JSON. `modelled_us` is optional (0.0 when
    /// absent) so traces written before the analysis layer still load.
    pub fn from_json(j: &futhark_trace::Json) -> Option<SiteStats> {
        Some(SiteStats {
            warp_instructions: j.get("warp_instructions")?.as_u64()?,
            inactive_lane_instructions: j.get("inactive_lane_instructions")?.as_u64()?,
            global_transactions: j.get("global_transactions")?.as_u64()?,
            bus_bytes: j.get("bus_bytes")?.as_u64()?,
            useful_bytes: j.get("useful_bytes")?.as_u64()?,
            local_accesses: j.get("local_accesses")?.as_u64()?,
            barriers: j.get("barriers")?.as_u64()?,
            modelled_us: match j.get("modelled_us") {
                Some(v) => v.as_f64()?,
                None => 0.0,
            },
        })
    }
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Out-of-bounds access in a kernel.
    OutOfBounds {
        /// Which kernel.
        kernel: String,
        /// Description.
        what: String,
    },
    /// Barrier reached by a divergent subset of a work-group.
    DivergentBarrier {
        /// Which kernel.
        kernel: String,
    },
    /// Scalar operator failure (type confusion, division by zero).
    Scalar(String),
    /// A while loop exceeded the iteration safety bound.
    RunawayLoop {
        /// Which kernel.
        kernel: String,
    },
    /// A local-memory buffer was sized with a negative element count
    /// (formerly clamped silently to zero).
    NegativeLocalSize {
        /// Which kernel.
        kernel: String,
        /// The requested element count.
        requested: i64,
    },
    /// Access through a [`BufId`] whose buffer was freed (the slot is
    /// poisoned, so the stale data cannot be read silently).
    UseAfterFree {
        /// The offending buffer id.
        buf: BufId,
        /// What kind of access hit it.
        what: String,
    },
    /// An allocation would exceed the device's global-memory capacity.
    OutOfMemory {
        /// Bytes the allocation asked for.
        requested: u64,
        /// Bytes live at the time.
        live: u64,
        /// The device capacity.
        capacity: u64,
    },
    /// A structurally invalid kernel artifact: an expression tape whose
    /// operand stack underflows or ends unbalanced. Unreachable from the
    /// compiler pipeline (decode validates its own output), but a
    /// hand-constructed or corrupted artifact must surface as an error a
    /// long-lived server can return, never a panic that kills the process.
    Malformed {
        /// Which kernel.
        kernel: String,
        /// What was wrong with it.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { kernel, what } => {
                write!(f, "out of bounds in kernel `{kernel}`: {what}")
            }
            SimError::DivergentBarrier { kernel } => {
                write!(f, "divergent barrier in kernel `{kernel}`")
            }
            SimError::Scalar(m) => write!(f, "scalar fault: {m}"),
            SimError::RunawayLoop { kernel } => {
                write!(f, "runaway while-loop in kernel `{kernel}`")
            }
            SimError::NegativeLocalSize { kernel, requested } => {
                write!(
                    f,
                    "negative local-memory size {requested} in kernel `{kernel}`"
                )
            }
            SimError::UseAfterFree { buf, what } => {
                write!(f, "use after free of device buffer {buf} ({what})")
            }
            SimError::OutOfMemory {
                requested,
                live,
                capacity,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes with \
                 {live} live of {capacity} capacity"
            ),
            SimError::Malformed { kernel, what } => {
                write!(f, "malformed kernel `{kernel}`: {what}")
            }
        }
    }
}

impl std::error::Error for SimError {}

type SResult<T> = Result<T, SimError>;

/// Launches a kernel over `num_threads` threads and returns the accumulated
/// stats. Buffers are read and written in `mem`.
///
/// Decodes the kernel on the fly and executes its work-groups on
/// [`host_threads`] host threads (set `FUTHARK_SIM_THREADS` to override).
/// Callers that launch the same kernel repeatedly should decode once with
/// [`DecodedKernel::decode`] and call [`launch_decoded`] directly, as the
/// plan executor does.
///
/// # Errors
///
/// Returns a [`SimError`] on faults (bounds, divergent barriers, runaway
/// loops, negative local-memory sizes).
pub fn launch(
    device: &DeviceProfile,
    kernel: &Kernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
) -> SResult<KernelStats> {
    let dk = DecodedKernel::decode(kernel)?;
    launch_decoded(device, &dk, num_threads, args, mem, host_threads())
}

/// Timing model decomposition: the overhead and the three throughput
/// components for one launch with the given stats. The modelled launch
/// time is [`TimeBreakdown::total_us`].
pub fn kernel_time_breakdown(device: &DeviceProfile, stats: &KernelStats) -> TimeBreakdown {
    TimeBreakdown {
        overhead_us: device.launch_overhead_us,
        compute_us: device.compute_us(stats.warp_instructions as f64),
        memory_us: device.memory_us(stats.bus_bytes as f64),
        local_us: device.local_us(stats.local_accesses as f64),
    }
}

/// Timing model: microseconds for one launch with the given stats
/// (`overhead + max(compute, memory, local)`).
pub fn kernel_time_us(device: &DeviceProfile, stats: &KernelStats) -> f64 {
    kernel_time_breakdown(device, stats).total_us()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::*;

    fn vecadd_kernel(stride: i64) -> Kernel {
        // out[i] = a[idx] + b[idx] with idx = i*stride (stride 1 coalesced).
        let idx = KExp::GlobalId.mul(KExp::i64(stride));
        Kernel {
            name: "vecadd".into(),
            params: vec![
                KParam::Buffer(ScalarType::F32),
                KParam::Buffer(ScalarType::F32),
                KParam::Buffer(ScalarType::F32),
            ],
            locals: vec![],
            num_regs: 2,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: idx.clone(),
                },
                KStm::GlobalRead {
                    var: 1,
                    buf: 1,
                    index: idx.clone(),
                },
                KStm::GlobalWrite {
                    buf: 2,
                    index: idx,
                    value: KExp::BinOp(
                        futhark_core::BinOp::Add,
                        Box::new(KExp::Var(0)),
                        Box::new(KExp::Var(1)),
                    ),
                },
            ],
        }
    }

    #[test]
    fn vecadd_computes_and_is_coalesced() {
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let n = 1024usize;
        let a = mem
            .upload(Buffer::F32((0..n).map(|i| i as f32).collect()))
            .unwrap();
        let b = mem.upload(Buffer::F32(vec![1.0; n])).unwrap();
        let c = mem.alloc(ScalarType::F32, n).unwrap();
        let stats = launch(
            &dev,
            &vecadd_kernel(1),
            n as u64,
            &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap();
        let Buffer::F32(out) = mem.download(c).unwrap() else {
            panic!()
        };
        assert_eq!(out[10], 11.0);
        assert_eq!(out[1023], 1024.0);
        // Coalesced: each warp of 32 f32 reads = 128 bytes = 1 transaction.
        // 3 accesses × 32 warps = 96 transactions.
        assert_eq!(stats.global_transactions, 96);
        assert!(stats.coalescing_efficiency() > 0.99);
    }

    #[test]
    fn strided_access_multiplies_transactions() {
        let dev = DeviceProfile::gtx780();
        let stride = 32i64;
        let n = 1024usize;
        let total = n * stride as usize;
        let mut mem = DeviceMemory::new();
        let a = mem.upload(Buffer::F32(vec![2.0; total])).unwrap();
        let b = mem.upload(Buffer::F32(vec![3.0; total])).unwrap();
        let c = mem.alloc(ScalarType::F32, total).unwrap();
        let stats = launch(
            &dev,
            &vecadd_kernel(stride),
            n as u64,
            &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap();
        // Every lane hits its own 128-byte segment: 32× the transactions.
        assert_eq!(stats.global_transactions, 96 * 32);
        assert!(stats.coalescing_efficiency() < 0.05);
    }

    #[test]
    fn local_memory_staging_with_barrier() {
        // Each thread writes its id to local memory, barriers, then reads
        // its neighbour's value (a rotation within the group).
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "rotate".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![(ScalarType::I64, KExp::GroupSize)],
            num_regs: 2,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::LocalWrite {
                    mem: 0,
                    index: KExp::LocalId,
                    value: KExp::GlobalId,
                },
                KStm::Barrier,
                KStm::Assign {
                    var: 0,
                    exp: KExp::LocalId.add(KExp::i64(1)).rem(KExp::GroupSize),
                },
                KStm::LocalRead {
                    var: 1,
                    mem: 0,
                    index: KExp::Var(0),
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(1),
                },
            ],
        };
        let mut mem = DeviceMemory::new();
        let n = 512usize;
        let out = mem.alloc(ScalarType::I64, n).unwrap();
        let stats = launch(&dev, &k, n as u64, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out).unwrap() else {
            panic!()
        };
        assert_eq!(v[0], 1);
        assert_eq!(v[255], 0); // wraps within the first group of 256
        assert_eq!(v[256], 257);
        assert_eq!(stats.barriers, 2); // one per group
        assert!(stats.local_accesses >= 1024);
    }

    #[test]
    fn divergence_executes_both_sides() {
        // if (id % 2 == 0) out[id] = 1 else out[id] = 2.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "diverge".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::If {
                cond: KExp::Cmp(
                    futhark_core::CmpOp::Eq,
                    Box::new(KExp::GlobalId.rem(KExp::i64(2))),
                    Box::new(KExp::i64(0)),
                ),
                then_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::i64(1),
                }],
                else_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::i64(2),
                }],
            }],
        };
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(ScalarType::I64, 64).unwrap();
        launch(&dev, &k, 64, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out).unwrap() else {
            panic!()
        };
        assert_eq!(v[0], 1);
        assert_eq!(v[1], 2);
        assert_eq!(v[63], 2);
    }

    #[test]
    fn for_loop_with_variant_bounds() {
        // out[id] = sum(0..id) via a per-thread loop; bounds diverge.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "tri".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 2,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::Assign {
                    var: 1,
                    exp: KExp::i64(0),
                },
                KStm::For {
                    var: 0,
                    bound: KExp::GlobalId,
                    body: vec![KStm::Assign {
                        var: 1,
                        exp: KExp::Var(1).add(KExp::Var(0)),
                    }],
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(1),
                },
            ],
        };
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(ScalarType::I64, 16).unwrap();
        launch(&dev, &k, 16, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out).unwrap() else {
            panic!()
        };
        assert_eq!(v[0], 0);
        assert_eq!(v[5], 10);
        assert_eq!(v[15], 105);
    }

    #[test]
    fn oob_is_reported() {
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let small = mem.alloc(ScalarType::F32, 4).unwrap();
        let b = mem.alloc(ScalarType::F32, 4).unwrap();
        let c = mem.alloc(ScalarType::F32, 4).unwrap();
        let e = launch(
            &dev,
            &vecadd_kernel(1),
            64,
            &[Arg::Buffer(small), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap_err();
        assert!(matches!(e, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn kernel_stats_invariants_hold_for_real_launches() {
        // Whatever the access pattern, the bus never moves fewer bytes
        // than the threads asked for, and efficiency stays in (0, 1].
        let dev = DeviceProfile::gtx780();
        for stride in [1i64, 7, 32] {
            let n = 256usize;
            let total = n * stride as usize;
            let mut mem = DeviceMemory::new();
            let a = mem.upload(Buffer::F32(vec![2.0; total])).unwrap();
            let b = mem.upload(Buffer::F32(vec![3.0; total])).unwrap();
            let c = mem.alloc(ScalarType::F32, total).unwrap();
            let stats = launch(
                &dev,
                &vecadd_kernel(stride),
                n as u64,
                &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
                &mut mem,
            )
            .unwrap();
            assert!(
                stats.useful_bytes <= stats.bus_bytes,
                "stride {stride}: useful {} > bus {}",
                stats.useful_bytes,
                stats.bus_bytes
            );
            let eff = stats.coalescing_efficiency();
            assert!(
                eff > 0.0 && eff <= 1.0,
                "stride {stride}: efficiency {eff} outside (0, 1]"
            );
        }
        // No memory traffic counts as perfectly coalesced.
        assert_eq!(KernelStats::default().coalescing_efficiency(), 1.0);
    }

    #[test]
    fn kernel_stats_merge_sums_every_field() {
        let a = KernelStats {
            threads: 100,
            warp_instructions: 40,
            global_transactions: 9,
            bus_bytes: 9 * 128,
            useful_bytes: 800,
            local_accesses: 12,
            barriers: 2,
        };
        let b = KernelStats {
            threads: 33,
            warp_instructions: 7,
            global_transactions: 4,
            bus_bytes: 4 * 128,
            useful_bytes: 300,
            local_accesses: 5,
            barriers: 1,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.threads, a.threads + b.threads);
        assert_eq!(
            m.warp_instructions,
            a.warp_instructions + b.warp_instructions
        );
        assert_eq!(
            m.global_transactions,
            a.global_transactions + b.global_transactions
        );
        assert_eq!(m.bus_bytes, a.bus_bytes + b.bus_bytes);
        assert_eq!(m.useful_bytes, a.useful_bytes + b.useful_bytes);
        assert_eq!(m.local_accesses, a.local_accesses + b.local_accesses);
        assert_eq!(m.barriers, a.barriers + b.barriers);
        // Merging the identity changes nothing.
        let mut id = a;
        id.merge(&KernelStats::default());
        assert_eq!(id, a);
    }

    #[test]
    fn kernel_stats_round_trip_through_json() {
        let s = KernelStats {
            threads: 1024,
            warp_instructions: 96,
            global_transactions: 96,
            bus_bytes: 96 * 128,
            useful_bytes: 12288,
            local_accesses: 7,
            barriers: 3,
        };
        let back = KernelStats::from_json(&s.to_json()).expect("decodes");
        assert_eq!(back, s);
    }

    #[test]
    fn timing_model_prefers_coalesced() {
        let dev = DeviceProfile::gtx780();
        let a = KernelStats {
            threads: 1000,
            warp_instructions: 1000,
            global_transactions: 100,
            bus_bytes: 100 * 128,
            useful_bytes: 100 * 128,
            local_accesses: 0,
            barriers: 0,
        };
        let mut b = a;
        b.global_transactions = 3200;
        b.bus_bytes = 3200 * 128;
        assert!(kernel_time_us(&dev, &b) > kernel_time_us(&dev, &a));
    }

    #[test]
    fn freed_buffer_is_poisoned_not_silently_readable() {
        let mut mem = DeviceMemory::new();
        let id = mem.upload(Buffer::I64(vec![1, 2, 3])).unwrap();
        mem.free(id);
        match mem.download(id) {
            Err(SimError::UseAfterFree { buf, .. }) => assert_eq!(buf, id),
            other => panic!("expected UseAfterFree, got {other:?}"),
        }
        match mem.buffer_mut(id) {
            Err(SimError::UseAfterFree { buf, .. }) => assert_eq!(buf, id),
            other => panic!("expected UseAfterFree, got {other:?}"),
        }
        // And a never-allocated id reports the same structured error.
        assert!(matches!(
            mem.download(999),
            Err(SimError::UseAfterFree { buf: 999, .. })
        ));
    }

    #[test]
    fn reuse_recycles_the_slot_and_zeroes_the_data() {
        let mut mem = DeviceMemory::new();
        let a = mem.upload(Buffer::I64(vec![7, 8, 9])).unwrap();
        let a_stamp = mem.stamp(a).unwrap();
        mem.free(a);
        // Incompatible shape: no reuse.
        let b = mem.alloc(ScalarType::I64, 4).unwrap();
        assert_ne!(b, a);
        // Compatible shape: the dead slot is recycled, with fresh zeroes
        // (never the poisoned old data) and a fresh stamp.
        let c = mem.alloc(ScalarType::I64, 3).unwrap();
        assert_eq!(c, a);
        assert_eq!(mem.download(c).unwrap(), &Buffer::zeros(ScalarType::I64, 3));
        assert!(mem.stamp(c).unwrap() > a_stamp);
        let s = mem.stats();
        assert_eq!((s.allocs, s.frees, s.reuses), (3, 1, 1));
    }

    #[test]
    fn live_and_peak_bytes_track_the_footprint() {
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(ScalarType::I64, 100).unwrap(); // 800 bytes
        let _b = mem.alloc(ScalarType::F32, 50).unwrap(); // 200 bytes
        assert_eq!(mem.live_bytes(), 1000);
        assert_eq!(mem.peak_bytes(), 1000);
        mem.free(a);
        assert_eq!(mem.live_bytes(), 200);
        assert_eq!(mem.peak_bytes(), 1000);
        // Double free is a no-op, not double counting.
        mem.free(a);
        assert_eq!(mem.live_bytes(), 200);
        assert_eq!(mem.stats().frees, 1);
        // Reuse re-charges the live footprint.
        let _c = mem.alloc(ScalarType::I64, 100).unwrap();
        assert_eq!(mem.live_bytes(), 1000);
    }

    #[test]
    fn capacity_exhaustion_is_a_structured_error() {
        let mut mem = DeviceMemory::with_capacity(1024);
        let a = mem.alloc(ScalarType::I64, 100).unwrap(); // 800 of 1024
        let e = mem.alloc(ScalarType::I64, 100).unwrap_err();
        match e {
            SimError::OutOfMemory {
                requested,
                live,
                capacity,
            } => {
                assert_eq!((requested, live, capacity), (800, 800, 1024));
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        // Freeing makes room again.
        mem.free(a);
        assert!(mem.alloc(ScalarType::I64, 128).is_ok());
        // The profile constructor wires the device capacity through.
        let dev = DeviceProfile::gtx780();
        let mem = DeviceMemory::from_profile(&dev);
        assert_eq!(mem.capacity, Some(dev.global_mem_bytes));
    }
}

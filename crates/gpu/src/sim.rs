//! The SIMT virtual GPU.
//!
//! Kernels execute group-by-group; within a group all threads run in
//! lockstep with divergence masks, exactly like warps on real hardware.
//! The simulator is *functional* (it computes the real answer in device
//! buffers) and *counted* (it accumulates the cost events the paper's
//! evaluation hinges on):
//!
//! - **warp instructions**: each statement costs one issue per active warp;
//! - **global-memory transactions**: per warp and access, the distinct
//!   aligned segments covered by the active lanes' addresses — the
//!   *coalescing* model of Section 5.2;
//! - **bus bytes**: transactions × transaction size (so uncoalesced code
//!   pays the full segment even for 4 useful bytes);
//! - local-memory accesses and barriers.

use crate::device::DeviceProfile;
use crate::kernel::Kernel;
use crate::tape::{host_threads, launch_decoded, DecodedKernel};
use futhark_core::{Buffer, Scalar, ScalarType};
use std::fmt;

/// A device buffer handle.
pub type BufId = usize;

/// Device global memory: a growable arena of typed buffers.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    buffers: Vec<Buffer>,
}

impl DeviceMemory {
    /// Creates empty device memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialised buffer.
    pub fn alloc(&mut self, t: ScalarType, len: usize) -> BufId {
        self.buffers.push(Buffer::zeros(t, len));
        self.buffers.len() - 1
    }

    /// Uploads host data.
    pub fn upload(&mut self, data: Buffer) -> BufId {
        self.buffers.push(data);
        self.buffers.len() - 1
    }

    /// Reads a buffer back.
    pub fn download(&self, id: BufId) -> &Buffer {
        &self.buffers[id]
    }

    /// Mutable access.
    pub fn buffer_mut(&mut self, id: BufId) -> &mut Buffer {
        &mut self.buffers[id]
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.buffers
            .iter()
            .map(|b| (b.len() * b.elem_type().byte_size()) as u64)
            .sum()
    }
}

/// An argument to a kernel launch.
#[derive(Debug, Clone)]
pub enum Arg {
    /// A global buffer.
    Buffer(BufId),
    /// A scalar.
    Scalar(Scalar),
}

/// Cost counters accumulated by one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Threads launched.
    pub threads: u64,
    /// Warp instruction issues.
    pub warp_instructions: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Bytes moved over the bus (transactions × transaction size).
    pub bus_bytes: u64,
    /// Bytes actually requested by threads.
    pub useful_bytes: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Barriers executed (per group).
    pub barriers: u64,
}

impl KernelStats {
    /// Coalescing efficiency: useful bytes / bus bytes (1.0 = perfect).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.bus_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.bus_bytes as f64
        }
    }

    /// Adds the counters of another launch into this one (used for
    /// per-kernel and whole-run aggregation).
    pub fn merge(&mut self, o: &KernelStats) {
        self.threads += o.threads;
        self.warp_instructions += o.warp_instructions;
        self.global_transactions += o.global_transactions;
        self.bus_bytes += o.bus_bytes;
        self.useful_bytes += o.useful_bytes;
        self.local_accesses += o.local_accesses;
        self.barriers += o.barriers;
    }

    /// Serialises to JSON (for trace archives).
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("threads", Json::U64(self.threads)),
            ("warp_instructions", Json::U64(self.warp_instructions)),
            ("global_transactions", Json::U64(self.global_transactions)),
            ("bus_bytes", Json::U64(self.bus_bytes)),
            ("useful_bytes", Json::U64(self.useful_bytes)),
            ("local_accesses", Json::U64(self.local_accesses)),
            ("barriers", Json::U64(self.barriers)),
        ])
    }

    /// Deserialises from JSON.
    pub fn from_json(j: &futhark_trace::Json) -> Option<KernelStats> {
        Some(KernelStats {
            threads: j.get("threads")?.as_u64()?,
            warp_instructions: j.get("warp_instructions")?.as_u64()?,
            global_transactions: j.get("global_transactions")?.as_u64()?,
            bus_bytes: j.get("bus_bytes")?.as_u64()?,
            useful_bytes: j.get("useful_bytes")?.as_u64()?,
            local_accesses: j.get("local_accesses")?.as_u64()?,
            barriers: j.get("barriers")?.as_u64()?,
        })
    }
}

/// Cost counters for one *source site* (a [`Prov`](futhark_core::Prov) set
/// from a kernel's provenance table), collected only in profiled execution
/// mode. Mirrors [`KernelStats`] minus `threads`, plus the inactive-lane
/// issue slots lost to divergence — tracked here and not in the aggregate
/// counters, so enabling profiling cannot perturb [`KernelStats`] by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteStats {
    /// Warp instruction issues attributed to this site.
    pub warp_instructions: u64,
    /// Issue slots executed by masked-off lanes of otherwise-active warps
    /// (SIMT divergence waste), scaled by instruction cost like
    /// `warp_instructions`.
    pub inactive_lane_instructions: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Bytes moved over the bus.
    pub bus_bytes: u64,
    /// Bytes actually requested by threads.
    pub useful_bytes: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Barriers executed (per group).
    pub barriers: u64,
}

impl SiteStats {
    /// Whether every counter is zero (such sites are omitted from reports).
    pub fn is_zero(&self) -> bool {
        *self == SiteStats::default()
    }

    /// Adds another site's counters into this one.
    pub fn merge(&mut self, o: &SiteStats) {
        self.warp_instructions += o.warp_instructions;
        self.inactive_lane_instructions += o.inactive_lane_instructions;
        self.global_transactions += o.global_transactions;
        self.bus_bytes += o.bus_bytes;
        self.useful_bytes += o.useful_bytes;
        self.local_accesses += o.local_accesses;
        self.barriers += o.barriers;
    }

    /// Serialises to JSON (for trace archives).
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("warp_instructions", Json::U64(self.warp_instructions)),
            (
                "inactive_lane_instructions",
                Json::U64(self.inactive_lane_instructions),
            ),
            ("global_transactions", Json::U64(self.global_transactions)),
            ("bus_bytes", Json::U64(self.bus_bytes)),
            ("useful_bytes", Json::U64(self.useful_bytes)),
            ("local_accesses", Json::U64(self.local_accesses)),
            ("barriers", Json::U64(self.barriers)),
        ])
    }

    /// Deserialises from JSON.
    pub fn from_json(j: &futhark_trace::Json) -> Option<SiteStats> {
        Some(SiteStats {
            warp_instructions: j.get("warp_instructions")?.as_u64()?,
            inactive_lane_instructions: j.get("inactive_lane_instructions")?.as_u64()?,
            global_transactions: j.get("global_transactions")?.as_u64()?,
            bus_bytes: j.get("bus_bytes")?.as_u64()?,
            useful_bytes: j.get("useful_bytes")?.as_u64()?,
            local_accesses: j.get("local_accesses")?.as_u64()?,
            barriers: j.get("barriers")?.as_u64()?,
        })
    }
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Out-of-bounds access in a kernel.
    OutOfBounds {
        /// Which kernel.
        kernel: String,
        /// Description.
        what: String,
    },
    /// Barrier reached by a divergent subset of a work-group.
    DivergentBarrier {
        /// Which kernel.
        kernel: String,
    },
    /// Scalar operator failure (type confusion, division by zero).
    Scalar(String),
    /// A while loop exceeded the iteration safety bound.
    RunawayLoop {
        /// Which kernel.
        kernel: String,
    },
    /// A local-memory buffer was sized with a negative element count
    /// (formerly clamped silently to zero).
    NegativeLocalSize {
        /// Which kernel.
        kernel: String,
        /// The requested element count.
        requested: i64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { kernel, what } => {
                write!(f, "out of bounds in kernel `{kernel}`: {what}")
            }
            SimError::DivergentBarrier { kernel } => {
                write!(f, "divergent barrier in kernel `{kernel}`")
            }
            SimError::Scalar(m) => write!(f, "scalar fault: {m}"),
            SimError::RunawayLoop { kernel } => {
                write!(f, "runaway while-loop in kernel `{kernel}`")
            }
            SimError::NegativeLocalSize { kernel, requested } => {
                write!(
                    f,
                    "negative local-memory size {requested} in kernel `{kernel}`"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

type SResult<T> = Result<T, SimError>;

/// Launches a kernel over `num_threads` threads and returns the accumulated
/// stats. Buffers are read and written in `mem`.
///
/// Decodes the kernel on the fly and executes its work-groups on
/// [`host_threads`] host threads (set `FUTHARK_SIM_THREADS` to override).
/// Callers that launch the same kernel repeatedly should decode once with
/// [`DecodedKernel::decode`] and call [`launch_decoded`] directly, as the
/// plan executor does.
///
/// # Errors
///
/// Returns a [`SimError`] on faults (bounds, divergent barriers, runaway
/// loops, negative local-memory sizes).
pub fn launch(
    device: &DeviceProfile,
    kernel: &Kernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
) -> SResult<KernelStats> {
    let dk = DecodedKernel::decode(kernel)?;
    launch_decoded(device, &dk, num_threads, args, mem, host_threads())
}

/// Timing model: microseconds for one launch with the given stats.
pub fn kernel_time_us(device: &DeviceProfile, stats: &KernelStats) -> f64 {
    let compute = device.compute_us(stats.warp_instructions as f64);
    let memory = device.memory_us(stats.bus_bytes as f64);
    let local = stats.local_accesses as f64
        / (device.num_cus as f64 * device.local_per_cycle * device.clock_ghz * 1e3);
    device.launch_overhead_us + compute.max(memory).max(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::*;

    fn vecadd_kernel(stride: i64) -> Kernel {
        // out[i] = a[idx] + b[idx] with idx = i*stride (stride 1 coalesced).
        let idx = KExp::GlobalId.mul(KExp::i64(stride));
        Kernel {
            name: "vecadd".into(),
            params: vec![
                KParam::Buffer(ScalarType::F32),
                KParam::Buffer(ScalarType::F32),
                KParam::Buffer(ScalarType::F32),
            ],
            locals: vec![],
            num_regs: 2,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: idx.clone(),
                },
                KStm::GlobalRead {
                    var: 1,
                    buf: 1,
                    index: idx.clone(),
                },
                KStm::GlobalWrite {
                    buf: 2,
                    index: idx,
                    value: KExp::BinOp(
                        futhark_core::BinOp::Add,
                        Box::new(KExp::Var(0)),
                        Box::new(KExp::Var(1)),
                    ),
                },
            ],
        }
    }

    #[test]
    fn vecadd_computes_and_is_coalesced() {
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let n = 1024usize;
        let a = mem.upload(Buffer::F32((0..n).map(|i| i as f32).collect()));
        let b = mem.upload(Buffer::F32(vec![1.0; n]));
        let c = mem.alloc(ScalarType::F32, n);
        let stats = launch(
            &dev,
            &vecadd_kernel(1),
            n as u64,
            &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap();
        let Buffer::F32(out) = mem.download(c) else {
            panic!()
        };
        assert_eq!(out[10], 11.0);
        assert_eq!(out[1023], 1024.0);
        // Coalesced: each warp of 32 f32 reads = 128 bytes = 1 transaction.
        // 3 accesses × 32 warps = 96 transactions.
        assert_eq!(stats.global_transactions, 96);
        assert!(stats.coalescing_efficiency() > 0.99);
    }

    #[test]
    fn strided_access_multiplies_transactions() {
        let dev = DeviceProfile::gtx780();
        let stride = 32i64;
        let n = 1024usize;
        let total = n * stride as usize;
        let mut mem = DeviceMemory::new();
        let a = mem.upload(Buffer::F32(vec![2.0; total]));
        let b = mem.upload(Buffer::F32(vec![3.0; total]));
        let c = mem.alloc(ScalarType::F32, total);
        let stats = launch(
            &dev,
            &vecadd_kernel(stride),
            n as u64,
            &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap();
        // Every lane hits its own 128-byte segment: 32× the transactions.
        assert_eq!(stats.global_transactions, 96 * 32);
        assert!(stats.coalescing_efficiency() < 0.05);
    }

    #[test]
    fn local_memory_staging_with_barrier() {
        // Each thread writes its id to local memory, barriers, then reads
        // its neighbour's value (a rotation within the group).
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "rotate".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![(ScalarType::I64, KExp::GroupSize)],
            num_regs: 2,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::LocalWrite {
                    mem: 0,
                    index: KExp::LocalId,
                    value: KExp::GlobalId,
                },
                KStm::Barrier,
                KStm::Assign {
                    var: 0,
                    exp: KExp::LocalId.add(KExp::i64(1)).rem(KExp::GroupSize),
                },
                KStm::LocalRead {
                    var: 1,
                    mem: 0,
                    index: KExp::Var(0),
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(1),
                },
            ],
        };
        let mut mem = DeviceMemory::new();
        let n = 512usize;
        let out = mem.alloc(ScalarType::I64, n);
        let stats = launch(&dev, &k, n as u64, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out) else {
            panic!()
        };
        assert_eq!(v[0], 1);
        assert_eq!(v[255], 0); // wraps within the first group of 256
        assert_eq!(v[256], 257);
        assert_eq!(stats.barriers, 2); // one per group
        assert!(stats.local_accesses >= 1024);
    }

    #[test]
    fn divergence_executes_both_sides() {
        // if (id % 2 == 0) out[id] = 1 else out[id] = 2.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "diverge".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::If {
                cond: KExp::Cmp(
                    futhark_core::CmpOp::Eq,
                    Box::new(KExp::GlobalId.rem(KExp::i64(2))),
                    Box::new(KExp::i64(0)),
                ),
                then_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::i64(1),
                }],
                else_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::i64(2),
                }],
            }],
        };
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(ScalarType::I64, 64);
        launch(&dev, &k, 64, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out) else {
            panic!()
        };
        assert_eq!(v[0], 1);
        assert_eq!(v[1], 2);
        assert_eq!(v[63], 2);
    }

    #[test]
    fn for_loop_with_variant_bounds() {
        // out[id] = sum(0..id) via a per-thread loop; bounds diverge.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "tri".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 2,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::Assign {
                    var: 1,
                    exp: KExp::i64(0),
                },
                KStm::For {
                    var: 0,
                    bound: KExp::GlobalId,
                    body: vec![KStm::Assign {
                        var: 1,
                        exp: KExp::Var(1).add(KExp::Var(0)),
                    }],
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(1),
                },
            ],
        };
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(ScalarType::I64, 16);
        launch(&dev, &k, 16, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out) else {
            panic!()
        };
        assert_eq!(v[0], 0);
        assert_eq!(v[5], 10);
        assert_eq!(v[15], 105);
    }

    #[test]
    fn oob_is_reported() {
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let small = mem.alloc(ScalarType::F32, 4);
        let b = mem.alloc(ScalarType::F32, 4);
        let c = mem.alloc(ScalarType::F32, 4);
        let e = launch(
            &dev,
            &vecadd_kernel(1),
            64,
            &[Arg::Buffer(small), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap_err();
        assert!(matches!(e, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn kernel_stats_invariants_hold_for_real_launches() {
        // Whatever the access pattern, the bus never moves fewer bytes
        // than the threads asked for, and efficiency stays in (0, 1].
        let dev = DeviceProfile::gtx780();
        for stride in [1i64, 7, 32] {
            let n = 256usize;
            let total = n * stride as usize;
            let mut mem = DeviceMemory::new();
            let a = mem.upload(Buffer::F32(vec![2.0; total]));
            let b = mem.upload(Buffer::F32(vec![3.0; total]));
            let c = mem.alloc(ScalarType::F32, total);
            let stats = launch(
                &dev,
                &vecadd_kernel(stride),
                n as u64,
                &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
                &mut mem,
            )
            .unwrap();
            assert!(
                stats.useful_bytes <= stats.bus_bytes,
                "stride {stride}: useful {} > bus {}",
                stats.useful_bytes,
                stats.bus_bytes
            );
            let eff = stats.coalescing_efficiency();
            assert!(
                eff > 0.0 && eff <= 1.0,
                "stride {stride}: efficiency {eff} outside (0, 1]"
            );
        }
        // No memory traffic counts as perfectly coalesced.
        assert_eq!(KernelStats::default().coalescing_efficiency(), 1.0);
    }

    #[test]
    fn kernel_stats_merge_sums_every_field() {
        let a = KernelStats {
            threads: 100,
            warp_instructions: 40,
            global_transactions: 9,
            bus_bytes: 9 * 128,
            useful_bytes: 800,
            local_accesses: 12,
            barriers: 2,
        };
        let b = KernelStats {
            threads: 33,
            warp_instructions: 7,
            global_transactions: 4,
            bus_bytes: 4 * 128,
            useful_bytes: 300,
            local_accesses: 5,
            barriers: 1,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.threads, a.threads + b.threads);
        assert_eq!(
            m.warp_instructions,
            a.warp_instructions + b.warp_instructions
        );
        assert_eq!(
            m.global_transactions,
            a.global_transactions + b.global_transactions
        );
        assert_eq!(m.bus_bytes, a.bus_bytes + b.bus_bytes);
        assert_eq!(m.useful_bytes, a.useful_bytes + b.useful_bytes);
        assert_eq!(m.local_accesses, a.local_accesses + b.local_accesses);
        assert_eq!(m.barriers, a.barriers + b.barriers);
        // Merging the identity changes nothing.
        let mut id = a;
        id.merge(&KernelStats::default());
        assert_eq!(id, a);
    }

    #[test]
    fn kernel_stats_round_trip_through_json() {
        let s = KernelStats {
            threads: 1024,
            warp_instructions: 96,
            global_transactions: 96,
            bus_bytes: 96 * 128,
            useful_bytes: 12288,
            local_accesses: 7,
            barriers: 3,
        };
        let back = KernelStats::from_json(&s.to_json()).expect("decodes");
        assert_eq!(back, s);
    }

    #[test]
    fn timing_model_prefers_coalesced() {
        let dev = DeviceProfile::gtx780();
        let a = KernelStats {
            threads: 1000,
            warp_instructions: 1000,
            global_transactions: 100,
            bus_bytes: 100 * 128,
            useful_bytes: 100 * 128,
            local_accesses: 0,
            barriers: 0,
        };
        let mut b = a;
        b.global_transactions = 3200;
        b.bus_bytes = 3200 * 128;
        assert!(kernel_time_us(&dev, &b) > kernel_time_us(&dev, &a));
    }
}

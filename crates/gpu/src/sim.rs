//! The SIMT virtual GPU.
//!
//! Kernels execute group-by-group; within a group all threads run in
//! lockstep with divergence masks, exactly like warps on real hardware.
//! The simulator is *functional* (it computes the real answer in device
//! buffers) and *counted* (it accumulates the cost events the paper's
//! evaluation hinges on):
//!
//! - **warp instructions**: each statement costs one issue per active warp;
//! - **global-memory transactions**: per warp and access, the distinct
//!   aligned segments covered by the active lanes' addresses — the
//!   *coalescing* model of Section 5.2;
//! - **bus bytes**: transactions × transaction size (so uncoalesced code
//!   pays the full segment even for 4 useful bytes);
//! - local-memory accesses and barriers.

// Lane loops index several parallel per-lane arrays (mask, offsets,
// registers) by the same lane id; iterator rewrites obscure that.
#![allow(clippy::needless_range_loop)]

use crate::device::DeviceProfile;
use crate::kernel::{KExp, KStm, Kernel};
use futhark_core::{Buffer, Scalar, ScalarType};
use futhark_interp::scalar::{eval_binop, eval_cmp, eval_convert, eval_unop};
use std::collections::HashSet;
use std::fmt;

/// A device buffer handle.
pub type BufId = usize;

/// Device global memory: a growable arena of typed buffers.
#[derive(Debug, Default)]
pub struct DeviceMemory {
    buffers: Vec<Buffer>,
}

impl DeviceMemory {
    /// Creates empty device memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a zero-initialised buffer.
    pub fn alloc(&mut self, t: ScalarType, len: usize) -> BufId {
        self.buffers.push(Buffer::zeros(t, len));
        self.buffers.len() - 1
    }

    /// Uploads host data.
    pub fn upload(&mut self, data: Buffer) -> BufId {
        self.buffers.push(data);
        self.buffers.len() - 1
    }

    /// Reads a buffer back.
    pub fn download(&self, id: BufId) -> &Buffer {
        &self.buffers[id]
    }

    /// Mutable access.
    pub fn buffer_mut(&mut self, id: BufId) -> &mut Buffer {
        &mut self.buffers[id]
    }

    /// Total allocated bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.buffers
            .iter()
            .map(|b| (b.len() * b.elem_type().byte_size()) as u64)
            .sum()
    }
}

/// An argument to a kernel launch.
#[derive(Debug, Clone)]
pub enum Arg {
    /// A global buffer.
    Buffer(BufId),
    /// A scalar.
    Scalar(Scalar),
}

/// Cost counters accumulated by one launch.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Threads launched.
    pub threads: u64,
    /// Warp instruction issues.
    pub warp_instructions: u64,
    /// Global-memory transactions.
    pub global_transactions: u64,
    /// Bytes moved over the bus (transactions × transaction size).
    pub bus_bytes: u64,
    /// Bytes actually requested by threads.
    pub useful_bytes: u64,
    /// Local-memory accesses.
    pub local_accesses: u64,
    /// Barriers executed (per group).
    pub barriers: u64,
}

impl KernelStats {
    /// Coalescing efficiency: useful bytes / bus bytes (1.0 = perfect).
    pub fn coalescing_efficiency(&self) -> f64 {
        if self.bus_bytes == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.bus_bytes as f64
        }
    }

    /// Adds the counters of another launch into this one (used for
    /// per-kernel and whole-run aggregation).
    pub fn merge(&mut self, o: &KernelStats) {
        self.threads += o.threads;
        self.warp_instructions += o.warp_instructions;
        self.global_transactions += o.global_transactions;
        self.bus_bytes += o.bus_bytes;
        self.useful_bytes += o.useful_bytes;
        self.local_accesses += o.local_accesses;
        self.barriers += o.barriers;
    }

    /// Serialises to JSON (for trace archives).
    pub fn to_json(&self) -> futhark_trace::Json {
        use futhark_trace::Json;
        Json::obj(vec![
            ("threads", Json::U64(self.threads)),
            ("warp_instructions", Json::U64(self.warp_instructions)),
            ("global_transactions", Json::U64(self.global_transactions)),
            ("bus_bytes", Json::U64(self.bus_bytes)),
            ("useful_bytes", Json::U64(self.useful_bytes)),
            ("local_accesses", Json::U64(self.local_accesses)),
            ("barriers", Json::U64(self.barriers)),
        ])
    }

    /// Deserialises from JSON.
    pub fn from_json(j: &futhark_trace::Json) -> Option<KernelStats> {
        Some(KernelStats {
            threads: j.get("threads")?.as_u64()?,
            warp_instructions: j.get("warp_instructions")?.as_u64()?,
            global_transactions: j.get("global_transactions")?.as_u64()?,
            bus_bytes: j.get("bus_bytes")?.as_u64()?,
            useful_bytes: j.get("useful_bytes")?.as_u64()?,
            local_accesses: j.get("local_accesses")?.as_u64()?,
            barriers: j.get("barriers")?.as_u64()?,
        })
    }
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Out-of-bounds access in a kernel.
    OutOfBounds {
        /// Which kernel.
        kernel: String,
        /// Description.
        what: String,
    },
    /// Barrier reached by a divergent subset of a work-group.
    DivergentBarrier {
        /// Which kernel.
        kernel: String,
    },
    /// Scalar operator failure (type confusion, division by zero).
    Scalar(String),
    /// A while loop exceeded the iteration safety bound.
    RunawayLoop {
        /// Which kernel.
        kernel: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { kernel, what } => {
                write!(f, "out of bounds in kernel `{kernel}`: {what}")
            }
            SimError::DivergentBarrier { kernel } => {
                write!(f, "divergent barrier in kernel `{kernel}`")
            }
            SimError::Scalar(m) => write!(f, "scalar fault: {m}"),
            SimError::RunawayLoop { kernel } => {
                write!(f, "runaway while-loop in kernel `{kernel}`")
            }
        }
    }
}

impl std::error::Error for SimError {}

type SResult<T> = Result<T, SimError>;

struct Lane {
    regs: Vec<Scalar>,
    privs: Vec<Vec<Scalar>>,
}

struct GroupCtx<'a> {
    kernel: &'a Kernel,
    args: &'a [Arg],
    scalars: Vec<Option<Scalar>>,
    group_id: u64,
    group_size: u64,
    num_threads: u64,
    warp_size: usize,
    transaction_bytes: u64,
    lanes: Vec<Lane>,
    locals: Vec<Buffer>,
}

/// Launches a kernel over `num_threads` threads and returns the accumulated
/// stats. Buffers are read and written in `mem`.
///
/// # Errors
///
/// Returns a [`SimError`] on faults (bounds, divergent barriers, runaway
/// loops).
pub fn launch(
    device: &DeviceProfile,
    kernel: &Kernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
) -> SResult<KernelStats> {
    let group_size = device.group_size as u64;
    let num_groups = num_threads.div_ceil(group_size).max(1);
    let mut stats = KernelStats {
        threads: num_threads,
        ..KernelStats::default()
    };
    // Pre-extract scalar args for local sizing.
    let scalars: Vec<Option<Scalar>> = args
        .iter()
        .map(|a| match a {
            Arg::Scalar(s) => Some(*s),
            Arg::Buffer(_) => None,
        })
        .collect();
    for g in 0..num_groups {
        let lanes_in_group = group_size.min(num_threads.saturating_sub(g * group_size));
        if lanes_in_group == 0 {
            continue;
        }
        let mut ctx = GroupCtx {
            kernel,
            args,
            scalars: scalars.clone(),
            group_id: g,
            group_size,
            num_threads,
            warp_size: device.warp_size as usize,
            transaction_bytes: device.transaction_bytes,
            lanes: (0..lanes_in_group)
                .map(|_| Lane {
                    regs: vec![Scalar::I64(0); kernel.num_regs as usize],
                    privs: vec![Vec::new(); kernel.num_priv],
                })
                .collect(),
            locals: Vec::new(),
        };
        // Size local buffers.
        for (t, size) in &kernel.locals {
            let n = ctx.eval_uniform(size)?;
            ctx.locals.push(Buffer::zeros(*t, n.max(0) as usize));
        }
        let mask: Vec<bool> = vec![true; lanes_in_group as usize];
        let mut gstats = KernelStats::default();
        ctx.exec(&kernel.body, &mask, mem, &mut gstats)?;
        stats.merge(&gstats);
    }
    Ok(stats)
}

impl<'a> GroupCtx<'a> {
    /// Evaluates an expression that must be uniform across the group (local
    /// buffer sizes): uses lane 0 semantics without lane state.
    fn eval_uniform(&self, e: &KExp) -> SResult<i64> {
        match e {
            KExp::Const(k) => k
                .as_i64()
                .ok_or_else(|| SimError::Scalar("non-integer uniform expression".into())),
            KExp::GroupSize => Ok(self.group_size as i64),
            KExp::ScalarArg(i) => self.scalars[*i]
                .and_then(|s| s.as_i64())
                .ok_or_else(|| SimError::Scalar("bad scalar argument".into())),
            KExp::BinOp(op, a, b) => {
                let x = self.eval_uniform(a)?;
                let y = self.eval_uniform(b)?;
                eval_binop(*op, Scalar::I64(x), Scalar::I64(y))
                    .map_err(|e| SimError::Scalar(e.to_string()))?
                    .as_i64()
                    .ok_or_else(|| SimError::Scalar("non-integer uniform".into()))
            }
            _ => Err(SimError::Scalar(
                "local size must be built from constants and scalar args".into(),
            )),
        }
    }

    fn eval(&self, e: &KExp, lane: usize) -> SResult<Scalar> {
        Ok(match e {
            KExp::Const(k) => *k,
            KExp::Var(r) => self.lanes[lane].regs[*r as usize],
            KExp::GlobalId => Scalar::I64((self.group_id * self.group_size + lane as u64) as i64),
            KExp::GroupId => Scalar::I64(self.group_id as i64),
            KExp::LocalId => Scalar::I64(lane as i64),
            KExp::GroupSize => Scalar::I64(self.group_size as i64),
            KExp::NumThreads => Scalar::I64(self.num_threads as i64),
            KExp::ScalarArg(i) => self.scalars[*i]
                .ok_or_else(|| SimError::Scalar(format!("argument {i} is not a scalar")))?,
            KExp::BinOp(op, a, b) => {
                let x = self.eval(a, lane)?;
                let y = self.eval(b, lane)?;
                eval_binop(*op, x, y).map_err(|e| SimError::Scalar(e.to_string()))?
            }
            KExp::Cmp(op, a, b) => {
                let x = self.eval(a, lane)?;
                let y = self.eval(b, lane)?;
                eval_cmp(*op, x, y).map_err(|e| SimError::Scalar(e.to_string()))?
            }
            KExp::UnOp(op, a) => {
                let x = self.eval(a, lane)?;
                eval_unop(*op, x).map_err(|e| SimError::Scalar(e.to_string()))?
            }
            KExp::Convert(t, a) => {
                let x = self.eval(a, lane)?;
                eval_convert(*t, x).map_err(|e| SimError::Scalar(e.to_string()))?
            }
        })
    }

    fn eval_index(&self, e: &KExp, lane: usize) -> SResult<i64> {
        self.eval(e, lane)?
            .as_i64()
            .ok_or_else(|| SimError::Scalar("non-integer index".into()))
    }

    fn buffer_id(&self, arg: usize) -> SResult<BufId> {
        match &self.args[arg] {
            Arg::Buffer(b) => Ok(*b),
            Arg::Scalar(_) => Err(SimError::Scalar(format!("argument {arg} is not a buffer"))),
        }
    }

    /// Counts the warp issue cost for one statement over a mask.
    fn issue(&self, mask: &[bool], ops: u64, stats: &mut KernelStats) {
        let mut warps = 0u64;
        for chunk in mask.chunks(self.warp_size) {
            if chunk.iter().any(|&b| b) {
                warps += 1;
            }
        }
        stats.warp_instructions += warps * (1 + ops);
    }

    /// Counts memory transactions for a warp-grouped global access.
    fn memory_access(
        &self,
        mask: &[bool],
        offsets: &[Option<i64>],
        elem_bytes: u64,
        stats: &mut KernelStats,
    ) {
        for (w, chunk) in mask.chunks(self.warp_size).enumerate() {
            let mut segments: HashSet<i64> = HashSet::new();
            let mut useful = 0u64;
            for (l, &on) in chunk.iter().enumerate() {
                if !on {
                    continue;
                }
                if let Some(off) = offsets[w * self.warp_size + l] {
                    segments.insert((off * elem_bytes as i64) / self.transaction_bytes as i64);
                    useful += elem_bytes;
                }
            }
            stats.global_transactions += segments.len() as u64;
            stats.bus_bytes += segments.len() as u64 * self.transaction_bytes;
            stats.useful_bytes += useful;
        }
    }

    fn exec(
        &mut self,
        stms: &[KStm],
        mask: &[bool],
        mem: &mut DeviceMemory,
        stats: &mut KernelStats,
    ) -> SResult<()> {
        if !mask.iter().any(|&b| b) {
            return Ok(());
        }
        for stm in stms {
            match stm {
                KStm::Assign { var, exp } => {
                    self.issue(mask, exp.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let v = self.eval(exp, lane)?;
                            self.lanes[lane].regs[*var as usize] = v;
                        }
                    }
                }
                KStm::GlobalRead { var, buf, index } => {
                    self.issue(mask, index.op_count(), stats);
                    let bid = self.buffer_id(*buf)?;
                    let len = mem.download(bid).len() as i64;
                    let elem = mem.download(bid).elem_type();
                    let mut offsets = vec![None; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            if i < 0 || i >= len {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.kernel.name.clone(),
                                    what: format!("read {i} of buffer len {len}"),
                                });
                            }
                            offsets[lane] = Some(i);
                            let v = mem.download(bid).get(i as usize);
                            self.lanes[lane].regs[*var as usize] = v;
                        }
                    }
                    self.memory_access(mask, &offsets, elem.byte_size() as u64, stats);
                }
                KStm::GlobalWrite { buf, index, value } => {
                    self.issue(mask, index.op_count() + value.op_count(), stats);
                    let bid = self.buffer_id(*buf)?;
                    let len = mem.download(bid).len() as i64;
                    let elem = mem.download(bid).elem_type();
                    let mut offsets = vec![None; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            if i < 0 || i >= len {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.kernel.name.clone(),
                                    what: format!("write {i} of buffer len {len}"),
                                });
                            }
                            let v = self.eval(value, lane)?;
                            offsets[lane] = Some(i);
                            mem.buffer_mut(bid).set(i as usize, v);
                        }
                    }
                    self.memory_access(mask, &offsets, elem.byte_size() as u64, stats);
                }
                KStm::LocalRead {
                    var,
                    mem: lm,
                    index,
                } => {
                    self.issue(mask, index.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let buf = &self.locals[*lm];
                            if i < 0 || i as usize >= buf.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.kernel.name.clone(),
                                    what: format!("local read {i} of len {}", buf.len()),
                                });
                            }
                            let v = buf.get(i as usize);
                            self.lanes[lane].regs[*var as usize] = v;
                            stats.local_accesses += 1;
                        }
                    }
                }
                KStm::LocalWrite {
                    mem: lm,
                    index,
                    value,
                } => {
                    self.issue(mask, index.op_count() + value.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let v = self.eval(value, lane)?;
                            let buf = &mut self.locals[*lm];
                            if i < 0 || i as usize >= buf.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.kernel.name.clone(),
                                    what: format!("local write {i} of len {}", buf.len()),
                                });
                            }
                            buf.set(i as usize, v);
                            stats.local_accesses += 1;
                        }
                    }
                }
                KStm::PrivAlloc { arr, elem, size } => {
                    self.issue(mask, size.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let n = self.eval_index(size, lane)?.max(0) as usize;
                            let init = Scalar::zero(*elem);
                            self.lanes[lane].privs[*arr] = vec![init; n];
                        }
                    }
                }
                KStm::PrivRead { var, arr, index } => {
                    self.issue(mask, index.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let p = &self.lanes[lane].privs[*arr];
                            if i < 0 || i as usize >= p.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.kernel.name.clone(),
                                    what: format!("private read {i} of len {}", p.len()),
                                });
                            }
                            let v = p[i as usize];
                            self.lanes[lane].regs[*var as usize] = v;
                        }
                    }
                }
                KStm::PrivWrite { arr, index, value } => {
                    self.issue(mask, index.op_count() + value.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let v = self.eval(value, lane)?;
                            let p = &mut self.lanes[lane].privs[*arr];
                            if i < 0 || i as usize >= p.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.kernel.name.clone(),
                                    what: format!("private write {i} of len {}", p.len()),
                                });
                            }
                            p[i as usize] = v;
                        }
                    }
                }
                KStm::PrivCopy { dst, src, len } => {
                    self.issue(mask, len.op_count(), stats);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let n = self.eval_index(len, lane)?.max(0) as usize;
                            let v: Vec<Scalar> = self.lanes[lane].privs[*src][..n].to_vec();
                            self.lanes[lane].privs[*dst] = v;
                        }
                    }
                }
                KStm::For { var, bound, body } => {
                    self.issue(mask, bound.op_count(), stats);
                    let bounds: Vec<i64> = (0..mask.len())
                        .map(|lane| {
                            if mask[lane] {
                                self.eval_index(bound, lane)
                            } else {
                                Ok(0)
                            }
                        })
                        .collect::<SResult<_>>()?;
                    let max_bound = bounds.iter().copied().max().unwrap_or(0);
                    for t in 0..max_bound {
                        let sub: Vec<bool> = mask
                            .iter()
                            .zip(&bounds)
                            .map(|(&m, &b)| m && t < b)
                            .collect();
                        if !sub.iter().any(|&b| b) {
                            break;
                        }
                        for lane in 0..mask.len() {
                            if sub[lane] {
                                self.lanes[lane].regs[*var as usize] = Scalar::I64(t);
                            }
                        }
                        self.exec(body, &sub, mem, stats)?;
                    }
                }
                KStm::While { cond, body } => {
                    let mut live = mask.to_vec();
                    let mut iterations = 0u64;
                    loop {
                        self.issue(&live, cond.op_count(), stats);
                        for lane in 0..live.len() {
                            if live[lane] {
                                let c = self.eval(cond, lane)?.as_bool().ok_or_else(|| {
                                    SimError::Scalar("non-boolean while condition".into())
                                })?;
                                live[lane] = c;
                            }
                        }
                        if !live.iter().any(|&b| b) {
                            break;
                        }
                        self.exec(body, &live, mem, stats)?;
                        iterations += 1;
                        if iterations > 100_000_000 {
                            return Err(SimError::RunawayLoop {
                                kernel: self.kernel.name.clone(),
                            });
                        }
                    }
                }
                KStm::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    self.issue(mask, cond.op_count(), stats);
                    let mut then_mask = vec![false; mask.len()];
                    let mut else_mask = vec![false; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let c = self.eval(cond, lane)?.as_bool().ok_or_else(|| {
                                SimError::Scalar("non-boolean if condition".into())
                            })?;
                            then_mask[lane] = c;
                            else_mask[lane] = !c;
                        }
                    }
                    self.exec(then_s, &then_mask, mem, stats)?;
                    self.exec(else_s, &else_mask, mem, stats)?;
                }
                KStm::Barrier => {
                    // All in-bounds lanes of the group must participate.
                    if mask.iter().any(|&b| !b) {
                        return Err(SimError::DivergentBarrier {
                            kernel: self.kernel.name.clone(),
                        });
                    }
                    stats.barriers += 1;
                    self.issue(mask, 0, stats);
                }
            }
        }
        Ok(())
    }
}

/// Timing model: microseconds for one launch with the given stats.
pub fn kernel_time_us(device: &DeviceProfile, stats: &KernelStats) -> f64 {
    let compute = device.compute_us(stats.warp_instructions as f64);
    let memory = device.memory_us(stats.bus_bytes as f64);
    let local = stats.local_accesses as f64
        / (device.num_cus as f64 * device.local_per_cycle * device.clock_ghz * 1e3);
    device.launch_overhead_us + compute.max(memory).max(local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::*;

    fn vecadd_kernel(stride: i64) -> Kernel {
        // out[i] = a[idx] + b[idx] with idx = i*stride (stride 1 coalesced).
        let idx = KExp::GlobalId.mul(KExp::i64(stride));
        Kernel {
            name: "vecadd".into(),
            params: vec![
                KParam::Buffer(ScalarType::F32),
                KParam::Buffer(ScalarType::F32),
                KParam::Buffer(ScalarType::F32),
            ],
            locals: vec![],
            num_regs: 2,
            num_priv: 0,
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: idx.clone(),
                },
                KStm::GlobalRead {
                    var: 1,
                    buf: 1,
                    index: idx.clone(),
                },
                KStm::GlobalWrite {
                    buf: 2,
                    index: idx,
                    value: KExp::BinOp(
                        futhark_core::BinOp::Add,
                        Box::new(KExp::Var(0)),
                        Box::new(KExp::Var(1)),
                    ),
                },
            ],
        }
    }

    #[test]
    fn vecadd_computes_and_is_coalesced() {
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let n = 1024usize;
        let a = mem.upload(Buffer::F32((0..n).map(|i| i as f32).collect()));
        let b = mem.upload(Buffer::F32(vec![1.0; n]));
        let c = mem.alloc(ScalarType::F32, n);
        let stats = launch(
            &dev,
            &vecadd_kernel(1),
            n as u64,
            &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap();
        let Buffer::F32(out) = mem.download(c) else {
            panic!()
        };
        assert_eq!(out[10], 11.0);
        assert_eq!(out[1023], 1024.0);
        // Coalesced: each warp of 32 f32 reads = 128 bytes = 1 transaction.
        // 3 accesses × 32 warps = 96 transactions.
        assert_eq!(stats.global_transactions, 96);
        assert!(stats.coalescing_efficiency() > 0.99);
    }

    #[test]
    fn strided_access_multiplies_transactions() {
        let dev = DeviceProfile::gtx780();
        let stride = 32i64;
        let n = 1024usize;
        let total = n * stride as usize;
        let mut mem = DeviceMemory::new();
        let a = mem.upload(Buffer::F32(vec![2.0; total]));
        let b = mem.upload(Buffer::F32(vec![3.0; total]));
        let c = mem.alloc(ScalarType::F32, total);
        let stats = launch(
            &dev,
            &vecadd_kernel(stride),
            n as u64,
            &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap();
        // Every lane hits its own 128-byte segment: 32× the transactions.
        assert_eq!(stats.global_transactions, 96 * 32);
        assert!(stats.coalescing_efficiency() < 0.05);
    }

    #[test]
    fn local_memory_staging_with_barrier() {
        // Each thread writes its id to local memory, barriers, then reads
        // its neighbour's value (a rotation within the group).
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "rotate".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![(ScalarType::I64, KExp::GroupSize)],
            num_regs: 2,
            num_priv: 0,
            body: vec![
                KStm::LocalWrite {
                    mem: 0,
                    index: KExp::LocalId,
                    value: KExp::GlobalId,
                },
                KStm::Barrier,
                KStm::Assign {
                    var: 0,
                    exp: KExp::LocalId.add(KExp::i64(1)).rem(KExp::GroupSize),
                },
                KStm::LocalRead {
                    var: 1,
                    mem: 0,
                    index: KExp::Var(0),
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(1),
                },
            ],
        };
        let mut mem = DeviceMemory::new();
        let n = 512usize;
        let out = mem.alloc(ScalarType::I64, n);
        let stats = launch(&dev, &k, n as u64, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out) else {
            panic!()
        };
        assert_eq!(v[0], 1);
        assert_eq!(v[255], 0); // wraps within the first group of 256
        assert_eq!(v[256], 257);
        assert_eq!(stats.barriers, 2); // one per group
        assert!(stats.local_accesses >= 1024);
    }

    #[test]
    fn divergence_executes_both_sides() {
        // if (id % 2 == 0) out[id] = 1 else out[id] = 2.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "diverge".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            body: vec![KStm::If {
                cond: KExp::Cmp(
                    futhark_core::CmpOp::Eq,
                    Box::new(KExp::GlobalId.rem(KExp::i64(2))),
                    Box::new(KExp::i64(0)),
                ),
                then_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::i64(1),
                }],
                else_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::i64(2),
                }],
            }],
        };
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(ScalarType::I64, 64);
        launch(&dev, &k, 64, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out) else {
            panic!()
        };
        assert_eq!(v[0], 1);
        assert_eq!(v[1], 2);
        assert_eq!(v[63], 2);
    }

    #[test]
    fn for_loop_with_variant_bounds() {
        // out[id] = sum(0..id) via a per-thread loop; bounds diverge.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "tri".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 2,
            num_priv: 0,
            body: vec![
                KStm::Assign {
                    var: 1,
                    exp: KExp::i64(0),
                },
                KStm::For {
                    var: 0,
                    bound: KExp::GlobalId,
                    body: vec![KStm::Assign {
                        var: 1,
                        exp: KExp::Var(1).add(KExp::Var(0)),
                    }],
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(1),
                },
            ],
        };
        let mut mem = DeviceMemory::new();
        let out = mem.alloc(ScalarType::I64, 16);
        launch(&dev, &k, 16, &[Arg::Buffer(out)], &mut mem).unwrap();
        let Buffer::I64(v) = mem.download(out) else {
            panic!()
        };
        assert_eq!(v[0], 0);
        assert_eq!(v[5], 10);
        assert_eq!(v[15], 105);
    }

    #[test]
    fn oob_is_reported() {
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let small = mem.alloc(ScalarType::F32, 4);
        let b = mem.alloc(ScalarType::F32, 4);
        let c = mem.alloc(ScalarType::F32, 4);
        let e = launch(
            &dev,
            &vecadd_kernel(1),
            64,
            &[Arg::Buffer(small), Arg::Buffer(b), Arg::Buffer(c)],
            &mut mem,
        )
        .unwrap_err();
        assert!(matches!(e, SimError::OutOfBounds { .. }));
    }

    #[test]
    fn kernel_stats_invariants_hold_for_real_launches() {
        // Whatever the access pattern, the bus never moves fewer bytes
        // than the threads asked for, and efficiency stays in (0, 1].
        let dev = DeviceProfile::gtx780();
        for stride in [1i64, 7, 32] {
            let n = 256usize;
            let total = n * stride as usize;
            let mut mem = DeviceMemory::new();
            let a = mem.upload(Buffer::F32(vec![2.0; total]));
            let b = mem.upload(Buffer::F32(vec![3.0; total]));
            let c = mem.alloc(ScalarType::F32, total);
            let stats = launch(
                &dev,
                &vecadd_kernel(stride),
                n as u64,
                &[Arg::Buffer(a), Arg::Buffer(b), Arg::Buffer(c)],
                &mut mem,
            )
            .unwrap();
            assert!(
                stats.useful_bytes <= stats.bus_bytes,
                "stride {stride}: useful {} > bus {}",
                stats.useful_bytes,
                stats.bus_bytes
            );
            let eff = stats.coalescing_efficiency();
            assert!(
                eff > 0.0 && eff <= 1.0,
                "stride {stride}: efficiency {eff} outside (0, 1]"
            );
        }
        // No memory traffic counts as perfectly coalesced.
        assert_eq!(KernelStats::default().coalescing_efficiency(), 1.0);
    }

    #[test]
    fn kernel_stats_merge_sums_every_field() {
        let a = KernelStats {
            threads: 100,
            warp_instructions: 40,
            global_transactions: 9,
            bus_bytes: 9 * 128,
            useful_bytes: 800,
            local_accesses: 12,
            barriers: 2,
        };
        let b = KernelStats {
            threads: 33,
            warp_instructions: 7,
            global_transactions: 4,
            bus_bytes: 4 * 128,
            useful_bytes: 300,
            local_accesses: 5,
            barriers: 1,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m.threads, a.threads + b.threads);
        assert_eq!(
            m.warp_instructions,
            a.warp_instructions + b.warp_instructions
        );
        assert_eq!(
            m.global_transactions,
            a.global_transactions + b.global_transactions
        );
        assert_eq!(m.bus_bytes, a.bus_bytes + b.bus_bytes);
        assert_eq!(m.useful_bytes, a.useful_bytes + b.useful_bytes);
        assert_eq!(m.local_accesses, a.local_accesses + b.local_accesses);
        assert_eq!(m.barriers, a.barriers + b.barriers);
        // Merging the identity changes nothing.
        let mut id = a;
        id.merge(&KernelStats::default());
        assert_eq!(id, a);
    }

    #[test]
    fn kernel_stats_round_trip_through_json() {
        let s = KernelStats {
            threads: 1024,
            warp_instructions: 96,
            global_transactions: 96,
            bus_bytes: 96 * 128,
            useful_bytes: 12288,
            local_accesses: 7,
            barriers: 3,
        };
        let back = KernelStats::from_json(&s.to_json()).expect("decodes");
        assert_eq!(back, s);
    }

    #[test]
    fn timing_model_prefers_coalesced() {
        let dev = DeviceProfile::gtx780();
        let a = KernelStats {
            threads: 1000,
            warp_instructions: 1000,
            global_transactions: 100,
            bus_bytes: 100 * 128,
            useful_bytes: 100 * 128,
            local_accesses: 0,
            barriers: 0,
        };
        let mut b = a;
        b.global_transactions = 3200;
        b.bus_bytes = 3200 * 128;
        assert!(kernel_time_us(&dev, &b) > kernel_time_us(&dev, &a));
    }
}

//! The GPU kernel IR: a small imperative per-thread language, the last
//! representation before (simulated) device code.
//!
//! A [`Kernel`] is a scalar program executed by every thread of a launch
//! grid. Threads are grouped into work-groups; each group shares *local
//! memory* (OpenCL terminology; CUDA calls it shared memory, Section 5's
//! footnotes 7 and 9) and can synchronise with [`KStm::Barrier`]. Each
//! thread additionally has *private* arrays (registers / spilled private
//! memory) for sequentialised inner SOACs.

use futhark_core::{BinOp, CmpOp, Prov, Scalar, ScalarType, UnOp};

/// A virtual register index within a kernel.
pub type Reg = u32;

/// A private (per-thread) array index within a kernel.
pub type PrivId = usize;

/// A local (per-group) memory buffer index within a kernel.
pub type LocalId = usize;

/// A scalar expression evaluated per thread.
#[derive(Debug, Clone, PartialEq)]
pub enum KExp {
    /// A constant.
    Const(Scalar),
    /// A virtual register.
    Var(Reg),
    /// The linear global thread id (`group_id * group_size + local_id`).
    GlobalId,
    /// The work-group id.
    GroupId,
    /// The intra-group (local) thread id.
    LocalId,
    /// The work-group size.
    GroupSize,
    /// The total number of threads in the launch.
    NumThreads,
    /// A scalar kernel argument.
    ScalarArg(usize),
    /// Binary operation.
    BinOp(BinOp, Box<KExp>, Box<KExp>),
    /// Unary operation.
    UnOp(UnOp, Box<KExp>),
    /// Comparison.
    Cmp(CmpOp, Box<KExp>, Box<KExp>),
    /// Conversion.
    Convert(ScalarType, Box<KExp>),
}

impl KExp {
    /// An `i64` constant.
    pub fn i64(k: i64) -> KExp {
        KExp::Const(Scalar::I64(k))
    }

    /// `self + other`, folding the `x + 0` identities so generated index
    /// arithmetic stays canonical (the tiling pattern matcher relies on
    /// `A[j]` lowering to a bare `Var(j)` index).
    #[allow(clippy::should_implement_trait)] // inherent, so call sites need no trait import
    pub fn add(self, other: KExp) -> KExp {
        if matches!(other, KExp::Const(Scalar::I64(0))) {
            return self;
        }
        if matches!(self, KExp::Const(Scalar::I64(0))) {
            return other;
        }
        if let (KExp::Const(Scalar::I64(a)), KExp::Const(Scalar::I64(b))) = (&self, &other) {
            return KExp::i64(a + b);
        }
        KExp::BinOp(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self * other`, folding `x * 1` and `x * 0`.
    #[allow(clippy::should_implement_trait)] // inherent, so call sites need no trait import
    pub fn mul(self, other: KExp) -> KExp {
        if matches!(other, KExp::Const(Scalar::I64(1))) {
            return self;
        }
        if matches!(self, KExp::Const(Scalar::I64(1))) {
            return other;
        }
        if matches!(other, KExp::Const(Scalar::I64(0)))
            || matches!(self, KExp::Const(Scalar::I64(0)))
        {
            return KExp::i64(0);
        }
        if let (KExp::Const(Scalar::I64(a)), KExp::Const(Scalar::I64(b))) = (&self, &other) {
            return KExp::i64(a * b);
        }
        KExp::BinOp(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self / other`.
    #[allow(clippy::should_implement_trait)] // inherent, so call sites need no trait import
    pub fn div(self, other: KExp) -> KExp {
        KExp::BinOp(BinOp::Div, Box::new(self), Box::new(other))
    }

    /// `self % other`.
    #[allow(clippy::should_implement_trait)] // inherent, so call sites need no trait import
    pub fn rem(self, other: KExp) -> KExp {
        KExp::BinOp(BinOp::Rem, Box::new(self), Box::new(other))
    }

    /// Number of scalar operations in this expression (cost model).
    pub fn op_count(&self) -> u64 {
        match self {
            KExp::Const(_)
            | KExp::Var(_)
            | KExp::GlobalId
            | KExp::GroupId
            | KExp::LocalId
            | KExp::GroupSize
            | KExp::NumThreads
            | KExp::ScalarArg(_) => 0,
            KExp::BinOp(_, a, b) | KExp::Cmp(_, a, b) => 1 + a.op_count() + b.op_count(),
            KExp::UnOp(_, a) | KExp::Convert(_, a) => 1 + a.op_count(),
        }
    }
}

/// A per-thread statement.
#[derive(Debug, Clone, PartialEq)]
pub enum KStm {
    /// `var := exp`.
    Assign {
        /// Destination register.
        var: Reg,
        /// Value.
        exp: KExp,
    },
    /// `var := global[buf][index]` (index in elements).
    GlobalRead {
        /// Destination register.
        var: Reg,
        /// Buffer argument position.
        buf: usize,
        /// Element index.
        index: KExp,
    },
    /// `global[buf][index] := value`.
    GlobalWrite {
        /// Buffer argument position.
        buf: usize,
        /// Element index.
        index: KExp,
        /// Stored value.
        value: KExp,
    },
    /// `var := local[mem][index]`.
    LocalRead {
        /// Destination register.
        var: Reg,
        /// Local buffer.
        mem: LocalId,
        /// Element index.
        index: KExp,
    },
    /// `local[mem][index] := value`.
    LocalWrite {
        /// Local buffer.
        mem: LocalId,
        /// Element index.
        index: KExp,
        /// Stored value.
        value: KExp,
    },
    /// Allocate (or clear) a private array of `size` elements.
    PrivAlloc {
        /// Private array id.
        arr: PrivId,
        /// Element type.
        elem: ScalarType,
        /// Element count.
        size: KExp,
    },
    /// `var := priv[arr][index]`.
    PrivRead {
        /// Destination register.
        var: Reg,
        /// Private array.
        arr: PrivId,
        /// Element index.
        index: KExp,
    },
    /// `priv[arr][index] := value`.
    PrivWrite {
        /// Private array.
        arr: PrivId,
        /// Element index.
        index: KExp,
        /// Stored value.
        value: KExp,
    },
    /// Copy one private array into another (same length).
    PrivCopy {
        /// Destination private array.
        dst: PrivId,
        /// Source private array.
        src: PrivId,
        /// Element count.
        len: KExp,
    },
    /// `for var in 0..bound { body }` (bound evaluated once per thread).
    For {
        /// Loop counter register (i64).
        var: Reg,
        /// Trip count.
        bound: KExp,
        /// Body.
        body: Vec<KStm>,
    },
    /// `while cond { body }` (condition re-evaluated each iteration).
    While {
        /// Condition (bool).
        cond: KExp,
        /// Body.
        body: Vec<KStm>,
    },
    /// `if cond { then_s } else { else_s }` (SIMT divergence).
    If {
        /// Condition (bool).
        cond: KExp,
        /// Taken when true.
        then_s: Vec<KStm>,
        /// Taken when false.
        else_s: Vec<KStm>,
    },
    /// Work-group barrier. All threads of the group must reach it.
    Barrier,
    /// Provenance marker: `body` descends from source site `prov` (an index
    /// into [`Kernel::prov_table`]). Semantically transparent; nested
    /// markers refine outer ones (the innermost marker wins).
    At {
        /// Index into the kernel's provenance table.
        prov: u32,
        /// The attributed statements.
        body: Vec<KStm>,
    },
}

/// Kernel parameter kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum KParam {
    /// A global-memory buffer of the given element type.
    Buffer(ScalarType),
    /// A scalar argument.
    Scalar(ScalarType),
}

/// A compiled kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Diagnostic name.
    pub name: String,
    /// Parameters in order: buffers and scalars share one argument list;
    /// [`KExp::ScalarArg`] and buffer indices refer into it.
    pub params: Vec<KParam>,
    /// Local (per-group) buffers: element type and size (an expression over
    /// scalar arguments and `GroupSize`).
    pub locals: Vec<(ScalarType, KExp)>,
    /// Number of virtual registers used.
    pub num_regs: u32,
    /// Number of private arrays used.
    pub num_priv: usize,
    /// The thread body.
    pub body: Vec<KStm>,
    /// Source provenance sets referenced by [`KStm::At`] markers.
    pub prov_table: Vec<Prov>,
}

impl Kernel {
    /// A rough static size measure (for diagnostics).
    pub fn stm_count(&self) -> usize {
        fn count(stms: &[KStm]) -> usize {
            stms.iter()
                .map(|s| match s {
                    KStm::For { body, .. } | KStm::While { body, .. } => 1 + count(body),
                    KStm::If { then_s, else_s, .. } => 1 + count(then_s) + count(else_s),
                    KStm::At { body, .. } => count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_count_counts_tree_nodes() {
        let e = KExp::GlobalId.mul(KExp::i64(4)).add(KExp::i64(1));
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn stm_count_recurses() {
        let k = Kernel {
            name: "t".into(),
            params: vec![],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            body: vec![KStm::For {
                var: 0,
                bound: KExp::i64(4),
                body: vec![KStm::Barrier, KStm::Barrier],
            }],
            prov_table: vec![],
        };
        assert_eq!(k.stm_count(), 3);
    }
}

//! Pre-decoded kernel execution: flat opcode tapes, typed register files,
//! and deterministic parallel work-group execution.
//!
//! The tree-walking simulator paid for every scalar operation twice: once
//! chasing `Box`ed [`KExp`] nodes, and once boxing/unboxing [`Scalar`]
//! enum values in `Vec<Scalar>` register files. [`DecodedKernel::decode`]
//! removes both costs ahead of time:
//!
//! - every expression becomes a flat postfix [`Tape`] of [`EOp`]s evaluated
//!   on a small `u64` bit-stack — no recursion, no allocation per lane;
//! - every virtual register gets a *statically inferred* scalar class and a
//!   slot in a typed, unboxed register file (separate `Vec<i64>`,
//!   `Vec<i32>`, `Vec<f32>`, `Vec<f64>`, `Vec<bool>` in structure-of-arrays
//!   layout, `file[slot * lanes + lane]`) instead of a `Vec<Scalar>` per
//!   lane.
//!
//! Scalar *semantics* are unchanged: integer arithmetic wraps, `/` and `%`
//! are floored ([`futhark_interp::scalar::floor_div_i64`] and friends), and
//! the rare ops with delicate float behaviour (`UnOp`, `Convert`) reuse the
//! interpreter's own helpers on reconstructed [`Scalar`]s so the simulator
//! cannot drift from the reference semantics.
//!
//! # Parallel work-group execution and the launch memory model
//!
//! Work-groups of one launch are independent by construction: this module
//! *defines* a launch as every group reading the device memory snapshot
//! taken at launch time plus its **own** writes (a per-group write log
//! overlays the snapshot), with the logs applied to device memory in
//! ascending group order once all groups finish. Sequential and parallel
//! execution both implement exactly this definition, so they are
//! bit-identical — in output values *and* in every [`KernelStats`] counter
//! — no matter how groups are scheduled across host threads.
//!
//! Data-race freedom: worker threads share only immutable state (the
//! decoded kernel, the launch arguments, and the `&DeviceMemory` snapshot);
//! each group accumulates its writes and stats privately. Conflicting
//! writes to the same element from *different* groups are resolved
//! deterministically by the ordered log application (highest group id
//! wins, matching what sequential group-at-a-time execution produced);
//! within a group, later lanes/statements win, as on real hardware's
//! in-order warp retirement. The only behaviour this model cannot express
//! is a group *reading* another group's write from the same launch — that
//! is a data race on a real GPU (no inter-group synchronisation exists
//! short of kernel exit), the code generator never emits it, and under
//! this model such a read deterministically sees the pre-launch value.
//!
//! Errors are deterministic too: if any group faults, the error of the
//! lowest-numbered faulting group is reported (what sequential execution
//! would have hit first), after applying the write logs of the groups
//! before it.

// Lane loops index several parallel per-lane arrays (mask, offsets,
// registers) by the same lane id; iterator rewrites obscure that.
#![allow(clippy::needless_range_loop)]

use crate::device::DeviceProfile;
use crate::kernel::{KExp, KParam, KStm, Kernel};
use crate::sim::{Arg, BufId, DeviceMemory, KernelStats, SimError, SiteStats};
use futhark_core::{BinOp, Buffer, CmpOp, Prov, Scalar, ScalarType, UnOp};
use futhark_interp::scalar::{
    eval_binop, eval_convert, eval_unop, floor_div_i32, floor_div_i64, floor_mod_i32, floor_mod_i64,
};
use std::collections::HashMap;

type SResult<T> = Result<T, SimError>;

// ---------------------------------------------------------------------------
// Bit encoding
// ---------------------------------------------------------------------------
//
// All runtime values travel as raw `u64` bit patterns; the statically known
// class says how to interpret them. Encoding: i64 as-is; i32 zero-extended
// from its 32-bit two's-complement pattern; floats via `to_bits` (f32 in the
// low 32 bits); bool as 0/1. Round-tripping is exact, including NaN
// payloads.

#[inline]
fn enc(s: Scalar) -> u64 {
    match s {
        Scalar::Bool(b) => b as u64,
        Scalar::I32(v) => v as u32 as u64,
        Scalar::I64(v) => v as u64,
        Scalar::F32(v) => v.to_bits() as u64,
        Scalar::F64(v) => v.to_bits(),
    }
}

#[inline]
fn dec(t: ScalarType, bits: u64) -> Scalar {
    match t {
        ScalarType::Bool => Scalar::Bool(bits != 0),
        ScalarType::I32 => Scalar::I32(bits as u32 as i32),
        ScalarType::I64 => Scalar::I64(bits as i64),
        ScalarType::F32 => Scalar::F32(f32::from_bits(bits as u32)),
        ScalarType::F64 => Scalar::F64(f64::from_bits(bits)),
    }
}

#[inline]
fn buf_get_bits(b: &Buffer, i: usize) -> u64 {
    match b {
        Buffer::Bool(v) => v[i] as u64,
        Buffer::I32(v) => v[i] as u32 as u64,
        Buffer::I64(v) => v[i] as u64,
        Buffer::F32(v) => v[i].to_bits() as u64,
        Buffer::F64(v) => v[i].to_bits(),
    }
}

#[inline]
fn buf_set_bits(b: &mut Buffer, i: usize, bits: u64) {
    match b {
        Buffer::Bool(v) => v[i] = bits != 0,
        Buffer::I32(v) => v[i] = bits as u32 as i32,
        Buffer::I64(v) => v[i] = bits as i64,
        Buffer::F32(v) => v[i] = f32::from_bits(bits as u32),
        Buffer::F64(v) => v[i] = f64::from_bits(bits),
    }
}

/// Interprets index bits of the given class as an `i64` element index.
#[inline]
fn index_i64(t: ScalarType, bits: u64) -> SResult<i64> {
    match t {
        ScalarType::I64 => Ok(bits as i64),
        ScalarType::I32 => Ok(bits as u32 as i32 as i64),
        _ => Err(SimError::Scalar("non-integer index".into())),
    }
}

// ---------------------------------------------------------------------------
// The opcode tape
// ---------------------------------------------------------------------------

/// One postfix opcode. Operand classes are baked in at decode time, so
/// execution never inspects a value tag.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EOp {
    /// Push pre-encoded constant bits.
    Const(u64),
    /// Push a register (class + slot in that class's file).
    Load(ScalarType, u32),
    /// Push the linear global thread id (i64).
    GlobalId,
    /// Push the work-group id (i64).
    GroupId,
    /// Push the intra-group thread id (i64).
    LocalId,
    /// Push the work-group size (i64).
    GroupSize,
    /// Push the launch thread count (i64).
    NumThreads,
    /// Push a pre-encoded scalar launch argument.
    ScalarArg(u32),
    /// Apply a binary op to the top two stack slots (operand class baked).
    Bin(BinOp, ScalarType),
    /// Apply a comparison (pushes a bool).
    Cmp(CmpOp, ScalarType),
    /// Apply a unary op.
    Un(UnOp, ScalarType),
    /// Convert from one class to another.
    Conv(ScalarType, ScalarType),
}

/// A flat postfix expression: evaluate the ops left to right on a bit
/// stack; the result is the single remaining slot. `cost` is the original
/// tree's [`KExp::op_count`] so warp-issue accounting is unchanged;
/// `class` is the statically known class of the result bits.
#[derive(Debug, Clone)]
struct Tape {
    ops: Vec<EOp>,
    cost: u64,
    class: ScalarType,
}

/// A decoded statement: the same shapes as [`KStm`], with expressions as
/// tapes and destinations as (class, slot) pairs resolved at decode time.
#[derive(Debug, Clone)]
enum DStm {
    Assign {
        class: ScalarType,
        slot: u32,
        exp: Tape,
    },
    GlobalRead {
        class: ScalarType,
        slot: u32,
        buf: usize,
        index: Tape,
    },
    GlobalWrite {
        buf: usize,
        index: Tape,
        value: Tape,
    },
    LocalRead {
        class: ScalarType,
        slot: u32,
        mem: usize,
        index: Tape,
    },
    LocalWrite {
        mem: usize,
        index: Tape,
        value: Tape,
    },
    PrivAlloc {
        arr: usize,
        size: Tape,
    },
    PrivRead {
        class: ScalarType,
        slot: u32,
        arr: usize,
        index: Tape,
    },
    PrivWrite {
        arr: usize,
        index: Tape,
        value: Tape,
    },
    PrivCopy {
        dst: usize,
        src: usize,
        len: Tape,
    },
    For {
        /// Slot of the (i64) loop counter.
        slot: u32,
        bound: Tape,
        body: Vec<DStm>,
    },
    While {
        cond: Tape,
        body: Vec<DStm>,
    },
    If {
        cond: Tape,
        then_s: Vec<DStm>,
        else_s: Vec<DStm>,
    },
    Barrier,
    /// Provenance marker: while executing `body`, profiled runs attribute
    /// counters to site `prov` (an index into the decoded kernel's
    /// provenance table). Free in unprofiled runs beyond the recursion.
    At {
        prov: u32,
        body: Vec<DStm>,
    },
}

/// Index of a scalar class in per-class tables.
#[inline]
fn ci(t: ScalarType) -> usize {
    match t {
        ScalarType::Bool => 0,
        ScalarType::I32 => 1,
        ScalarType::I64 => 2,
        ScalarType::F32 => 3,
        ScalarType::F64 => 4,
    }
}

/// A kernel pre-decoded for execution: register classes inferred, slots
/// assigned, expressions flattened to tapes.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    /// Diagnostic name (same as the source kernel's).
    pub name: String,
    params: Vec<KParam>,
    /// Local buffer element types and (uniform) size expressions, kept in
    /// tree form: they are evaluated once per launch, not per lane.
    locals: Vec<(ScalarType, KExp)>,
    /// Per original register: its class and slot within the class file.
    reg_slot: Vec<(ScalarType, u32)>,
    /// Slots used per class (indexed by [`ci`]).
    file_len: [u32; 5],
    /// Element class of each private array.
    priv_class: Vec<ScalarType>,
    body: Vec<DStm>,
    /// Source provenance sets referenced by the tape's `At` markers
    /// (copied from the kernel). Site index `prov_table.len()` is the
    /// implicit "unattributed" bucket in profiled runs.
    pub prov_table: Vec<Prov>,
}

// ---------------------------------------------------------------------------
// Decode: register class inference + tape compilation
// ---------------------------------------------------------------------------

struct Decoder<'k> {
    kernel: &'k Kernel,
    /// Inferred class per register (`None` = never written; defaults to
    /// i64, matching the old simulator's `Scalar::I64(0)` register init).
    regs: Vec<Option<ScalarType>>,
    privs: Vec<Option<ScalarType>>,
    changed: bool,
}

impl<'k> Decoder<'k> {
    fn scalar_err(msg: impl Into<String>) -> SimError {
        SimError::Scalar(msg.into())
    }

    fn param_scalar(&self, i: usize) -> SResult<ScalarType> {
        match self.kernel.params.get(i) {
            Some(KParam::Scalar(t)) => Ok(*t),
            _ => Err(Self::scalar_err(format!("argument {i} is not a scalar"))),
        }
    }

    fn param_buffer(&self, i: usize) -> SResult<ScalarType> {
        match self.kernel.params.get(i) {
            Some(KParam::Buffer(t)) => Ok(*t),
            _ => Err(Self::scalar_err(format!("argument {i} is not a buffer"))),
        }
    }

    /// The class of an expression, if enough register classes are known.
    fn exp_class(&self, e: &KExp) -> SResult<Option<ScalarType>> {
        Ok(match e {
            KExp::Const(s) => Some(s.scalar_type()),
            KExp::Var(r) => self.regs[*r as usize],
            KExp::GlobalId | KExp::GroupId | KExp::LocalId | KExp::GroupSize | KExp::NumThreads => {
                Some(ScalarType::I64)
            }
            KExp::ScalarArg(i) => Some(self.param_scalar(*i)?),
            KExp::BinOp(_, a, b) => match self.exp_class(a)? {
                Some(t) => Some(t),
                None => self.exp_class(b)?,
            },
            KExp::Cmp(..) => Some(ScalarType::Bool),
            KExp::UnOp(_, a) => self.exp_class(a)?,
            KExp::Convert(t, _) => Some(*t),
        })
    }

    fn set_reg(&mut self, r: u32, t: ScalarType) -> SResult<()> {
        match self.regs[r as usize] {
            None => {
                self.regs[r as usize] = Some(t);
                self.changed = true;
                Ok(())
            }
            Some(old) if old == t => Ok(()),
            Some(old) => Err(Self::scalar_err(format!(
                "register {r} used at both {old:?} and {t:?}"
            ))),
        }
    }

    fn set_priv(&mut self, p: usize, t: ScalarType) -> SResult<()> {
        match self.privs[p] {
            None => {
                self.privs[p] = Some(t);
                self.changed = true;
                Ok(())
            }
            Some(old) if old == t => Ok(()),
            Some(old) => Err(Self::scalar_err(format!(
                "private array {p} used at both {old:?} and {t:?}"
            ))),
        }
    }

    fn infer_stms(&mut self, stms: &[KStm]) -> SResult<()> {
        for stm in stms {
            match stm {
                KStm::Assign { var, exp } => {
                    if let Some(t) = self.exp_class(exp)? {
                        self.set_reg(*var, t)?;
                    }
                }
                KStm::GlobalRead { var, buf, .. } => {
                    let t = self.param_buffer(*buf)?;
                    self.set_reg(*var, t)?;
                }
                KStm::LocalRead { var, mem, .. } => {
                    let t = self.kernel.locals[*mem].0;
                    self.set_reg(*var, t)?;
                }
                KStm::PrivAlloc { arr, elem, .. } => self.set_priv(*arr, *elem)?,
                KStm::PrivRead { var, arr, .. } => {
                    if let Some(t) = self.privs[*arr] {
                        self.set_reg(*var, t)?;
                    }
                }
                KStm::PrivCopy { dst, src, .. } => {
                    if let Some(t) = self.privs[*src] {
                        self.set_priv(*dst, t)?;
                    }
                }
                KStm::For { var, body, .. } => {
                    self.set_reg(*var, ScalarType::I64)?;
                    self.infer_stms(body)?;
                }
                KStm::While { body, .. } | KStm::At { body, .. } => self.infer_stms(body)?,
                KStm::If { then_s, else_s, .. } => {
                    self.infer_stms(then_s)?;
                    self.infer_stms(else_s)?;
                }
                KStm::GlobalWrite { .. }
                | KStm::LocalWrite { .. }
                | KStm::PrivWrite { .. }
                | KStm::Barrier => {}
            }
        }
        Ok(())
    }
}

struct Compiler<'k> {
    kernel: &'k Kernel,
    reg_slot: Vec<(ScalarType, u32)>,
    priv_class: Vec<ScalarType>,
}

impl<'k> Compiler<'k> {
    /// Compiles an expression to postfix, returning its class.
    fn exp(&self, e: &KExp, out: &mut Vec<EOp>) -> SResult<ScalarType> {
        Ok(match e {
            KExp::Const(s) => {
                out.push(EOp::Const(enc(*s)));
                s.scalar_type()
            }
            KExp::Var(r) => {
                let (t, slot) = self.reg_slot[*r as usize];
                out.push(EOp::Load(t, slot));
                t
            }
            KExp::GlobalId => {
                out.push(EOp::GlobalId);
                ScalarType::I64
            }
            KExp::GroupId => {
                out.push(EOp::GroupId);
                ScalarType::I64
            }
            KExp::LocalId => {
                out.push(EOp::LocalId);
                ScalarType::I64
            }
            KExp::GroupSize => {
                out.push(EOp::GroupSize);
                ScalarType::I64
            }
            KExp::NumThreads => {
                out.push(EOp::NumThreads);
                ScalarType::I64
            }
            KExp::ScalarArg(i) => {
                let t = match self.kernel.params.get(*i) {
                    Some(KParam::Scalar(t)) => *t,
                    _ => {
                        return Err(SimError::Scalar(format!("argument {i} is not a scalar")));
                    }
                };
                out.push(EOp::ScalarArg(*i as u32));
                t
            }
            KExp::BinOp(op, a, b) => {
                let ta = self.exp(a, out)?;
                let tb = self.exp(b, out)?;
                if ta != tb {
                    return Err(SimError::Scalar(format!(
                        "operand type mismatch: {ta:?} vs {tb:?}"
                    )));
                }
                out.push(EOp::Bin(*op, ta));
                ta
            }
            KExp::Cmp(op, a, b) => {
                let ta = self.exp(a, out)?;
                let tb = self.exp(b, out)?;
                if ta != tb {
                    return Err(SimError::Scalar(format!(
                        "comparison type mismatch: {ta:?} vs {tb:?}"
                    )));
                }
                out.push(EOp::Cmp(*op, ta));
                ScalarType::Bool
            }
            KExp::UnOp(op, a) => {
                let ta = self.exp(a, out)?;
                out.push(EOp::Un(*op, ta));
                ta
            }
            KExp::Convert(t, a) => {
                let ta = self.exp(a, out)?;
                out.push(EOp::Conv(ta, *t));
                *t
            }
        })
    }

    fn tape(&self, e: &KExp) -> SResult<Tape> {
        let mut ops = Vec::new();
        let class = self.exp(e, &mut ops)?;
        Ok(Tape {
            ops,
            cost: e.op_count(),
            class,
        })
    }

    /// A tape whose result will be used as an element index (i32 or i64).
    fn index_tape(&self, e: &KExp) -> SResult<Tape> {
        let tape = self.tape(e)?;
        if !matches!(tape.class, ScalarType::I32 | ScalarType::I64) {
            return Err(SimError::Scalar("non-integer index".into()));
        }
        Ok(tape)
    }

    /// A tape whose result must be a boolean condition.
    fn cond_tape(&self, e: &KExp, what: &str) -> SResult<Tape> {
        let tape = self.tape(e)?;
        if tape.class != ScalarType::Bool {
            return Err(SimError::Scalar(format!("non-boolean {what} condition")));
        }
        Ok(tape)
    }

    /// A tape whose result is stored into something of class `want`.
    fn value_tape(&self, e: &KExp, want: ScalarType, what: &str) -> SResult<Tape> {
        let tape = self.tape(e)?;
        if tape.class != want {
            return Err(SimError::Scalar(format!(
                "{what} of class {:?} stored into {want:?}",
                tape.class
            )));
        }
        Ok(tape)
    }

    fn reg(&self, r: u32) -> (ScalarType, u32) {
        self.reg_slot[r as usize]
    }

    fn stms(&self, stms: &[KStm]) -> SResult<Vec<DStm>> {
        stms.iter().map(|s| self.stm(s)).collect()
    }

    fn stm(&self, stm: &KStm) -> SResult<DStm> {
        Ok(match stm {
            KStm::Assign { var, exp } => {
                let (class, slot) = self.reg(*var);
                DStm::Assign {
                    class,
                    slot,
                    exp: self.value_tape(exp, class, "assignment")?,
                }
            }
            KStm::GlobalRead { var, buf, index } => {
                let (class, slot) = self.reg(*var);
                DStm::GlobalRead {
                    class,
                    slot,
                    buf: *buf,
                    index: self.index_tape(index)?,
                }
            }
            KStm::GlobalWrite { buf, index, value } => {
                let elem = match self.kernel.params.get(*buf) {
                    Some(KParam::Buffer(t)) => *t,
                    _ => {
                        return Err(SimError::Scalar(format!("argument {buf} is not a buffer")));
                    }
                };
                DStm::GlobalWrite {
                    buf: *buf,
                    index: self.index_tape(index)?,
                    value: self.value_tape(value, elem, "global write")?,
                }
            }
            KStm::LocalRead { var, mem, index } => {
                let (class, slot) = self.reg(*var);
                DStm::LocalRead {
                    class,
                    slot,
                    mem: *mem,
                    index: self.index_tape(index)?,
                }
            }
            KStm::LocalWrite { mem, index, value } => DStm::LocalWrite {
                mem: *mem,
                index: self.index_tape(index)?,
                value: self.value_tape(value, self.kernel.locals[*mem].0, "local write")?,
            },
            KStm::PrivAlloc { arr, size, .. } => DStm::PrivAlloc {
                arr: *arr,
                size: self.index_tape(size)?,
            },
            KStm::PrivRead { var, arr, index } => {
                let (class, slot) = self.reg(*var);
                DStm::PrivRead {
                    class,
                    slot,
                    arr: *arr,
                    index: self.index_tape(index)?,
                }
            }
            KStm::PrivWrite { arr, index, value } => DStm::PrivWrite {
                arr: *arr,
                index: self.index_tape(index)?,
                value: self.value_tape(value, self.priv_class[*arr], "private write")?,
            },
            KStm::PrivCopy { dst, src, len } => DStm::PrivCopy {
                dst: *dst,
                src: *src,
                len: self.index_tape(len)?,
            },
            KStm::For { var, bound, body } => {
                let (class, slot) = self.reg(*var);
                debug_assert_eq!(class, ScalarType::I64);
                DStm::For {
                    slot,
                    bound: self.index_tape(bound)?,
                    body: self.stms(body)?,
                }
            }
            KStm::While { cond, body } => DStm::While {
                cond: self.cond_tape(cond, "while")?,
                body: self.stms(body)?,
            },
            KStm::If {
                cond,
                then_s,
                else_s,
            } => DStm::If {
                cond: self.cond_tape(cond, "if")?,
                then_s: self.stms(then_s)?,
                else_s: self.stms(else_s)?,
            },
            KStm::Barrier => DStm::Barrier,
            KStm::At { prov, body } => DStm::At {
                prov: *prov,
                body: self.stms(body)?,
            },
        })
    }
}

impl DecodedKernel {
    /// Pre-decodes a kernel: infers a scalar class for every register and
    /// private array (fixpoint over the body; registers that are never
    /// written default to i64, matching the old `Scalar::I64(0)` register
    /// initialisation), assigns each register a slot in its class's file,
    /// and flattens every expression into a postfix [`Tape`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Scalar`] for kernels the static model rejects:
    /// a register or private array used at two different classes, operand
    /// class mismatches, or argument kind confusion (these were dynamic
    /// faults in the tree-walking simulator; well-typed codegen output
    /// never triggers them).
    pub fn decode(kernel: &Kernel) -> SResult<DecodedKernel> {
        let mut inf = Decoder {
            kernel,
            regs: vec![None; kernel.num_regs as usize],
            privs: vec![None; kernel.num_priv],
            changed: true,
        };
        // Fixpoint: classes only ever go from unknown to known, so this
        // terminates after at most `num_regs + num_priv + 1` sweeps.
        while inf.changed {
            inf.changed = false;
            inf.infer_stms(&kernel.body)?;
        }
        let mut file_len = [0u32; 5];
        let reg_slot: Vec<(ScalarType, u32)> = inf
            .regs
            .iter()
            .map(|c| {
                let t = c.unwrap_or(ScalarType::I64);
                let slot = file_len[ci(t)];
                file_len[ci(t)] += 1;
                (t, slot)
            })
            .collect();
        let priv_class: Vec<ScalarType> = inf
            .privs
            .iter()
            .map(|c| c.unwrap_or(ScalarType::I64))
            .collect();
        let comp = Compiler {
            kernel,
            reg_slot,
            priv_class,
        };
        let body = comp.stms(&kernel.body).map_err(|e| match e {
            SimError::Scalar(m) => {
                SimError::Scalar(format!("decoding kernel `{}`: {m}", kernel.name))
            }
            other => other,
        })?;
        Ok(DecodedKernel {
            name: kernel.name.clone(),
            params: kernel.params.clone(),
            locals: kernel.locals.clone(),
            reg_slot: comp.reg_slot,
            file_len,
            priv_class: comp.priv_class,
            body,
            prov_table: kernel.prov_table.clone(),
        })
    }

    /// The inferred scalar class of each original register, in register
    /// order (diagnostics and tests).
    pub fn reg_classes(&self) -> impl Iterator<Item = ScalarType> + '_ {
        self.reg_slot.iter().map(|&(t, _)| t)
    }
}

// ---------------------------------------------------------------------------
// Bit-level operator implementations
// ---------------------------------------------------------------------------
//
// Integer and float arithmetic are implemented directly on the bit
// representation with *exactly* the expressions `eval_binop`/`eval_cmp`
// use (including the shared floored-division helpers), so results are
// bit-identical to the interpreter. `UnOp` and `Convert` reconstruct
// `Scalar`s and call the interpreter's helpers outright: they are rare in
// kernel inner loops and have the most delicate float edge cases
// (double rounding in i64→f32, NaN/±inf/out-of-range in float→int).

fn div_by_zero() -> SimError {
    // Matches `InterpError::DivisionByZero`'s display, which the old
    // tree-walking evaluator surfaced through `eval_binop`.
    SimError::Scalar("division by zero".into())
}

#[inline]
fn bin_bits(op: BinOp, t: ScalarType, a: u64, b: u64) -> SResult<u64> {
    use BinOp::*;
    let type_err = |what: &str| SimError::Scalar(format!("type error at runtime: {what}"));
    Ok(match t {
        ScalarType::I64 => {
            let (x, y) = (a as i64, b as i64);
            (match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_div_i64(x, y)
                }
                Rem => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_mod_i64(x, y)
                }
                Min => x.min(y),
                Max => x.max(y),
                Pow | Atan2 => return Err(type_err("pow/atan2 on integers")),
                And | Or => return Err(type_err("logical op on integers")),
            }) as u64
        }
        ScalarType::I32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            (match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_div_i32(x, y)
                }
                Rem => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_mod_i32(x, y)
                }
                Min => x.min(y),
                Max => x.max(y),
                Pow | Atan2 => return Err(type_err("pow/atan2 on integers")),
                And | Or => return Err(type_err("logical op on integers")),
            }) as u32 as u64
        }
        ScalarType::F32 => {
            let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
            (match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                Min => x.min(y),
                Max => x.max(y),
                Pow => x.powf(y),
                Atan2 => x.atan2(y),
                And | Or => return Err(type_err("logical op on floats")),
            })
            .to_bits() as u64
        }
        ScalarType::F64 => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            (match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                Min => x.min(y),
                Max => x.max(y),
                Pow => x.powf(y),
                Atan2 => x.atan2(y),
                And | Or => return Err(type_err("logical op on floats")),
            })
            .to_bits()
        }
        ScalarType::Bool => match op {
            And => a & b,
            Or => a | b,
            _ => return Err(type_err("arithmetic on booleans")),
        },
    })
}

#[inline]
fn cmp_bits(op: CmpOp, t: ScalarType, a: u64, b: u64) -> u64 {
    #[inline]
    fn cmp<T: PartialOrd>(op: CmpOp, x: T, y: T) -> bool {
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
    (match t {
        ScalarType::I64 => cmp(op, a as i64, b as i64),
        ScalarType::I32 => cmp(op, a as u32 as i32, b as u32 as i32),
        ScalarType::F32 => cmp(op, f32::from_bits(a as u32), f32::from_bits(b as u32)),
        ScalarType::F64 => cmp(op, f64::from_bits(a), f64::from_bits(b)),
        ScalarType::Bool => cmp(op, a != 0, b != 0),
    }) as u64
}

// ---------------------------------------------------------------------------
// Typed register files
// ---------------------------------------------------------------------------

/// Unboxed per-class register files in structure-of-arrays layout: register
/// slot `s` of lane `l` lives at `file[s * lanes + l]`, so a statement
/// sweeping the lanes for one register walks memory contiguously.
struct RegFiles {
    lanes: usize,
    i64s: Vec<i64>,
    i32s: Vec<i32>,
    f32s: Vec<f32>,
    f64s: Vec<f64>,
    bools: Vec<bool>,
}

impl RegFiles {
    fn new(file_len: &[u32; 5], lanes: usize) -> RegFiles {
        RegFiles {
            lanes,
            bools: vec![false; file_len[0] as usize * lanes],
            i32s: vec![0; file_len[1] as usize * lanes],
            i64s: vec![0; file_len[2] as usize * lanes],
            f32s: vec![0.0; file_len[3] as usize * lanes],
            f64s: vec![0.0; file_len[4] as usize * lanes],
        }
    }

    #[inline]
    fn get(&self, class: ScalarType, slot: u32, lane: usize) -> u64 {
        let i = slot as usize * self.lanes + lane;
        match class {
            ScalarType::Bool => self.bools[i] as u64,
            ScalarType::I32 => self.i32s[i] as u32 as u64,
            ScalarType::I64 => self.i64s[i] as u64,
            ScalarType::F32 => self.f32s[i].to_bits() as u64,
            ScalarType::F64 => self.f64s[i].to_bits(),
        }
    }

    #[inline]
    fn set(&mut self, class: ScalarType, slot: u32, lane: usize, bits: u64) {
        let i = slot as usize * self.lanes + lane;
        match class {
            ScalarType::Bool => self.bools[i] = bits != 0,
            ScalarType::I32 => self.i32s[i] = bits as u32 as i32,
            ScalarType::I64 => self.i64s[i] = bits as i64,
            ScalarType::F32 => self.f32s[i] = f32::from_bits(bits as u32),
            ScalarType::F64 => self.f64s[i] = f64::from_bits(bits),
        }
    }

    #[inline]
    fn set_i64(&mut self, slot: u32, lane: usize, v: i64) {
        self.i64s[slot as usize * self.lanes + lane] = v;
    }
}

// ---------------------------------------------------------------------------
// Group execution
// ---------------------------------------------------------------------------

/// What one group's execution produces: its counters and its write log
/// (final value per written element — within-group ordering is already
/// resolved, last write wins).
struct GroupOut {
    stats: KernelStats,
    writes: HashMap<BufId, HashMap<usize, u64>>,
    /// Per-site counters (profiled runs only); length is
    /// `prov_table.len() + 1`, the last slot being the unattributed bucket.
    sites: Option<Vec<SiteStats>>,
}

struct GroupRun<'a> {
    dk: &'a DecodedKernel,
    base: &'a DeviceMemory,
    buf_ids: &'a [Option<BufId>],
    scalar_bits: &'a [Option<u64>],
    group_id: u64,
    group_size: u64,
    num_threads: u64,
    lanes: usize,
    warp_size: usize,
    transaction_bytes: u64,
    files: RegFiles,
    /// Per-lane private arrays as bits: `privs[arr * lanes + lane]`.
    privs: Vec<Vec<u64>>,
    /// Per-group local buffers as bits.
    locals: Vec<Vec<u64>>,
    /// This group's global-memory overlay: reads consult it before the
    /// base snapshot, and it doubles as the ordered-by-index write log.
    writes: HashMap<BufId, HashMap<usize, u64>>,
    stack: Vec<u64>,
    /// Scratch: per-lane element offsets of the current global access.
    offsets: Vec<Option<i64>>,
    /// Scratch: segment ids for transaction counting.
    segs: Vec<i64>,
    stats: KernelStats,
    /// Per-site counters, allocated only in profiled runs.
    sites: Option<Vec<SiteStats>>,
    /// The site currently executing (maintained by `DStm::At`); starts at
    /// the unattributed bucket.
    cur_site: usize,
}

impl<'a> GroupRun<'a> {
    fn oob(&self, what: String) -> SimError {
        SimError::OutOfBounds {
            kernel: self.dk.name.clone(),
            what,
        }
    }

    fn buffer(&self, arg: usize) -> SResult<BufId> {
        self.buf_ids
            .get(arg)
            .copied()
            .flatten()
            .ok_or_else(|| SimError::Scalar(format!("argument {arg} is not a buffer")))
    }

    /// Evaluates a tape for one lane on the bit stack.
    fn eval(&mut self, tape: &Tape, lane: usize) -> SResult<u64> {
        self.stack.clear();
        for op in &tape.ops {
            match *op {
                EOp::Const(bits) => self.stack.push(bits),
                EOp::Load(class, slot) => self.stack.push(self.files.get(class, slot, lane)),
                EOp::GlobalId => self
                    .stack
                    .push((self.group_id * self.group_size + lane as u64) as i64 as u64),
                EOp::GroupId => self.stack.push(self.group_id as i64 as u64),
                EOp::LocalId => self.stack.push(lane as i64 as u64),
                EOp::GroupSize => self.stack.push(self.group_size as i64 as u64),
                EOp::NumThreads => self.stack.push(self.num_threads as i64 as u64),
                EOp::ScalarArg(i) => {
                    let bits = self.scalar_bits[i as usize]
                        .ok_or_else(|| SimError::Scalar(format!("argument {i} is not a scalar")))?;
                    self.stack.push(bits);
                }
                EOp::Bin(op, t) => {
                    let b = self.stack.pop().expect("tape underflow");
                    let a = self.stack.pop().expect("tape underflow");
                    self.stack.push(bin_bits(op, t, a, b)?);
                }
                EOp::Cmp(op, t) => {
                    let b = self.stack.pop().expect("tape underflow");
                    let a = self.stack.pop().expect("tape underflow");
                    self.stack.push(cmp_bits(op, t, a, b));
                }
                EOp::Un(op, t) => {
                    let a = self.stack.pop().expect("tape underflow");
                    let r =
                        eval_unop(op, dec(t, a)).map_err(|e| SimError::Scalar(e.to_string()))?;
                    self.stack.push(enc(r));
                }
                EOp::Conv(from, to) => {
                    let a = self.stack.pop().expect("tape underflow");
                    let r = eval_convert(to, dec(from, a))
                        .map_err(|e| SimError::Scalar(e.to_string()))?;
                    self.stack.push(enc(r));
                }
            }
        }
        Ok(self.stack.pop().expect("empty tape"))
    }

    fn eval_index(&mut self, tape: &Tape, lane: usize) -> SResult<i64> {
        let bits = self.eval(tape, lane)?;
        index_i64(tape.class, bits)
    }

    /// The current site's counters, if this is a profiled run.
    #[inline]
    fn site(&mut self) -> Option<&mut SiteStats> {
        let i = self.cur_site;
        self.sites.as_mut().map(|s| &mut s[i])
    }

    /// Counts the warp issue cost for one statement over a mask.
    fn issue(&mut self, mask: &[bool], ops: u64) {
        let mut warps = 0u64;
        for chunk in mask.chunks(self.warp_size) {
            if chunk.iter().any(|&b| b) {
                warps += 1;
            }
        }
        self.stats.warp_instructions += warps * (1 + ops);
        if self.sites.is_some() {
            // Inactive-lane slots: lanes masked off in warps that still
            // issue — the divergence waste. Counted per site only, so the
            // aggregate stats are identical with and without profiling.
            let mut inactive = 0u64;
            for chunk in mask.chunks(self.warp_size) {
                let active = chunk.iter().filter(|&&b| b).count() as u64;
                if active > 0 {
                    inactive += chunk.len() as u64 - active;
                }
            }
            let s = self.site().expect("profiled run");
            s.warp_instructions += warps * (1 + ops);
            s.inactive_lane_instructions += inactive * (1 + ops);
        }
    }

    /// Counts memory transactions for a warp-grouped global access using
    /// the per-lane offsets left in `self.offsets`. A warp's transaction
    /// count is the number of distinct aligned segments its active lanes
    /// touch (sort + dedup on a reused scratch vector: deterministic and
    /// allocation-free, unlike the old per-warp `HashSet`).
    fn memory_access(&mut self, mask: &[bool], elem_bytes: u64) {
        for (w, chunk) in mask.chunks(self.warp_size).enumerate() {
            self.segs.clear();
            let mut useful = 0u64;
            for (l, &on) in chunk.iter().enumerate() {
                if !on {
                    continue;
                }
                if let Some(off) = self.offsets[w * self.warp_size + l] {
                    self.segs
                        .push((off * elem_bytes as i64) / self.transaction_bytes as i64);
                    useful += elem_bytes;
                }
            }
            self.segs.sort_unstable();
            self.segs.dedup();
            let tx = self.segs.len() as u64;
            self.stats.global_transactions += tx;
            self.stats.bus_bytes += tx * self.transaction_bytes;
            self.stats.useful_bytes += useful;
            let bus = tx * self.transaction_bytes;
            if let Some(s) = self.site() {
                s.global_transactions += tx;
                s.bus_bytes += bus;
                s.useful_bytes += useful;
            }
        }
    }

    fn exec(&mut self, stms: &[DStm], mask: &[bool]) -> SResult<()> {
        if !mask.iter().any(|&b| b) {
            return Ok(());
        }
        for stm in stms {
            match stm {
                DStm::Assign { class, slot, exp } => {
                    self.issue(mask, exp.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let bits = self.eval(exp, lane)?;
                            self.files.set(*class, *slot, lane, bits);
                        }
                    }
                }
                DStm::GlobalRead {
                    class,
                    slot,
                    buf,
                    index,
                } => {
                    self.issue(mask, index.cost);
                    let bid = self.buffer(*buf)?;
                    let base_buf = self.base.raw(bid);
                    let len = base_buf.len() as i64;
                    let elem_bytes = base_buf.elem_type().byte_size() as u64;
                    for lane in 0..mask.len() {
                        self.offsets[lane] = None;
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            if i < 0 || i >= len {
                                return Err(self.oob(format!("read {i} of buffer len {len}")));
                            }
                            self.offsets[lane] = Some(i);
                            // Overlay first: the group sees its own writes.
                            let bits =
                                match self.writes.get(&bid).and_then(|m| m.get(&(i as usize))) {
                                    Some(&b) => b,
                                    None => buf_get_bits(self.base.raw(bid), i as usize),
                                };
                            self.files.set(*class, *slot, lane, bits);
                        }
                    }
                    self.memory_access(mask, elem_bytes);
                }
                DStm::GlobalWrite { buf, index, value } => {
                    self.issue(mask, index.cost + value.cost);
                    let bid = self.buffer(*buf)?;
                    let len = self.base.raw(bid).len() as i64;
                    let elem_bytes = self.base.raw(bid).elem_type().byte_size() as u64;
                    for lane in 0..mask.len() {
                        self.offsets[lane] = None;
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            if i < 0 || i >= len {
                                return Err(self.oob(format!("write {i} of buffer len {len}")));
                            }
                            let bits = self.eval(value, lane)?;
                            self.offsets[lane] = Some(i);
                            self.writes.entry(bid).or_default().insert(i as usize, bits);
                        }
                    }
                    self.memory_access(mask, elem_bytes);
                }
                DStm::LocalRead {
                    class,
                    slot,
                    mem,
                    index,
                } => {
                    self.issue(mask, index.cost);
                    let mut n = 0u64;
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let len = self.locals[*mem].len();
                            if i < 0 || i as usize >= len {
                                return Err(self.oob(format!("local read {i} of len {len}")));
                            }
                            let bits = self.locals[*mem][i as usize];
                            self.files.set(*class, *slot, lane, bits);
                            n += 1;
                        }
                    }
                    self.stats.local_accesses += n;
                    if let Some(s) = self.site() {
                        s.local_accesses += n;
                    }
                }
                DStm::LocalWrite { mem, index, value } => {
                    self.issue(mask, index.cost + value.cost);
                    let mut n = 0u64;
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let bits = self.eval(value, lane)?;
                            let len = self.locals[*mem].len();
                            if i < 0 || i as usize >= len {
                                return Err(self.oob(format!("local write {i} of len {len}")));
                            }
                            self.locals[*mem][i as usize] = bits;
                            n += 1;
                        }
                    }
                    self.stats.local_accesses += n;
                    if let Some(s) = self.site() {
                        s.local_accesses += n;
                    }
                }
                DStm::PrivAlloc { arr, size } => {
                    self.issue(mask, size.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let n = self.eval_index(size, lane)?.max(0) as usize;
                            self.privs[*arr * self.lanes + lane] = vec![0u64; n];
                        }
                    }
                }
                DStm::PrivRead {
                    class,
                    slot,
                    arr,
                    index,
                } => {
                    self.issue(mask, index.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let p = &self.privs[*arr * self.lanes + lane];
                            if i < 0 || i as usize >= p.len() {
                                return Err(
                                    self.oob(format!("private read {i} of len {}", p.len()))
                                );
                            }
                            let bits = p[i as usize];
                            self.files.set(*class, *slot, lane, bits);
                        }
                    }
                }
                DStm::PrivWrite { arr, index, value } => {
                    self.issue(mask, index.cost + value.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let bits = self.eval(value, lane)?;
                            let p = &mut self.privs[*arr * self.lanes + lane];
                            if i < 0 || i as usize >= p.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.dk.name.clone(),
                                    what: format!("private write {i} of len {}", p.len()),
                                });
                            }
                            p[i as usize] = bits;
                        }
                    }
                }
                DStm::PrivCopy { dst, src, len } => {
                    self.issue(mask, len.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let n = self.eval_index(len, lane)?.max(0) as usize;
                            let s = &self.privs[*src * self.lanes + lane];
                            if n > s.len() {
                                return Err(
                                    self.oob(format!("private copy {n} of len {}", s.len()))
                                );
                            }
                            let v = s[..n].to_vec();
                            self.privs[*dst * self.lanes + lane] = v;
                        }
                    }
                }
                DStm::For { slot, bound, body } => {
                    self.issue(mask, bound.cost);
                    let mut bounds = vec![0i64; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            bounds[lane] = self.eval_index(bound, lane)?;
                        }
                    }
                    let max_bound = bounds.iter().copied().max().unwrap_or(0);
                    for t in 0..max_bound {
                        let sub: Vec<bool> = mask
                            .iter()
                            .zip(&bounds)
                            .map(|(&m, &b)| m && t < b)
                            .collect();
                        if !sub.iter().any(|&b| b) {
                            break;
                        }
                        for lane in 0..mask.len() {
                            if sub[lane] {
                                self.files.set_i64(*slot, lane, t);
                            }
                        }
                        self.exec(body, &sub)?;
                    }
                }
                DStm::While { cond, body } => {
                    let mut live = mask.to_vec();
                    let mut iterations = 0u64;
                    loop {
                        self.issue(&live, cond.cost);
                        for lane in 0..live.len() {
                            if live[lane] {
                                live[lane] = self.eval(cond, lane)? != 0;
                            }
                        }
                        if !live.iter().any(|&b| b) {
                            break;
                        }
                        self.exec(body, &live)?;
                        iterations += 1;
                        if iterations > 100_000_000 {
                            return Err(SimError::RunawayLoop {
                                kernel: self.dk.name.clone(),
                            });
                        }
                    }
                }
                DStm::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    self.issue(mask, cond.cost);
                    let mut then_mask = vec![false; mask.len()];
                    let mut else_mask = vec![false; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let c = self.eval(cond, lane)? != 0;
                            then_mask[lane] = c;
                            else_mask[lane] = !c;
                        }
                    }
                    self.exec(then_s, &then_mask)?;
                    self.exec(else_s, &else_mask)?;
                }
                DStm::Barrier => {
                    // All in-bounds lanes of the group must participate.
                    if mask.iter().any(|&b| !b) {
                        return Err(SimError::DivergentBarrier {
                            kernel: self.dk.name.clone(),
                        });
                    }
                    self.stats.barriers += 1;
                    if let Some(s) = self.site() {
                        s.barriers += 1;
                    }
                    self.issue(mask, 0);
                }
                DStm::At { prov, body } => {
                    // Transparent for execution; in profiled runs the body's
                    // counters go to this site (restored on the way out, so
                    // siblings keep the enclosing attribution).
                    let saved = self.cur_site;
                    if self.sites.is_some() {
                        self.cur_site = *prov as usize;
                    }
                    let r = self.exec(body, mask);
                    self.cur_site = saved;
                    r?;
                }
            }
        }
        Ok(())
    }
}

/// Runs one work-group against the shared memory snapshot and returns its
/// stats and write log.
#[allow(clippy::too_many_arguments)]
fn run_group(
    dk: &DecodedKernel,
    device: &DeviceProfile,
    base: &DeviceMemory,
    buf_ids: &[Option<BufId>],
    scalar_bits: &[Option<u64>],
    local_sizes: &[(ScalarType, usize)],
    group_id: u64,
    lanes: usize,
    num_threads: u64,
    profile: bool,
) -> SResult<GroupOut> {
    let n_sites = dk.prov_table.len() + 1;
    let mut run = GroupRun {
        dk,
        base,
        buf_ids,
        scalar_bits,
        group_id,
        group_size: device.group_size as u64,
        num_threads,
        lanes,
        warp_size: device.warp_size as usize,
        transaction_bytes: device.transaction_bytes,
        files: RegFiles::new(&dk.file_len, lanes),
        privs: vec![Vec::new(); dk.priv_class.len() * lanes],
        locals: local_sizes.iter().map(|&(_, n)| vec![0u64; n]).collect(),
        writes: HashMap::new(),
        stack: Vec::with_capacity(16),
        offsets: vec![None; lanes],
        segs: Vec::with_capacity(device.warp_size as usize),
        stats: KernelStats::default(),
        sites: profile.then(|| vec![SiteStats::default(); n_sites]),
        cur_site: n_sites - 1,
    };
    let mask = vec![true; lanes];
    run.exec(&dk.body, &mask)?;
    Ok(GroupOut {
        stats: run.stats,
        writes: run.writes,
        sites: run.sites,
    })
}

// ---------------------------------------------------------------------------
// Launch
// ---------------------------------------------------------------------------

/// Evaluates a local-buffer size expression, which must be uniform across
/// the group: built from constants, `GroupSize`, scalar arguments, and
/// binary operators (all at i64, as in the tree-walking simulator).
fn eval_uniform(e: &KExp, group_size: u64, scalars: &[Option<Scalar>]) -> SResult<i64> {
    match e {
        KExp::Const(k) => k
            .as_i64()
            .ok_or_else(|| SimError::Scalar("non-integer uniform expression".into())),
        KExp::GroupSize => Ok(group_size as i64),
        KExp::ScalarArg(i) => scalars
            .get(*i)
            .copied()
            .flatten()
            .and_then(|s| s.as_i64())
            .ok_or_else(|| SimError::Scalar("bad scalar argument".into())),
        KExp::BinOp(op, a, b) => {
            let x = eval_uniform(a, group_size, scalars)?;
            let y = eval_uniform(b, group_size, scalars)?;
            eval_binop(*op, Scalar::I64(x), Scalar::I64(y))
                .map_err(|e| SimError::Scalar(e.to_string()))?
                .as_i64()
                .ok_or_else(|| SimError::Scalar("non-integer uniform".into()))
        }
        _ => Err(SimError::Scalar(
            "local size must be built from constants and scalar args".into(),
        )),
    }
}

/// The number of host threads to use for group execution: the
/// `FUTHARK_SIM_THREADS` environment variable if set (minimum 1), else the
/// machine's available parallelism. Cached after the first call.
pub fn host_threads() -> usize {
    use std::sync::OnceLock;
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| match std::env::var("FUTHARK_SIM_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    })
}

/// Minimum group count before spawning worker threads: below this the
/// per-thread setup costs more than the parallelism recovers.
const PAR_MIN_GROUPS: u64 = 2;

/// Launches a pre-decoded kernel over `num_threads` threads, executing
/// independent work-groups on up to `threads` host threads. Results —
/// device memory, the returned [`KernelStats`], and any error — are
/// bit-identical for every value of `threads` (see the module docs for the
/// memory model that guarantees this).
///
/// # Errors
///
/// Returns a [`SimError`] on faults (bounds, divergent barriers, runaway
/// loops, negative local-memory sizes). When several groups fault, the
/// lowest-numbered group's error is reported, after committing the writes
/// of the groups before it — exactly what sequential execution observed.
pub fn launch_decoded(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    threads: usize,
) -> SResult<KernelStats> {
    launch_decoded_impl(device, dk, num_threads, args, mem, threads, false).map(|(s, _)| s)
}

/// Like [`launch_decoded`], but additionally buckets counters by source
/// site (the decoded kernel's provenance table; the extra final slot is
/// the unattributed bucket). The returned [`KernelStats`] are bit-identical
/// to an unprofiled launch of the same kernel: the per-site counters are
/// accumulated separately and never feed back into execution.
///
/// # Errors
///
/// Exactly as [`launch_decoded`].
pub fn launch_decoded_profiled(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    threads: usize,
) -> SResult<(KernelStats, Vec<SiteStats>)> {
    launch_decoded_impl(device, dk, num_threads, args, mem, threads, true)
        .map(|(s, sites)| (s, sites.expect("profiled launch returns sites")))
}

#[allow(clippy::too_many_arguments)]
fn launch_decoded_impl(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    threads: usize,
    profile: bool,
) -> SResult<(KernelStats, Option<Vec<SiteStats>>)> {
    let group_size = device.group_size as u64;
    let num_groups = num_threads.div_ceil(group_size).max(1);
    // Resolve launch arguments once.
    let mut buf_ids: Vec<Option<BufId>> = vec![None; args.len()];
    let mut scalar_bits: Vec<Option<u64>> = vec![None; args.len()];
    let mut scalars: Vec<Option<Scalar>> = vec![None; args.len()];
    for (i, a) in args.iter().enumerate() {
        match a {
            Arg::Buffer(b) => buf_ids[i] = Some(*b),
            Arg::Scalar(s) => {
                scalar_bits[i] = Some(enc(*s));
                scalars[i] = Some(*s);
            }
        }
    }
    // Buffer arguments must carry the element type the kernel declared:
    // registers are statically classed from the declaration, so a mismatch
    // would silently reinterpret bits.
    for (i, p) in dk.params.iter().enumerate() {
        if let (KParam::Buffer(want), Some(Some(bid))) = (p, buf_ids.get(i)) {
            let got = mem
                .download(*bid)
                .map_err(|_| SimError::UseAfterFree {
                    buf: *bid,
                    what: format!("buffer argument {i} of kernel `{}`", dk.name),
                })?
                .elem_type();
            if got != *want {
                return Err(SimError::Scalar(format!(
                    "buffer argument {i} has element type {got:?}, kernel `{}` expects {want:?}",
                    dk.name
                )));
            }
        }
        if let (KParam::Scalar(want), Some(Some(s))) = (p, scalars.get(i)) {
            let got = s.scalar_type();
            if got != *want {
                return Err(SimError::Scalar(format!(
                    "scalar argument {i} has type {got:?}, kernel `{}` expects {want:?}",
                    dk.name
                )));
            }
        }
    }
    // Size local buffers once per launch (they are uniform by
    // construction). A negative requested size is a fault, not an empty
    // buffer.
    let mut local_sizes: Vec<(ScalarType, usize)> = Vec::with_capacity(dk.locals.len());
    for (t, size) in &dk.locals {
        let n = eval_uniform(size, group_size, &scalars)?;
        if n < 0 {
            return Err(SimError::NegativeLocalSize {
                kernel: dk.name.clone(),
                requested: n,
            });
        }
        local_sizes.push((*t, n as usize));
    }

    let lanes_of = |g: u64| group_size.min(num_threads.saturating_sub(g * group_size)) as usize;
    let run_one = |g: u64, base: &DeviceMemory| -> Option<SResult<GroupOut>> {
        let lanes = lanes_of(g);
        if lanes == 0 {
            return None;
        }
        Some(run_group(
            dk,
            device,
            base,
            &buf_ids,
            &scalar_bits,
            &local_sizes,
            g,
            lanes,
            num_threads,
            profile,
        ))
    };

    let workers = threads.min(num_groups as usize).max(1);
    let mut outs: Vec<Option<SResult<GroupOut>>> = Vec::with_capacity(num_groups as usize);
    if workers <= 1 || num_groups < PAR_MIN_GROUPS {
        let base: &DeviceMemory = mem;
        for g in 0..num_groups {
            outs.push(run_one(g, base));
        }
    } else {
        outs.resize_with(num_groups as usize, || None);
        let base: &DeviceMemory = mem;
        let slots: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_one = &run_one;
                    s.spawn(move || {
                        // Strided group assignment balances uneven groups.
                        let mut mine = Vec::new();
                        let mut g = w as u64;
                        while g < num_groups {
                            mine.push((g, run_one(g, base)));
                            g += workers as u64;
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("simulator worker panicked"))
                .collect()
        });
        for (g, out) in slots {
            outs[g as usize] = out;
        }
    }

    // Commit in ascending group order: write logs are applied and counters
    // merged deterministically, and the lowest faulting group's error wins
    // with exactly its predecessors' writes committed.
    let mut stats = KernelStats {
        threads: num_threads,
        ..KernelStats::default()
    };
    let mut sites = profile.then(|| vec![SiteStats::default(); dk.prov_table.len() + 1]);
    for out in outs.into_iter().flatten() {
        let out = out?;
        for (bid, writes) in out.writes {
            let buf = mem.raw_mut(bid);
            for (i, bits) in writes {
                buf_set_bits(buf, i, bits);
            }
        }
        stats.merge(&out.stats);
        if let (Some(total), Some(group)) = (&mut sites, &out.sites) {
            for (t, g) in total.iter_mut().zip(group) {
                t.merge(g);
            }
        }
    }
    Ok((stats, sites))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KParam, KStm};

    fn square_kernel() -> Kernel {
        // out[i] = in[i] * in[i]
        Kernel {
            name: "square".into(),
            params: vec![
                KParam::Buffer(ScalarType::I64),
                KParam::Buffer(ScalarType::I64),
            ],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::GlobalWrite {
                    buf: 1,
                    index: KExp::GlobalId,
                    value: KExp::Var(0).mul(KExp::Var(0)),
                },
            ],
        }
    }

    #[test]
    fn decode_infers_register_classes() {
        let k = Kernel {
            name: "mixed".into(),
            params: vec![
                KParam::Buffer(ScalarType::F64),
                KParam::Scalar(ScalarType::I64),
            ],
            locals: vec![],
            num_regs: 3,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::Assign {
                    var: 1,
                    exp: KExp::ScalarArg(1),
                },
                KStm::Assign {
                    var: 2,
                    exp: KExp::Cmp(
                        futhark_core::CmpOp::Lt,
                        Box::new(KExp::Var(1)),
                        Box::new(KExp::i64(3)),
                    ),
                },
            ],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        assert_eq!(dk.reg_slot[0].0, ScalarType::F64);
        assert_eq!(dk.reg_slot[1].0, ScalarType::I64);
        assert_eq!(dk.reg_slot[2].0, ScalarType::Bool);
        // One slot per class used.
        assert_eq!(dk.file_len[ci(ScalarType::F64)], 1);
        assert_eq!(dk.file_len[ci(ScalarType::I64)], 1);
        assert_eq!(dk.file_len[ci(ScalarType::Bool)], 1);
        assert_eq!(dk.file_len[ci(ScalarType::F32)], 0);
    }

    #[test]
    fn decode_rejects_register_class_conflicts() {
        let k = Kernel {
            name: "conflict".into(),
            params: vec![KParam::Scalar(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::Assign {
                    var: 0,
                    exp: KExp::i64(1),
                },
                KStm::Assign {
                    var: 0,
                    exp: KExp::Const(Scalar::F64(1.0)),
                },
            ],
        };
        assert!(DecodedKernel::decode(&k).is_err());
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let dev = DeviceProfile::gtx780();
        let dk = DecodedKernel::decode(&square_kernel()).unwrap();
        let n = 10_000usize;
        let run = |threads: usize| {
            let mut mem = DeviceMemory::new();
            let a = mem
                .upload(Buffer::I64((0..n as i64).map(|i| i - 5000).collect()))
                .unwrap();
            let out = mem.alloc(ScalarType::I64, n).unwrap();
            let stats = launch_decoded(
                &dev,
                &dk,
                n as u64,
                &[Arg::Buffer(a), Arg::Buffer(out)],
                &mut mem,
                threads,
            )
            .unwrap();
            (stats, mem.download(out).unwrap().clone())
        };
        let (seq_stats, seq_out) = run(1);
        for threads in [2, 3, 8] {
            let (par_stats, par_out) = run(threads);
            assert_eq!(seq_stats, par_stats, "stats differ at {threads} threads");
            assert_eq!(seq_out, par_out, "outputs differ at {threads} threads");
        }
    }

    #[test]
    fn cross_group_scatter_conflicts_resolve_in_group_order() {
        // Every thread writes its group id to out[0]: the last group wins,
        // deterministically, at any host-thread count.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "conflict".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::GlobalWrite {
                buf: 0,
                index: KExp::i64(0),
                value: KExp::GroupId,
            }],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let n = 4 * dev.group_size as u64; // four full groups
        for threads in [1, 2, 4] {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, 1).unwrap();
            launch_decoded(&dev, &dk, n, &[Arg::Buffer(out)], &mut mem, threads).unwrap();
            let Buffer::I64(v) = mem.download(out).unwrap() else {
                panic!()
            };
            assert_eq!(v[0], 3, "at {threads} threads");
        }
    }

    #[test]
    fn lowest_faulting_group_wins_and_predecessors_commit() {
        // Group 0 writes out[0] = 7; group 1 reads out of bounds. The
        // error must be group 1's, and group 0's write must be visible.
        let dev = DeviceProfile::gtx780();
        let gs = dev.group_size as i64;
        let k = Kernel {
            name: "fault".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::If {
                cond: KExp::Cmp(
                    futhark_core::CmpOp::Eq,
                    Box::new(KExp::GroupId),
                    Box::new(KExp::i64(0)),
                ),
                then_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::LocalId.rem(KExp::i64(2)),
                    value: KExp::i64(7),
                }],
                else_s: vec![KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::i64(1_000_000),
                }],
            }],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        for threads in [1, 4] {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, 2).unwrap();
            let e = launch_decoded(
                &dev,
                &dk,
                2 * gs as u64,
                &[Arg::Buffer(out)],
                &mut mem,
                threads,
            )
            .unwrap_err();
            assert!(matches!(e, SimError::OutOfBounds { .. }), "at {threads}");
            let Buffer::I64(v) = mem.download(out).unwrap() else {
                panic!()
            };
            assert_eq!(&v[..], &[7, 7], "group 0's writes must be committed");
        }
    }

    #[test]
    fn floored_division_in_decoded_kernels() {
        // out[i] = (i - 8) / 3 over the tape engine must match the
        // interpreter's floored semantics.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "floordiv".into(),
            params: vec![
                KParam::Buffer(ScalarType::I64),
                KParam::Buffer(ScalarType::I64),
            ],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::GlobalWrite {
                    buf: 1,
                    index: KExp::GlobalId,
                    value: KExp::Var(0).div(KExp::i64(3)),
                },
            ],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let mut mem = DeviceMemory::new();
        let xs: Vec<i64> = (0..16).map(|i| i - 8).collect();
        let a = mem.upload(Buffer::I64(xs.clone())).unwrap();
        let out = mem.alloc(ScalarType::I64, 16).unwrap();
        launch_decoded(
            &dev,
            &dk,
            16,
            &[Arg::Buffer(a), Arg::Buffer(out)],
            &mut mem,
            1,
        )
        .unwrap();
        let Buffer::I64(v) = mem.download(out).unwrap() else {
            panic!()
        };
        for (x, got) in xs.iter().zip(v) {
            assert_eq!(*got, floor_div_i64(*x, 3), "{x} / 3");
        }
        assert_eq!(v[0], -3); // -8/3 floors to -3, not -2
    }

    #[test]
    fn negative_local_size_is_an_error() {
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "neglocal".into(),
            params: vec![KParam::Scalar(ScalarType::I64)],
            locals: vec![(ScalarType::I64, KExp::ScalarArg(0))],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let mut mem = DeviceMemory::new();
        let e =
            launch_decoded(&dev, &dk, 8, &[Arg::Scalar(Scalar::I64(-5))], &mut mem, 1).unwrap_err();
        assert!(
            matches!(e, SimError::NegativeLocalSize { requested: -5, .. }),
            "got {e:?}"
        );
    }

    #[test]
    fn group_reads_its_own_writes_through_the_overlay() {
        // Write out[id] = id, then read it back and double it, all in one
        // launch: reads must see the group's own earlier writes.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "rmw".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::GlobalId,
                },
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(0).mul(KExp::i64(2)),
                },
            ],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        for threads in [1, 4] {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, 600).unwrap();
            launch_decoded(&dev, &dk, 600, &[Arg::Buffer(out)], &mut mem, threads).unwrap();
            let Buffer::I64(v) = mem.download(out).unwrap() else {
                panic!()
            };
            assert_eq!(v[0], 0);
            assert_eq!(v[299], 598);
            assert_eq!(v[599], 1198);
        }
    }
}

//! Pre-decoded kernel execution: flat opcode tapes, typed register files,
//! and deterministic parallel work-group execution.
//!
//! The tree-walking simulator paid for every scalar operation twice: once
//! chasing `Box`ed [`KExp`] nodes, and once boxing/unboxing [`Scalar`]
//! enum values in `Vec<Scalar>` register files. [`DecodedKernel::decode`]
//! removes both costs ahead of time:
//!
//! - every expression becomes a flat postfix [`Tape`] of [`EOp`]s evaluated
//!   on a small `u64` bit-stack — no recursion, no allocation per lane;
//! - every virtual register gets a *statically inferred* scalar class and a
//!   slot in a typed, unboxed register file (separate `Vec<i64>`,
//!   `Vec<i32>`, `Vec<f32>`, `Vec<f64>`, `Vec<bool>` in structure-of-arrays
//!   layout, `file[slot * lanes + lane]`) instead of a `Vec<Scalar>` per
//!   lane.
//!
//! Scalar *semantics* are unchanged: integer arithmetic wraps, `/` and `%`
//! are floored ([`futhark_interp::scalar::floor_div_i64`] and friends), and
//! the rare ops with delicate float behaviour (`UnOp`, `Convert`) reuse the
//! interpreter's own helpers on reconstructed [`Scalar`]s so the simulator
//! cannot drift from the reference semantics.
//!
//! # Parallel work-group execution and the launch memory model
//!
//! Work-groups of one launch are independent by construction: this module
//! *defines* a launch as every group reading the device memory snapshot
//! taken at launch time plus its **own** writes (a per-group write log
//! overlays the snapshot), with the logs applied to device memory in
//! ascending group order once all groups finish. Sequential and parallel
//! execution both implement exactly this definition, so they are
//! bit-identical — in output values *and* in every [`KernelStats`] counter
//! — no matter how groups are scheduled across host threads.
//!
//! Data-race freedom: worker threads share only immutable state (the
//! decoded kernel, the launch arguments, and the `&DeviceMemory` snapshot);
//! each group accumulates its writes and stats privately. Conflicting
//! writes to the same element from *different* groups are resolved
//! deterministically by the ordered log application (highest group id
//! wins, matching what sequential group-at-a-time execution produced);
//! within a group, later lanes/statements win, as on real hardware's
//! in-order warp retirement. The only behaviour this model cannot express
//! is a group *reading* another group's write from the same launch — that
//! is a data race on a real GPU (no inter-group synchronisation exists
//! short of kernel exit), the code generator never emits it, and under
//! this model such a read deterministically sees the pre-launch value.
//!
//! Errors are deterministic too: if any group faults, the error of the
//! lowest-numbered faulting group is reported (what sequential execution
//! would have hit first), after applying the write logs of the groups
//! before it.

// Lane loops index several parallel per-lane arrays (mask, offsets,
// registers) by the same lane id; iterator rewrites obscure that.
#![allow(clippy::needless_range_loop)]

use crate::device::DeviceProfile;
use crate::kernel::{KExp, KParam, KStm, Kernel};
use crate::sim::{Arg, BufId, DeviceMemory, KernelStats, SimError, SiteStats};
use futhark_core::{BinOp, Buffer, CmpOp, Prov, Scalar, ScalarType, UnOp};
use futhark_interp::scalar::{
    eval_binop, eval_convert, eval_unop, floor_div_i32, floor_div_i64, floor_mod_i32, floor_mod_i64,
};
use std::collections::HashMap;

type SResult<T> = Result<T, SimError>;

// ---------------------------------------------------------------------------
// Bit encoding
// ---------------------------------------------------------------------------
//
// All runtime values travel as raw `u64` bit patterns; the statically known
// class says how to interpret them. Encoding: i64 as-is; i32 zero-extended
// from its 32-bit two's-complement pattern; floats via `to_bits` (f32 in the
// low 32 bits); bool as 0/1. Round-tripping is exact, including NaN
// payloads.

#[inline]
fn enc(s: Scalar) -> u64 {
    match s {
        Scalar::Bool(b) => b as u64,
        Scalar::I32(v) => v as u32 as u64,
        Scalar::I64(v) => v as u64,
        Scalar::F32(v) => v.to_bits() as u64,
        Scalar::F64(v) => v.to_bits(),
    }
}

#[inline]
fn dec(t: ScalarType, bits: u64) -> Scalar {
    match t {
        ScalarType::Bool => Scalar::Bool(bits != 0),
        ScalarType::I32 => Scalar::I32(bits as u32 as i32),
        ScalarType::I64 => Scalar::I64(bits as i64),
        ScalarType::F32 => Scalar::F32(f32::from_bits(bits as u32)),
        ScalarType::F64 => Scalar::F64(f64::from_bits(bits)),
    }
}

#[inline]
fn buf_get_bits(b: &Buffer, i: usize) -> u64 {
    match b {
        Buffer::Bool(v) => v[i] as u64,
        Buffer::I32(v) => v[i] as u32 as u64,
        Buffer::I64(v) => v[i] as u64,
        Buffer::F32(v) => v[i].to_bits() as u64,
        Buffer::F64(v) => v[i].to_bits(),
    }
}

#[inline]
fn buf_set_bits(b: &mut Buffer, i: usize, bits: u64) {
    match b {
        Buffer::Bool(v) => v[i] = bits != 0,
        Buffer::I32(v) => v[i] = bits as u32 as i32,
        Buffer::I64(v) => v[i] = bits as i64,
        Buffer::F32(v) => v[i] = f32::from_bits(bits as u32),
        Buffer::F64(v) => v[i] = f64::from_bits(bits),
    }
}

/// Interprets index bits of the given class as an `i64` element index.
#[inline]
fn index_i64(t: ScalarType, bits: u64) -> SResult<i64> {
    match t {
        ScalarType::I64 => Ok(bits as i64),
        ScalarType::I32 => Ok(bits as u32 as i32 as i64),
        _ => Err(SimError::Scalar("non-integer index".into())),
    }
}

// ---------------------------------------------------------------------------
// The opcode tape
// ---------------------------------------------------------------------------

/// One postfix opcode. Operand classes are baked in at decode time, so
/// execution never inspects a value tag.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EOp {
    /// Push pre-encoded constant bits.
    Const(u64),
    /// Push a register (class + slot in that class's file).
    Load(ScalarType, u32),
    /// Push the linear global thread id (i64).
    GlobalId,
    /// Push the work-group id (i64).
    GroupId,
    /// Push the intra-group thread id (i64).
    LocalId,
    /// Push the work-group size (i64).
    GroupSize,
    /// Push the launch thread count (i64).
    NumThreads,
    /// Push a pre-encoded scalar launch argument.
    ScalarArg(u32),
    /// Apply a binary op to the top two stack slots (operand class baked).
    Bin(BinOp, ScalarType),
    /// Apply a comparison (pushes a bool).
    Cmp(CmpOp, ScalarType),
    /// Apply a unary op.
    Un(UnOp, ScalarType),
    /// Convert from one class to another.
    Conv(ScalarType, ScalarType),
}

/// A flat postfix expression: evaluate the ops left to right on a bit
/// stack; the result is the single remaining slot. `cost` is the original
/// tree's [`KExp::op_count`] so warp-issue accounting is unchanged;
/// `class` is the statically known class of the result bits.
///
/// Alongside the postfix form, every tape carries a register form
/// (`winstrs`): the same ops with explicit scratch-register operands,
/// produced by [`reg_compile`] at decode time. The warp engine executes
/// the register form one *instruction* at a time across all lanes (each
/// scratch register is a column of `lanes` bit-slots), instead of one
/// *lane* at a time over the postfix form.
#[derive(Debug, Clone)]
struct Tape {
    ops: Vec<EOp>,
    /// Register-form instructions for warp-column execution.
    winstrs: Vec<WInstr>,
    /// Scratch registers the register form needs (high-water mark of the
    /// decode-time allocator).
    n_regs: u32,
    /// Scratch register holding the tape's result.
    result: u32,
    cost: u64,
    class: ScalarType,
}

/// The scratch-register budget the warp engine preallocates per group.
/// Tapes whose register form needs more ([`Tape::spills`]) grow the
/// scratch arena on first use — the simulator's analogue of spilling.
const WREG_FILE: u32 = 16;

impl Tape {
    /// Registers beyond the preallocated file ([`WREG_FILE`]): how far
    /// this tape spills.
    #[cfg_attr(not(test), allow(dead_code))]
    fn spills(&self) -> u32 {
        self.n_regs.saturating_sub(WREG_FILE)
    }
}

/// One register-form instruction: the [`EOp`] payload plus explicit
/// scratch-register operands assigned by [`reg_compile`]. Registers hold
/// the same raw `u64` bit patterns as the postfix stack did.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WInstr {
    Const {
        dst: u32,
        bits: u64,
    },
    Load {
        dst: u32,
        class: ScalarType,
        slot: u32,
    },
    GlobalId {
        dst: u32,
    },
    GroupId {
        dst: u32,
    },
    LocalId {
        dst: u32,
    },
    GroupSize {
        dst: u32,
    },
    NumThreads {
        dst: u32,
    },
    ScalarArg {
        dst: u32,
        arg: u32,
    },
    Bin {
        op: BinOp,
        t: ScalarType,
        dst: u32,
        a: u32,
        b: u32,
    },
    Cmp {
        op: CmpOp,
        t: ScalarType,
        dst: u32,
        a: u32,
        b: u32,
    },
    Un {
        op: UnOp,
        t: ScalarType,
        dst: u32,
        a: u32,
    },
    Conv {
        from: ScalarType,
        to: ScalarType,
        dst: u32,
        a: u32,
    },
}

/// Deterministic linear-scan register allocation over a postfix tape: a
/// stack of register ids mirrors the evaluation stack, and a LIFO free
/// list recycles the registers an operator consumes, so a binary op's
/// destination reuses its left operand's register (safe: every lane reads
/// both operands before writing the destination). Same tape, same
/// assignment — always; nothing here depends on runtime state, which is
/// what keeps profiled counters and the profgate baseline bit-for-bit.
///
/// A structurally invalid tape — an operator with too few operands on the
/// stack, an empty tape, or leftover operands — is reported as an error
/// string (the caller wraps it in [`SimError::Malformed`] with the kernel
/// name attached): such tapes cannot come out of the decoder, but a
/// hand-constructed artifact must not panic a long-lived process.
fn reg_compile(ops: &[EOp]) -> Result<(Vec<WInstr>, u32, u32), String> {
    struct Alloc {
        free: Vec<u32>,
        next: u32,
    }
    impl Alloc {
        fn get(&mut self) -> u32 {
            self.free.pop().unwrap_or_else(|| {
                let r = self.next;
                self.next += 1;
                r
            })
        }
    }
    let mut alloc = Alloc {
        free: Vec::new(),
        next: 0,
    };
    let mut stack: Vec<u32> = Vec::new();
    let mut out = Vec::with_capacity(ops.len());
    for (at, op) in ops.iter().enumerate() {
        let pop = |stack: &mut Vec<u32>| {
            stack
                .pop()
                .ok_or_else(|| format!("expression tape underflow at op {at}"))
        };
        match *op {
            EOp::Const(bits) => {
                let dst = alloc.get();
                out.push(WInstr::Const { dst, bits });
                stack.push(dst);
            }
            EOp::Load(class, slot) => {
                let dst = alloc.get();
                out.push(WInstr::Load { dst, class, slot });
                stack.push(dst);
            }
            EOp::GlobalId => {
                let dst = alloc.get();
                out.push(WInstr::GlobalId { dst });
                stack.push(dst);
            }
            EOp::GroupId => {
                let dst = alloc.get();
                out.push(WInstr::GroupId { dst });
                stack.push(dst);
            }
            EOp::LocalId => {
                let dst = alloc.get();
                out.push(WInstr::LocalId { dst });
                stack.push(dst);
            }
            EOp::GroupSize => {
                let dst = alloc.get();
                out.push(WInstr::GroupSize { dst });
                stack.push(dst);
            }
            EOp::NumThreads => {
                let dst = alloc.get();
                out.push(WInstr::NumThreads { dst });
                stack.push(dst);
            }
            EOp::ScalarArg(arg) => {
                let dst = alloc.get();
                out.push(WInstr::ScalarArg { dst, arg });
                stack.push(dst);
            }
            EOp::Bin(op, t) => {
                let b = pop(&mut stack)?;
                let a = pop(&mut stack)?;
                alloc.free.push(b);
                alloc.free.push(a);
                let dst = alloc.get();
                out.push(WInstr::Bin { op, t, dst, a, b });
                stack.push(dst);
            }
            EOp::Cmp(op, t) => {
                let b = pop(&mut stack)?;
                let a = pop(&mut stack)?;
                alloc.free.push(b);
                alloc.free.push(a);
                let dst = alloc.get();
                out.push(WInstr::Cmp { op, t, dst, a, b });
                stack.push(dst);
            }
            EOp::Un(op, t) => {
                let a = pop(&mut stack)?;
                alloc.free.push(a);
                let dst = alloc.get();
                out.push(WInstr::Un { op, t, dst, a });
                stack.push(dst);
            }
            EOp::Conv(from, to) => {
                let a = pop(&mut stack)?;
                alloc.free.push(a);
                let dst = alloc.get();
                out.push(WInstr::Conv { from, to, dst, a });
                stack.push(dst);
            }
        }
    }
    let result = stack.pop().ok_or("empty expression tape")?;
    if !stack.is_empty() {
        return Err(format!(
            "unbalanced expression tape: {} leftover operands",
            stack.len()
        ));
    }
    Ok((out, alloc.next, result))
}

/// A decoded statement: the same shapes as [`KStm`], with expressions as
/// tapes and destinations as (class, slot) pairs resolved at decode time.
#[derive(Debug, Clone)]
enum DStm {
    Assign {
        class: ScalarType,
        slot: u32,
        exp: Tape,
    },
    GlobalRead {
        class: ScalarType,
        slot: u32,
        buf: usize,
        index: Tape,
    },
    GlobalWrite {
        buf: usize,
        index: Tape,
        value: Tape,
    },
    LocalRead {
        class: ScalarType,
        slot: u32,
        mem: usize,
        index: Tape,
    },
    LocalWrite {
        mem: usize,
        index: Tape,
        value: Tape,
    },
    PrivAlloc {
        arr: usize,
        size: Tape,
    },
    PrivRead {
        class: ScalarType,
        slot: u32,
        arr: usize,
        index: Tape,
    },
    PrivWrite {
        arr: usize,
        index: Tape,
        value: Tape,
    },
    PrivCopy {
        dst: usize,
        src: usize,
        len: Tape,
    },
    For {
        /// Slot of the (i64) loop counter.
        slot: u32,
        bound: Tape,
        body: Vec<DStm>,
    },
    While {
        cond: Tape,
        body: Vec<DStm>,
    },
    If {
        cond: Tape,
        then_s: Vec<DStm>,
        else_s: Vec<DStm>,
    },
    Barrier,
    /// Provenance marker: while executing `body`, profiled runs attribute
    /// counters to site `prov` (an index into the decoded kernel's
    /// provenance table). Free in unprofiled runs beyond the recursion.
    At {
        prov: u32,
        body: Vec<DStm>,
    },
}

/// Index of a scalar class in per-class tables.
#[inline]
fn ci(t: ScalarType) -> usize {
    match t {
        ScalarType::Bool => 0,
        ScalarType::I32 => 1,
        ScalarType::I64 => 2,
        ScalarType::F32 => 3,
        ScalarType::F64 => 4,
    }
}

/// A kernel pre-decoded for execution: register classes inferred, slots
/// assigned, expressions flattened to tapes.
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    /// Diagnostic name (same as the source kernel's).
    pub name: String,
    params: Vec<KParam>,
    /// Local buffer element types and (uniform) size expressions, kept in
    /// tree form: they are evaluated once per launch, not per lane.
    locals: Vec<(ScalarType, KExp)>,
    /// Per original register: its class and slot within the class file.
    reg_slot: Vec<(ScalarType, u32)>,
    /// Slots used per class (indexed by [`ci`]).
    file_len: [u32; 5],
    /// Element class of each private array.
    priv_class: Vec<ScalarType>,
    body: Vec<DStm>,
    /// Source provenance sets referenced by the tape's `At` markers
    /// (copied from the kernel). Site index `prov_table.len()` is the
    /// implicit "unattributed" bucket in profiled runs.
    pub prov_table: Vec<Prov>,
}

// ---------------------------------------------------------------------------
// Decode: register class inference + tape compilation
// ---------------------------------------------------------------------------

struct Decoder<'k> {
    kernel: &'k Kernel,
    /// Inferred class per register (`None` = never written; defaults to
    /// i64, matching the old simulator's `Scalar::I64(0)` register init).
    regs: Vec<Option<ScalarType>>,
    privs: Vec<Option<ScalarType>>,
    changed: bool,
}

impl<'k> Decoder<'k> {
    fn scalar_err(msg: impl Into<String>) -> SimError {
        SimError::Scalar(msg.into())
    }

    fn param_scalar(&self, i: usize) -> SResult<ScalarType> {
        match self.kernel.params.get(i) {
            Some(KParam::Scalar(t)) => Ok(*t),
            _ => Err(Self::scalar_err(format!("argument {i} is not a scalar"))),
        }
    }

    fn param_buffer(&self, i: usize) -> SResult<ScalarType> {
        match self.kernel.params.get(i) {
            Some(KParam::Buffer(t)) => Ok(*t),
            _ => Err(Self::scalar_err(format!("argument {i} is not a buffer"))),
        }
    }

    /// The class of an expression, if enough register classes are known.
    fn exp_class(&self, e: &KExp) -> SResult<Option<ScalarType>> {
        Ok(match e {
            KExp::Const(s) => Some(s.scalar_type()),
            KExp::Var(r) => self.regs[*r as usize],
            KExp::GlobalId | KExp::GroupId | KExp::LocalId | KExp::GroupSize | KExp::NumThreads => {
                Some(ScalarType::I64)
            }
            KExp::ScalarArg(i) => Some(self.param_scalar(*i)?),
            KExp::BinOp(_, a, b) => match self.exp_class(a)? {
                Some(t) => Some(t),
                None => self.exp_class(b)?,
            },
            KExp::Cmp(..) => Some(ScalarType::Bool),
            KExp::UnOp(_, a) => self.exp_class(a)?,
            KExp::Convert(t, _) => Some(*t),
        })
    }

    fn set_reg(&mut self, r: u32, t: ScalarType) -> SResult<()> {
        match self.regs[r as usize] {
            None => {
                self.regs[r as usize] = Some(t);
                self.changed = true;
                Ok(())
            }
            Some(old) if old == t => Ok(()),
            Some(old) => Err(Self::scalar_err(format!(
                "register {r} used at both {old:?} and {t:?}"
            ))),
        }
    }

    fn set_priv(&mut self, p: usize, t: ScalarType) -> SResult<()> {
        match self.privs[p] {
            None => {
                self.privs[p] = Some(t);
                self.changed = true;
                Ok(())
            }
            Some(old) if old == t => Ok(()),
            Some(old) => Err(Self::scalar_err(format!(
                "private array {p} used at both {old:?} and {t:?}"
            ))),
        }
    }

    fn infer_stms(&mut self, stms: &[KStm]) -> SResult<()> {
        for stm in stms {
            match stm {
                KStm::Assign { var, exp } => {
                    if let Some(t) = self.exp_class(exp)? {
                        self.set_reg(*var, t)?;
                    }
                }
                KStm::GlobalRead { var, buf, .. } => {
                    let t = self.param_buffer(*buf)?;
                    self.set_reg(*var, t)?;
                }
                KStm::LocalRead { var, mem, .. } => {
                    let t = self.kernel.locals[*mem].0;
                    self.set_reg(*var, t)?;
                }
                KStm::PrivAlloc { arr, elem, .. } => self.set_priv(*arr, *elem)?,
                KStm::PrivRead { var, arr, .. } => {
                    if let Some(t) = self.privs[*arr] {
                        self.set_reg(*var, t)?;
                    }
                }
                KStm::PrivCopy { dst, src, .. } => {
                    if let Some(t) = self.privs[*src] {
                        self.set_priv(*dst, t)?;
                    }
                }
                KStm::For { var, body, .. } => {
                    self.set_reg(*var, ScalarType::I64)?;
                    self.infer_stms(body)?;
                }
                KStm::While { body, .. } | KStm::At { body, .. } => self.infer_stms(body)?,
                KStm::If { then_s, else_s, .. } => {
                    self.infer_stms(then_s)?;
                    self.infer_stms(else_s)?;
                }
                KStm::GlobalWrite { .. }
                | KStm::LocalWrite { .. }
                | KStm::PrivWrite { .. }
                | KStm::Barrier => {}
            }
        }
        Ok(())
    }
}

struct Compiler<'k> {
    kernel: &'k Kernel,
    reg_slot: Vec<(ScalarType, u32)>,
    priv_class: Vec<ScalarType>,
}

impl<'k> Compiler<'k> {
    /// Compiles an expression to postfix, returning its class.
    fn exp(&self, e: &KExp, out: &mut Vec<EOp>) -> SResult<ScalarType> {
        Ok(match e {
            KExp::Const(s) => {
                out.push(EOp::Const(enc(*s)));
                s.scalar_type()
            }
            KExp::Var(r) => {
                let (t, slot) = self.reg_slot[*r as usize];
                out.push(EOp::Load(t, slot));
                t
            }
            KExp::GlobalId => {
                out.push(EOp::GlobalId);
                ScalarType::I64
            }
            KExp::GroupId => {
                out.push(EOp::GroupId);
                ScalarType::I64
            }
            KExp::LocalId => {
                out.push(EOp::LocalId);
                ScalarType::I64
            }
            KExp::GroupSize => {
                out.push(EOp::GroupSize);
                ScalarType::I64
            }
            KExp::NumThreads => {
                out.push(EOp::NumThreads);
                ScalarType::I64
            }
            KExp::ScalarArg(i) => {
                let t = match self.kernel.params.get(*i) {
                    Some(KParam::Scalar(t)) => *t,
                    _ => {
                        return Err(SimError::Scalar(format!("argument {i} is not a scalar")));
                    }
                };
                out.push(EOp::ScalarArg(*i as u32));
                t
            }
            KExp::BinOp(op, a, b) => {
                let ta = self.exp(a, out)?;
                let tb = self.exp(b, out)?;
                if ta != tb {
                    return Err(SimError::Scalar(format!(
                        "operand type mismatch: {ta:?} vs {tb:?}"
                    )));
                }
                out.push(EOp::Bin(*op, ta));
                ta
            }
            KExp::Cmp(op, a, b) => {
                let ta = self.exp(a, out)?;
                let tb = self.exp(b, out)?;
                if ta != tb {
                    return Err(SimError::Scalar(format!(
                        "comparison type mismatch: {ta:?} vs {tb:?}"
                    )));
                }
                out.push(EOp::Cmp(*op, ta));
                ScalarType::Bool
            }
            KExp::UnOp(op, a) => {
                let ta = self.exp(a, out)?;
                out.push(EOp::Un(*op, ta));
                ta
            }
            KExp::Convert(t, a) => {
                let ta = self.exp(a, out)?;
                out.push(EOp::Conv(ta, *t));
                *t
            }
        })
    }

    fn tape(&self, e: &KExp) -> SResult<Tape> {
        let mut ops = Vec::new();
        let class = self.exp(e, &mut ops)?;
        let (winstrs, n_regs, result) = reg_compile(&ops).map_err(|what| SimError::Malformed {
            kernel: self.kernel.name.clone(),
            what,
        })?;
        Ok(Tape {
            ops,
            winstrs,
            n_regs,
            result,
            cost: e.op_count(),
            class,
        })
    }

    /// A tape whose result will be used as an element index (i32 or i64).
    fn index_tape(&self, e: &KExp) -> SResult<Tape> {
        let tape = self.tape(e)?;
        if !matches!(tape.class, ScalarType::I32 | ScalarType::I64) {
            return Err(SimError::Scalar("non-integer index".into()));
        }
        Ok(tape)
    }

    /// A tape whose result must be a boolean condition.
    fn cond_tape(&self, e: &KExp, what: &str) -> SResult<Tape> {
        let tape = self.tape(e)?;
        if tape.class != ScalarType::Bool {
            return Err(SimError::Scalar(format!("non-boolean {what} condition")));
        }
        Ok(tape)
    }

    /// A tape whose result is stored into something of class `want`.
    fn value_tape(&self, e: &KExp, want: ScalarType, what: &str) -> SResult<Tape> {
        let tape = self.tape(e)?;
        if tape.class != want {
            return Err(SimError::Scalar(format!(
                "{what} of class {:?} stored into {want:?}",
                tape.class
            )));
        }
        Ok(tape)
    }

    fn reg(&self, r: u32) -> (ScalarType, u32) {
        self.reg_slot[r as usize]
    }

    fn stms(&self, stms: &[KStm]) -> SResult<Vec<DStm>> {
        stms.iter().map(|s| self.stm(s)).collect()
    }

    fn stm(&self, stm: &KStm) -> SResult<DStm> {
        Ok(match stm {
            KStm::Assign { var, exp } => {
                let (class, slot) = self.reg(*var);
                DStm::Assign {
                    class,
                    slot,
                    exp: self.value_tape(exp, class, "assignment")?,
                }
            }
            KStm::GlobalRead { var, buf, index } => {
                let (class, slot) = self.reg(*var);
                DStm::GlobalRead {
                    class,
                    slot,
                    buf: *buf,
                    index: self.index_tape(index)?,
                }
            }
            KStm::GlobalWrite { buf, index, value } => {
                let elem = match self.kernel.params.get(*buf) {
                    Some(KParam::Buffer(t)) => *t,
                    _ => {
                        return Err(SimError::Scalar(format!("argument {buf} is not a buffer")));
                    }
                };
                DStm::GlobalWrite {
                    buf: *buf,
                    index: self.index_tape(index)?,
                    value: self.value_tape(value, elem, "global write")?,
                }
            }
            KStm::LocalRead { var, mem, index } => {
                let (class, slot) = self.reg(*var);
                DStm::LocalRead {
                    class,
                    slot,
                    mem: *mem,
                    index: self.index_tape(index)?,
                }
            }
            KStm::LocalWrite { mem, index, value } => DStm::LocalWrite {
                mem: *mem,
                index: self.index_tape(index)?,
                value: self.value_tape(value, self.kernel.locals[*mem].0, "local write")?,
            },
            KStm::PrivAlloc { arr, size, .. } => DStm::PrivAlloc {
                arr: *arr,
                size: self.index_tape(size)?,
            },
            KStm::PrivRead { var, arr, index } => {
                let (class, slot) = self.reg(*var);
                DStm::PrivRead {
                    class,
                    slot,
                    arr: *arr,
                    index: self.index_tape(index)?,
                }
            }
            KStm::PrivWrite { arr, index, value } => DStm::PrivWrite {
                arr: *arr,
                index: self.index_tape(index)?,
                value: self.value_tape(value, self.priv_class[*arr], "private write")?,
            },
            KStm::PrivCopy { dst, src, len } => DStm::PrivCopy {
                dst: *dst,
                src: *src,
                len: self.index_tape(len)?,
            },
            KStm::For { var, bound, body } => {
                let (class, slot) = self.reg(*var);
                debug_assert_eq!(class, ScalarType::I64);
                DStm::For {
                    slot,
                    bound: self.index_tape(bound)?,
                    body: self.stms(body)?,
                }
            }
            KStm::While { cond, body } => DStm::While {
                cond: self.cond_tape(cond, "while")?,
                body: self.stms(body)?,
            },
            KStm::If {
                cond,
                then_s,
                else_s,
            } => DStm::If {
                cond: self.cond_tape(cond, "if")?,
                then_s: self.stms(then_s)?,
                else_s: self.stms(else_s)?,
            },
            KStm::Barrier => DStm::Barrier,
            KStm::At { prov, body } => DStm::At {
                prov: *prov,
                body: self.stms(body)?,
            },
        })
    }
}

impl DecodedKernel {
    /// Pre-decodes a kernel: infers a scalar class for every register and
    /// private array (fixpoint over the body; registers that are never
    /// written default to i64, matching the old `Scalar::I64(0)` register
    /// initialisation), assigns each register a slot in its class's file,
    /// and flattens every expression into a postfix [`Tape`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Scalar`] for kernels the static model rejects:
    /// a register or private array used at two different classes, operand
    /// class mismatches, or argument kind confusion (these were dynamic
    /// faults in the tree-walking simulator; well-typed codegen output
    /// never triggers them).
    pub fn decode(kernel: &Kernel) -> SResult<DecodedKernel> {
        let mut inf = Decoder {
            kernel,
            regs: vec![None; kernel.num_regs as usize],
            privs: vec![None; kernel.num_priv],
            changed: true,
        };
        // Fixpoint: classes only ever go from unknown to known, so this
        // terminates after at most `num_regs + num_priv + 1` sweeps.
        while inf.changed {
            inf.changed = false;
            inf.infer_stms(&kernel.body)?;
        }
        let mut file_len = [0u32; 5];
        let reg_slot: Vec<(ScalarType, u32)> = inf
            .regs
            .iter()
            .map(|c| {
                let t = c.unwrap_or(ScalarType::I64);
                let slot = file_len[ci(t)];
                file_len[ci(t)] += 1;
                (t, slot)
            })
            .collect();
        let priv_class: Vec<ScalarType> = inf
            .privs
            .iter()
            .map(|c| c.unwrap_or(ScalarType::I64))
            .collect();
        let comp = Compiler {
            kernel,
            reg_slot,
            priv_class,
        };
        let body = comp.stms(&kernel.body).map_err(|e| match e {
            SimError::Scalar(m) => {
                SimError::Scalar(format!("decoding kernel `{}`: {m}", kernel.name))
            }
            other => other,
        })?;
        Ok(DecodedKernel {
            name: kernel.name.clone(),
            params: kernel.params.clone(),
            locals: kernel.locals.clone(),
            reg_slot: comp.reg_slot,
            file_len,
            priv_class: comp.priv_class,
            body,
            prov_table: kernel.prov_table.clone(),
        })
    }

    /// The inferred scalar class of each original register, in register
    /// order (diagnostics and tests).
    pub fn reg_classes(&self) -> impl Iterator<Item = ScalarType> + '_ {
        self.reg_slot.iter().map(|&(t, _)| t)
    }
}

// ---------------------------------------------------------------------------
// Bit-level operator implementations
// ---------------------------------------------------------------------------
//
// Integer and float arithmetic are implemented directly on the bit
// representation with *exactly* the expressions `eval_binop`/`eval_cmp`
// use (including the shared floored-division helpers), so results are
// bit-identical to the interpreter. `UnOp` and `Convert` reconstruct
// `Scalar`s and call the interpreter's helpers outright: they are rare in
// kernel inner loops and have the most delicate float edge cases
// (double rounding in i64→f32, NaN/±inf/out-of-range in float→int).

fn div_by_zero() -> SimError {
    // Matches `InterpError::DivisionByZero`'s display, which the old
    // tree-walking evaluator surfaced through `eval_binop`.
    SimError::Scalar("division by zero".into())
}

#[inline]
fn bin_bits(op: BinOp, t: ScalarType, a: u64, b: u64) -> SResult<u64> {
    use BinOp::*;
    let type_err = |what: &str| SimError::Scalar(format!("type error at runtime: {what}"));
    Ok(match t {
        ScalarType::I64 => {
            let (x, y) = (a as i64, b as i64);
            (match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_div_i64(x, y)
                }
                Rem => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_mod_i64(x, y)
                }
                Min => x.min(y),
                Max => x.max(y),
                Pow | Atan2 => return Err(type_err("pow/atan2 on integers")),
                And | Or => return Err(type_err("logical op on integers")),
            }) as u64
        }
        ScalarType::I32 => {
            let (x, y) = (a as u32 as i32, b as u32 as i32);
            (match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_div_i32(x, y)
                }
                Rem => {
                    if y == 0 {
                        return Err(div_by_zero());
                    }
                    floor_mod_i32(x, y)
                }
                Min => x.min(y),
                Max => x.max(y),
                Pow | Atan2 => return Err(type_err("pow/atan2 on integers")),
                And | Or => return Err(type_err("logical op on integers")),
            }) as u32 as u64
        }
        ScalarType::F32 => {
            let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
            (match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                Min => x.min(y),
                Max => x.max(y),
                Pow => x.powf(y),
                Atan2 => x.atan2(y),
                And | Or => return Err(type_err("logical op on floats")),
            })
            .to_bits() as u64
        }
        ScalarType::F64 => {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            (match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Rem => x % y,
                Min => x.min(y),
                Max => x.max(y),
                Pow => x.powf(y),
                Atan2 => x.atan2(y),
                And | Or => return Err(type_err("logical op on floats")),
            })
            .to_bits()
        }
        ScalarType::Bool => match op {
            And => a & b,
            Or => a | b,
            _ => return Err(type_err("arithmetic on booleans")),
        },
    })
}

#[inline]
fn cmp_bits(op: CmpOp, t: ScalarType, a: u64, b: u64) -> u64 {
    #[inline]
    fn cmp<T: PartialOrd>(op: CmpOp, x: T, y: T) -> bool {
        match op {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }
    (match t {
        ScalarType::I64 => cmp(op, a as i64, b as i64),
        ScalarType::I32 => cmp(op, a as u32 as i32, b as u32 as i32),
        ScalarType::F32 => cmp(op, f32::from_bits(a as u32), f32::from_bits(b as u32)),
        ScalarType::F64 => cmp(op, f64::from_bits(a), f64::from_bits(b)),
        ScalarType::Bool => cmp(op, a != 0, b != 0),
    }) as u64
}

// ---------------------------------------------------------------------------
// Typed register files
// ---------------------------------------------------------------------------

/// Unboxed per-class register files in structure-of-arrays layout: register
/// slot `s` of lane `l` lives at `file[s * lanes + l]`, so a statement
/// sweeping the lanes for one register walks memory contiguously.
struct RegFiles {
    lanes: usize,
    i64s: Vec<i64>,
    i32s: Vec<i32>,
    f32s: Vec<f32>,
    f64s: Vec<f64>,
    bools: Vec<bool>,
}

impl RegFiles {
    fn new(file_len: &[u32; 5], lanes: usize) -> RegFiles {
        RegFiles {
            lanes,
            bools: vec![false; file_len[0] as usize * lanes],
            i32s: vec![0; file_len[1] as usize * lanes],
            i64s: vec![0; file_len[2] as usize * lanes],
            f32s: vec![0.0; file_len[3] as usize * lanes],
            f64s: vec![0.0; file_len[4] as usize * lanes],
        }
    }

    #[inline]
    fn get(&self, class: ScalarType, slot: u32, lane: usize) -> u64 {
        let i = slot as usize * self.lanes + lane;
        match class {
            ScalarType::Bool => self.bools[i] as u64,
            ScalarType::I32 => self.i32s[i] as u32 as u64,
            ScalarType::I64 => self.i64s[i] as u64,
            ScalarType::F32 => self.f32s[i].to_bits() as u64,
            ScalarType::F64 => self.f64s[i].to_bits(),
        }
    }

    #[inline]
    fn set(&mut self, class: ScalarType, slot: u32, lane: usize, bits: u64) {
        let i = slot as usize * self.lanes + lane;
        match class {
            ScalarType::Bool => self.bools[i] = bits != 0,
            ScalarType::I32 => self.i32s[i] = bits as u32 as i32,
            ScalarType::I64 => self.i64s[i] = bits as i64,
            ScalarType::F32 => self.f32s[i] = f32::from_bits(bits as u32),
            ScalarType::F64 => self.f64s[i] = f64::from_bits(bits),
        }
    }

    #[inline]
    fn set_i64(&mut self, slot: u32, lane: usize, v: i64) {
        self.i64s[slot as usize * self.lanes + lane] = v;
    }
}

// ---------------------------------------------------------------------------
// Group execution
// ---------------------------------------------------------------------------

/// What one group's execution produces: its counters and its write log
/// (final value per written element — within-group ordering is already
/// resolved, last write wins).
struct GroupOut {
    stats: KernelStats,
    writes: HashMap<BufId, HashMap<usize, u64>>,
    /// Per-site counters (profiled runs only); length is
    /// `prov_table.len() + 1`, the last slot being the unattributed bucket.
    sites: Option<Vec<SiteStats>>,
    /// Warp-engine uniform fast-path tallies (zero under the lane engine).
    /// Carried per group and folded into [`LaunchOut`] — never through
    /// process-wide state, so concurrent launches cannot contaminate each
    /// other's diagnostics.
    u_hits: u64,
    u_misses: u64,
}

struct GroupRun<'a> {
    dk: &'a DecodedKernel,
    base: &'a DeviceMemory,
    buf_ids: &'a [Option<BufId>],
    scalar_bits: &'a [Option<u64>],
    group_id: u64,
    group_size: u64,
    num_threads: u64,
    lanes: usize,
    warp_size: usize,
    transaction_bytes: u64,
    files: RegFiles,
    /// Per-lane private arrays as bits: `privs[arr * lanes + lane]`.
    privs: Vec<Vec<u64>>,
    /// Per-group local buffers as bits.
    locals: Vec<Vec<u64>>,
    /// This group's global-memory overlay: reads consult it before the
    /// base snapshot, and it doubles as the ordered-by-index write log.
    writes: HashMap<BufId, HashMap<usize, u64>>,
    stack: Vec<u64>,
    /// Scratch: per-lane element offsets of the current global access.
    offsets: Vec<Option<i64>>,
    /// Scratch: segment ids for transaction counting.
    segs: Vec<i64>,
    /// Warp engine: the scratch-register arena, `n_regs` columns of
    /// `lanes` bit-slots each (`scratch[reg * lanes + lane]`).
    /// Preallocated at [`WREG_FILE`] columns; spilling tapes grow it.
    scratch: Vec<u64>,
    /// Warp engine: per-lane element indices of a two-tape statement,
    /// saved between the index tape and the value tape (whose register
    /// columns would otherwise collide).
    icol: Vec<i64>,
    /// Warp engine: recycled mask storage for divergent control flow.
    mask_pool: Vec<Vec<bool>>,
    /// Warp engine: control-flow decisions that took the uniform fast
    /// path / fell back to per-lane masking (returned on [`GroupOut`] and
    /// folded into the launch's [`LaunchOut`]; never part of
    /// [`KernelStats`], so engine choice cannot perturb profiled counters).
    u_hits: u64,
    u_misses: u64,
    stats: KernelStats,
    /// Per-site counters, allocated only in profiled runs.
    sites: Option<Vec<SiteStats>>,
    /// The site currently executing (maintained by `DStm::At`); starts at
    /// the unattributed bucket.
    cur_site: usize,
}

/// An execution mask with its warp bookkeeping precomputed: which lanes
/// are on, whether any/all are, how many warps have at least one active
/// lane, and how many lane-slots idle inside those warps. Computing this
/// once per mask makes [`GroupRun::issue_w`] O(1) instead of a scan per
/// statement.
struct WMask {
    on: Vec<bool>,
    any: bool,
    all: bool,
    warps: u64,
    inactive: u64,
}

impl WMask {
    fn new(on: Vec<bool>, warp_size: usize) -> WMask {
        let mut m = WMask {
            on,
            any: false,
            all: false,
            warps: 0,
            inactive: 0,
        };
        m.recompute(warp_size);
        m
    }

    /// Recomputes the cached bookkeeping after `on` changed in place.
    fn recompute(&mut self, warp_size: usize) {
        let mut warps = 0u64;
        let mut inactive = 0u64;
        let mut active_total = 0usize;
        for chunk in self.on.chunks(warp_size) {
            let active = chunk.iter().filter(|&&b| b).count();
            if active > 0 {
                warps += 1;
                inactive += (chunk.len() - active) as u64;
            }
            active_total += active;
        }
        self.any = active_total > 0;
        self.all = active_total == self.on.len();
        self.warps = warps;
        self.inactive = inactive;
    }
}

/// Per-lane faults recorded while evaluating one tape across the warp:
/// `None` in the (overwhelmingly common) fault-free case, else one
/// optional error per lane — a lane's *first* fault, after which it is
/// masked out of subsequent fallible instructions of the same tape.
struct TapeFaults(Option<Box<[Option<SimError>]>>);

impl TapeFaults {
    /// Takes lane's fault, if any — callers walk lanes in ascending
    /// order, so each fault is inspected at most once.
    #[inline]
    fn take(&mut self, lane: usize) -> Option<SimError> {
        self.0.as_mut().and_then(|f| f[lane].take())
    }

    /// The lowest faulting lane and its error — what lane-ascending
    /// per-lane evaluation would have reported first.
    fn into_first(self) -> Option<(usize, SimError)> {
        self.0.and_then(|f| {
            f.into_vec()
                .into_iter()
                .enumerate()
                .find_map(|(l, e)| e.map(|e| (l, e)))
        })
    }
}

#[inline]
fn lane_faulted(faults: &Option<Box<[Option<SimError>]>>, lane: usize) -> bool {
    faults.as_ref().is_some_and(|f| f[lane].is_some())
}

#[inline]
fn record_fault(
    faults: &mut Option<Box<[Option<SimError>]>>,
    lanes: usize,
    lane: usize,
    e: SimError,
) {
    let f = faults.get_or_insert_with(|| vec![None; lanes].into_boxed_slice());
    if f[lane].is_none() {
        f[lane] = Some(e);
    }
}

/// Interprets index bits whose class is statically integer (`index_tape`
/// guarantees i32 or i64) as an `i64` element index.
#[inline]
fn conv_index(t: ScalarType, bits: u64) -> i64 {
    match t {
        ScalarType::I32 => bits as u32 as i32 as i64,
        _ => bits as i64,
    }
}

impl<'a> GroupRun<'a> {
    fn oob(&self, what: String) -> SimError {
        SimError::OutOfBounds {
            kernel: self.dk.name.clone(),
            what,
        }
    }

    fn buffer(&self, arg: usize) -> SResult<BufId> {
        self.buf_ids
            .get(arg)
            .copied()
            .flatten()
            .ok_or_else(|| SimError::Scalar(format!("argument {arg} is not a buffer")))
    }

    /// A malformed-artifact fault attributed to this kernel (tape stack
    /// underflow and the like — unreachable from decoded kernels, but a
    /// corrupted artifact must be an error, not a process-killing panic).
    fn malformed(&self, what: impl Into<String>) -> SimError {
        SimError::Malformed {
            kernel: self.dk.name.clone(),
            what: what.into(),
        }
    }

    /// Evaluates a tape for one lane on the bit stack.
    fn eval(&mut self, tape: &Tape, lane: usize) -> SResult<u64> {
        self.stack.clear();
        for op in &tape.ops {
            match *op {
                EOp::Const(bits) => self.stack.push(bits),
                EOp::Load(class, slot) => self.stack.push(self.files.get(class, slot, lane)),
                EOp::GlobalId => self
                    .stack
                    .push((self.group_id * self.group_size + lane as u64) as i64 as u64),
                EOp::GroupId => self.stack.push(self.group_id as i64 as u64),
                EOp::LocalId => self.stack.push(lane as i64 as u64),
                EOp::GroupSize => self.stack.push(self.group_size as i64 as u64),
                EOp::NumThreads => self.stack.push(self.num_threads as i64 as u64),
                EOp::ScalarArg(i) => {
                    let bits = self.scalar_bits[i as usize]
                        .ok_or_else(|| SimError::Scalar(format!("argument {i} is not a scalar")))?;
                    self.stack.push(bits);
                }
                EOp::Bin(op, t) => {
                    let b = self.pop_operand()?;
                    let a = self.pop_operand()?;
                    self.stack.push(bin_bits(op, t, a, b)?);
                }
                EOp::Cmp(op, t) => {
                    let b = self.pop_operand()?;
                    let a = self.pop_operand()?;
                    self.stack.push(cmp_bits(op, t, a, b));
                }
                EOp::Un(op, t) => {
                    let a = self.pop_operand()?;
                    let r =
                        eval_unop(op, dec(t, a)).map_err(|e| SimError::Scalar(e.to_string()))?;
                    self.stack.push(enc(r));
                }
                EOp::Conv(from, to) => {
                    let a = self.pop_operand()?;
                    let r = eval_convert(to, dec(from, a))
                        .map_err(|e| SimError::Scalar(e.to_string()))?;
                    self.stack.push(enc(r));
                }
            }
        }
        self.stack
            .pop()
            .ok_or_else(|| self.malformed("empty expression tape"))
    }

    /// Pops one operand from the lane-engine bit stack; underflow means the
    /// tape is structurally invalid.
    #[inline]
    fn pop_operand(&mut self) -> SResult<u64> {
        match self.stack.pop() {
            Some(bits) => Ok(bits),
            None => Err(self.malformed("expression tape underflow")),
        }
    }

    fn eval_index(&mut self, tape: &Tape, lane: usize) -> SResult<i64> {
        let bits = self.eval(tape, lane)?;
        index_i64(tape.class, bits)
    }

    /// The current site's counters, if this is a profiled run.
    #[inline]
    fn site(&mut self) -> Option<&mut SiteStats> {
        let i = self.cur_site;
        self.sites.as_mut().map(|s| &mut s[i])
    }

    /// Counts the warp issue cost for one statement over a mask.
    fn issue(&mut self, mask: &[bool], ops: u64) {
        let mut warps = 0u64;
        for chunk in mask.chunks(self.warp_size) {
            if chunk.iter().any(|&b| b) {
                warps += 1;
            }
        }
        self.stats.warp_instructions += warps * (1 + ops);
        if self.sites.is_some() {
            // Inactive-lane slots: lanes masked off in warps that still
            // issue — the divergence waste. Counted per site only, so the
            // aggregate stats are identical with and without profiling.
            let mut inactive = 0u64;
            for chunk in mask.chunks(self.warp_size) {
                let active = chunk.iter().filter(|&&b| b).count() as u64;
                if active > 0 {
                    inactive += chunk.len() as u64 - active;
                }
            }
            let s = self.site().expect("profiled run");
            s.warp_instructions += warps * (1 + ops);
            s.inactive_lane_instructions += inactive * (1 + ops);
        }
    }

    /// Counts memory transactions for a warp-grouped global access using
    /// the per-lane offsets left in `self.offsets`. A warp's transaction
    /// count is the number of distinct aligned segments its active lanes
    /// touch (sort + dedup on a reused scratch vector: deterministic and
    /// allocation-free, unlike the old per-warp `HashSet`).
    fn memory_access(&mut self, mask: &[bool], elem_bytes: u64) {
        for (w, chunk) in mask.chunks(self.warp_size).enumerate() {
            self.segs.clear();
            let mut useful = 0u64;
            for (l, &on) in chunk.iter().enumerate() {
                if !on {
                    continue;
                }
                if let Some(off) = self.offsets[w * self.warp_size + l] {
                    self.segs
                        .push((off * elem_bytes as i64) / self.transaction_bytes as i64);
                    useful += elem_bytes;
                }
            }
            self.segs.sort_unstable();
            self.segs.dedup();
            let tx = self.segs.len() as u64;
            self.stats.global_transactions += tx;
            self.stats.bus_bytes += tx * self.transaction_bytes;
            self.stats.useful_bytes += useful;
            let bus = tx * self.transaction_bytes;
            if let Some(s) = self.site() {
                s.global_transactions += tx;
                s.bus_bytes += bus;
                s.useful_bytes += useful;
            }
        }
    }

    fn exec(&mut self, stms: &[DStm], mask: &[bool]) -> SResult<()> {
        if !mask.iter().any(|&b| b) {
            return Ok(());
        }
        for stm in stms {
            match stm {
                DStm::Assign { class, slot, exp } => {
                    self.issue(mask, exp.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let bits = self.eval(exp, lane)?;
                            self.files.set(*class, *slot, lane, bits);
                        }
                    }
                }
                DStm::GlobalRead {
                    class,
                    slot,
                    buf,
                    index,
                } => {
                    self.issue(mask, index.cost);
                    let bid = self.buffer(*buf)?;
                    let base_buf = self.base.raw(bid);
                    let len = base_buf.len() as i64;
                    let elem_bytes = base_buf.elem_type().byte_size() as u64;
                    for lane in 0..mask.len() {
                        self.offsets[lane] = None;
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            if i < 0 || i >= len {
                                return Err(self.oob(format!("read {i} of buffer len {len}")));
                            }
                            self.offsets[lane] = Some(i);
                            // Overlay first: the group sees its own writes.
                            let bits =
                                match self.writes.get(&bid).and_then(|m| m.get(&(i as usize))) {
                                    Some(&b) => b,
                                    None => buf_get_bits(self.base.raw(bid), i as usize),
                                };
                            self.files.set(*class, *slot, lane, bits);
                        }
                    }
                    self.memory_access(mask, elem_bytes);
                }
                DStm::GlobalWrite { buf, index, value } => {
                    self.issue(mask, index.cost + value.cost);
                    let bid = self.buffer(*buf)?;
                    let len = self.base.raw(bid).len() as i64;
                    let elem_bytes = self.base.raw(bid).elem_type().byte_size() as u64;
                    for lane in 0..mask.len() {
                        self.offsets[lane] = None;
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            if i < 0 || i >= len {
                                return Err(self.oob(format!("write {i} of buffer len {len}")));
                            }
                            let bits = self.eval(value, lane)?;
                            self.offsets[lane] = Some(i);
                            self.writes.entry(bid).or_default().insert(i as usize, bits);
                        }
                    }
                    self.memory_access(mask, elem_bytes);
                }
                DStm::LocalRead {
                    class,
                    slot,
                    mem,
                    index,
                } => {
                    self.issue(mask, index.cost);
                    let mut n = 0u64;
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let len = self.locals[*mem].len();
                            if i < 0 || i as usize >= len {
                                return Err(self.oob(format!("local read {i} of len {len}")));
                            }
                            let bits = self.locals[*mem][i as usize];
                            self.files.set(*class, *slot, lane, bits);
                            n += 1;
                        }
                    }
                    self.stats.local_accesses += n;
                    if let Some(s) = self.site() {
                        s.local_accesses += n;
                    }
                }
                DStm::LocalWrite { mem, index, value } => {
                    self.issue(mask, index.cost + value.cost);
                    let mut n = 0u64;
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let bits = self.eval(value, lane)?;
                            let len = self.locals[*mem].len();
                            if i < 0 || i as usize >= len {
                                return Err(self.oob(format!("local write {i} of len {len}")));
                            }
                            self.locals[*mem][i as usize] = bits;
                            n += 1;
                        }
                    }
                    self.stats.local_accesses += n;
                    if let Some(s) = self.site() {
                        s.local_accesses += n;
                    }
                }
                DStm::PrivAlloc { arr, size } => {
                    self.issue(mask, size.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let n = self.eval_index(size, lane)?.max(0) as usize;
                            self.privs[*arr * self.lanes + lane] = vec![0u64; n];
                        }
                    }
                }
                DStm::PrivRead {
                    class,
                    slot,
                    arr,
                    index,
                } => {
                    self.issue(mask, index.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let p = &self.privs[*arr * self.lanes + lane];
                            if i < 0 || i as usize >= p.len() {
                                return Err(
                                    self.oob(format!("private read {i} of len {}", p.len()))
                                );
                            }
                            let bits = p[i as usize];
                            self.files.set(*class, *slot, lane, bits);
                        }
                    }
                }
                DStm::PrivWrite { arr, index, value } => {
                    self.issue(mask, index.cost + value.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let i = self.eval_index(index, lane)?;
                            let bits = self.eval(value, lane)?;
                            let p = &mut self.privs[*arr * self.lanes + lane];
                            if i < 0 || i as usize >= p.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.dk.name.clone(),
                                    what: format!("private write {i} of len {}", p.len()),
                                });
                            }
                            p[i as usize] = bits;
                        }
                    }
                }
                DStm::PrivCopy { dst, src, len } => {
                    self.issue(mask, len.cost);
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let n = self.eval_index(len, lane)?.max(0) as usize;
                            let s = &self.privs[*src * self.lanes + lane];
                            if n > s.len() {
                                return Err(
                                    self.oob(format!("private copy {n} of len {}", s.len()))
                                );
                            }
                            let v = s[..n].to_vec();
                            self.privs[*dst * self.lanes + lane] = v;
                        }
                    }
                }
                DStm::For { slot, bound, body } => {
                    self.issue(mask, bound.cost);
                    let mut bounds = vec![0i64; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            bounds[lane] = self.eval_index(bound, lane)?;
                        }
                    }
                    let max_bound = bounds.iter().copied().max().unwrap_or(0);
                    for t in 0..max_bound {
                        let sub: Vec<bool> = mask
                            .iter()
                            .zip(&bounds)
                            .map(|(&m, &b)| m && t < b)
                            .collect();
                        if !sub.iter().any(|&b| b) {
                            break;
                        }
                        for lane in 0..mask.len() {
                            if sub[lane] {
                                self.files.set_i64(*slot, lane, t);
                            }
                        }
                        self.exec(body, &sub)?;
                    }
                }
                DStm::While { cond, body } => {
                    let mut live = mask.to_vec();
                    let mut iterations = 0u64;
                    loop {
                        self.issue(&live, cond.cost);
                        for lane in 0..live.len() {
                            if live[lane] {
                                live[lane] = self.eval(cond, lane)? != 0;
                            }
                        }
                        if !live.iter().any(|&b| b) {
                            break;
                        }
                        self.exec(body, &live)?;
                        iterations += 1;
                        if iterations > 100_000_000 {
                            return Err(SimError::RunawayLoop {
                                kernel: self.dk.name.clone(),
                            });
                        }
                    }
                }
                DStm::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    self.issue(mask, cond.cost);
                    let mut then_mask = vec![false; mask.len()];
                    let mut else_mask = vec![false; mask.len()];
                    for lane in 0..mask.len() {
                        if mask[lane] {
                            let c = self.eval(cond, lane)? != 0;
                            then_mask[lane] = c;
                            else_mask[lane] = !c;
                        }
                    }
                    self.exec(then_s, &then_mask)?;
                    self.exec(else_s, &else_mask)?;
                }
                DStm::Barrier => {
                    // All in-bounds lanes of the group must participate.
                    if mask.iter().any(|&b| !b) {
                        return Err(SimError::DivergentBarrier {
                            kernel: self.dk.name.clone(),
                        });
                    }
                    self.stats.barriers += 1;
                    if let Some(s) = self.site() {
                        s.barriers += 1;
                    }
                    self.issue(mask, 0);
                }
                DStm::At { prov, body } => {
                    // Transparent for execution; in profiled runs the body's
                    // counters go to this site (restored on the way out, so
                    // siblings keep the enclosing attribution).
                    let saved = self.cur_site;
                    if self.sites.is_some() {
                        self.cur_site = *prov as usize;
                    }
                    let r = self.exec(body, mask);
                    self.cur_site = saved;
                    r?;
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // The warp engine
    // -----------------------------------------------------------------

    /// O(1) warp-issue accounting from the mask's precomputed meta;
    /// counter-identical to [`GroupRun::issue`] over `mask.on`.
    fn issue_w(&mut self, mask: &WMask, ops: u64) {
        self.stats.warp_instructions += mask.warps * (1 + ops);
        if self.sites.is_some() {
            let (warps, inactive) = (mask.warps, mask.inactive);
            let s = self.site().expect("profiled run");
            s.warp_instructions += warps * (1 + ops);
            s.inactive_lane_instructions += inactive * (1 + ops);
        }
    }

    /// A recycled lane-sized mask buffer (all false).
    fn take_bits(&mut self) -> Vec<bool> {
        match self.mask_pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(self.lanes, false);
                v
            }
            None => vec![false; self.lanes],
        }
    }

    fn put_bits(&mut self, v: Vec<bool>) {
        self.mask_pool.push(v);
    }

    /// Stores a scratch column into the typed register file for the
    /// mask's active lanes; masked-off lanes keep their register values.
    fn store_column(&mut self, class: ScalarType, slot: u32, reg: u32, mask: &WMask) {
        let lanes = self.lanes;
        let r = reg as usize * lanes;
        let s = &self.scratch;
        let base = slot as usize * lanes;
        let on = &mask.on;
        macro_rules! store {
            ($file:expr, |$b:ident| $e:expr) => {{
                let src = &s[r..r + lanes];
                let dc = &mut $file[base..base + lanes];
                if mask.all {
                    for (o, &$b) in dc.iter_mut().zip(src) {
                        *o = $e;
                    }
                } else {
                    for ((o, &$b), &m) in dc.iter_mut().zip(src).zip(on.iter()) {
                        if m {
                            *o = $e;
                        }
                    }
                }
            }};
        }
        match class {
            ScalarType::Bool => store!(&mut self.files.bools, |b| b != 0),
            ScalarType::I32 => store!(&mut self.files.i32s, |b| b as u32 as i32),
            ScalarType::I64 => store!(&mut self.files.i64s, |b| b as i64),
            ScalarType::F32 => store!(&mut self.files.f32s, |b| f32::from_bits(b as u32)),
            ScalarType::F64 => store!(&mut self.files.f64s, |b| f64::from_bits(b)),
        }
    }

    /// Evaluates a tape's register form across every lane of the group in
    /// one instruction-major sweep: each instruction is a single dispatch
    /// followed by a per-opcode loop over the lanes.
    ///
    /// Infallible instructions run *unmasked* at full width — a masked-off
    /// (or already-faulted) lane's column values are garbage that nothing
    /// downstream may observe (register stores, memory traffic, counters,
    /// and fault checks are all mask-predicated by the caller), so
    /// computing them costs nothing semantically and buys check-free,
    /// autovectorizable loops even under heavy divergence. Only fallible
    /// instructions (integer div/rem, unops, conversions) consult the mask,
    /// because a dead lane must not fault.
    ///
    /// The result is left in scratch column `tape.result`. Faults are
    /// recorded per lane — a faulted lane is masked out of subsequent
    /// fallible instructions of the same tape — and returned for the
    /// caller to interleave with its own per-lane checks in lane-ascending
    /// order, reproducing exactly the error the per-lane engine would
    /// pick.
    fn weval(&mut self, tape: &Tape, mask: &WMask) -> SResult<TapeFaults> {
        let lanes = self.lanes;
        let need = tape.n_regs as usize * lanes;
        if self.scratch.len() < need {
            // Spill: this tape needs more columns than the preallocated
            // register file; the arena grows and stays grown.
            self.scratch.resize(need, 0);
        }
        let (group_id, group_size, num_threads) =
            (self.group_id, self.group_size, self.num_threads);
        let scalar_bits = self.scalar_bits;
        let files = &self.files;
        let s: &mut [u64] = &mut self.scratch;
        let on: &[bool] = &mask.on;
        let mut faults: Option<Box<[Option<SimError>]>> = None;

        macro_rules! fill1 {
            ($dst:expr, |$l:ident| $e:expr) => {{
                let d = $dst as usize * lanes;
                // One up-front bounds proof so the per-lane loop carries
                // no checks and the compiler can vectorize it.
                assert!(d + lanes <= s.len());
                for $l in 0..lanes {
                    s[d + $l] = $e;
                }
            }};
        }
        macro_rules! wloop {
            ($dst:expr, $a:expr, $b:expr, |$x:ident, $y:ident| $e:expr) => {{
                let (d, ax, bx) = (
                    $dst as usize * lanes,
                    $a as usize * lanes,
                    $b as usize * lanes,
                );
                // Columns may alias (the allocator reuses an operand's
                // register as the destination), so prove bounds up front
                // rather than splitting the arena into subslices.
                assert!(d + lanes <= s.len() && ax + lanes <= s.len() && bx + lanes <= s.len());
                for l in 0..lanes {
                    let ($x, $y) = (s[ax + l], s[bx + l]);
                    s[d + l] = $e;
                }
            }};
        }

        for ins in &tape.winstrs {
            match *ins {
                WInstr::Const { dst, bits } => fill1!(dst, |_l| bits),
                WInstr::Load { dst, class, slot } => {
                    // Exact subslices of the register file and the scratch
                    // column: check-free, vectorizable copies.
                    macro_rules! load {
                        ($file:expr, |$v:ident| $e:expr) => {{
                            let base = slot as usize * lanes;
                            let src = &$file[base..base + lanes];
                            let d = dst as usize * lanes;
                            let dc = &mut s[d..d + lanes];
                            for (o, &$v) in dc.iter_mut().zip(src) {
                                *o = $e;
                            }
                        }};
                    }
                    match class {
                        ScalarType::Bool => load!(files.bools, |v| v as u64),
                        ScalarType::I32 => load!(files.i32s, |v| v as u32 as u64),
                        ScalarType::I64 => load!(files.i64s, |v| v as u64),
                        ScalarType::F32 => load!(files.f32s, |v| v.to_bits() as u64),
                        ScalarType::F64 => load!(files.f64s, |v| v.to_bits()),
                    }
                }
                WInstr::GlobalId { dst } => {
                    fill1!(dst, |l| (group_id * group_size + l as u64) as i64 as u64)
                }
                WInstr::GroupId { dst } => fill1!(dst, |_l| group_id as i64 as u64),
                WInstr::LocalId { dst } => fill1!(dst, |l| l as i64 as u64),
                WInstr::GroupSize { dst } => fill1!(dst, |_l| group_size as i64 as u64),
                WInstr::NumThreads { dst } => fill1!(dst, |_l| num_threads as i64 as u64),
                WInstr::ScalarArg { dst, arg } => {
                    // A missing scalar argument faults every lane alike;
                    // the per-lane engine reported it at the first active
                    // lane, before any other lane's checks could run.
                    let bits = scalar_bits[arg as usize].ok_or_else(|| {
                        SimError::Scalar(format!("argument {arg} is not a scalar"))
                    })?;
                    fill1!(dst, |_l| bits)
                }
                WInstr::Bin { op, t, dst, a, b } => {
                    use BinOp::*;
                    use ScalarType::*;
                    match (t, op) {
                        (I64, Add) => {
                            wloop!(dst, a, b, |x, y| (x as i64).wrapping_add(y as i64) as u64)
                        }
                        (I64, Sub) => {
                            wloop!(dst, a, b, |x, y| (x as i64).wrapping_sub(y as i64) as u64)
                        }
                        (I64, Mul) => {
                            wloop!(dst, a, b, |x, y| (x as i64).wrapping_mul(y as i64) as u64)
                        }
                        (I64, Min) => wloop!(dst, a, b, |x, y| (x as i64).min(y as i64) as u64),
                        (I64, Max) => wloop!(dst, a, b, |x, y| (x as i64).max(y as i64) as u64),
                        (I32, Add) => wloop!(dst, a, b, |x, y| (x as u32 as i32)
                            .wrapping_add(y as u32 as i32)
                            as u32
                            as u64),
                        (I32, Sub) => wloop!(dst, a, b, |x, y| (x as u32 as i32)
                            .wrapping_sub(y as u32 as i32)
                            as u32
                            as u64),
                        (I32, Mul) => wloop!(dst, a, b, |x, y| (x as u32 as i32)
                            .wrapping_mul(y as u32 as i32)
                            as u32
                            as u64),
                        (I32, Min) => wloop!(dst, a, b, |x, y| (x as u32 as i32)
                            .min(y as u32 as i32)
                            as u32
                            as u64),
                        (I32, Max) => wloop!(dst, a, b, |x, y| (x as u32 as i32)
                            .max(y as u32 as i32)
                            as u32
                            as u64),
                        (F64, Add) => wloop!(dst, a, b, |x, y| (f64::from_bits(x)
                            + f64::from_bits(y))
                        .to_bits()),
                        (F64, Sub) => wloop!(dst, a, b, |x, y| (f64::from_bits(x)
                            - f64::from_bits(y))
                        .to_bits()),
                        (F64, Mul) => wloop!(dst, a, b, |x, y| (f64::from_bits(x)
                            * f64::from_bits(y))
                        .to_bits()),
                        (F64, Div) => wloop!(dst, a, b, |x, y| (f64::from_bits(x)
                            / f64::from_bits(y))
                        .to_bits()),
                        (F64, Rem) => wloop!(dst, a, b, |x, y| (f64::from_bits(x)
                            % f64::from_bits(y))
                        .to_bits()),
                        (F64, Min) => wloop!(dst, a, b, |x, y| f64::from_bits(x)
                            .min(f64::from_bits(y))
                            .to_bits()),
                        (F64, Max) => wloop!(dst, a, b, |x, y| f64::from_bits(x)
                            .max(f64::from_bits(y))
                            .to_bits()),
                        (F64, Pow) => wloop!(dst, a, b, |x, y| f64::from_bits(x)
                            .powf(f64::from_bits(y))
                            .to_bits()),
                        (F64, Atan2) => wloop!(dst, a, b, |x, y| f64::from_bits(x)
                            .atan2(f64::from_bits(y))
                            .to_bits()),
                        (F32, Add) => wloop!(dst, a, b, |x, y| (f32::from_bits(x as u32)
                            + f32::from_bits(y as u32))
                        .to_bits()
                            as u64),
                        (F32, Sub) => wloop!(dst, a, b, |x, y| (f32::from_bits(x as u32)
                            - f32::from_bits(y as u32))
                        .to_bits()
                            as u64),
                        (F32, Mul) => wloop!(dst, a, b, |x, y| (f32::from_bits(x as u32)
                            * f32::from_bits(y as u32))
                        .to_bits()
                            as u64),
                        (F32, Div) => wloop!(dst, a, b, |x, y| (f32::from_bits(x as u32)
                            / f32::from_bits(y as u32))
                        .to_bits()
                            as u64),
                        (F32, Rem) => wloop!(dst, a, b, |x, y| (f32::from_bits(x as u32)
                            % f32::from_bits(y as u32))
                        .to_bits()
                            as u64),
                        (F32, Min) => wloop!(dst, a, b, |x, y| f32::from_bits(x as u32)
                            .min(f32::from_bits(y as u32))
                            .to_bits()
                            as u64),
                        (F32, Max) => wloop!(dst, a, b, |x, y| f32::from_bits(x as u32)
                            .max(f32::from_bits(y as u32))
                            .to_bits()
                            as u64),
                        (F32, Pow) => wloop!(dst, a, b, |x, y| f32::from_bits(x as u32)
                            .powf(f32::from_bits(y as u32))
                            .to_bits()
                            as u64),
                        (F32, Atan2) => wloop!(dst, a, b, |x, y| f32::from_bits(x as u32)
                            .atan2(f32::from_bits(y as u32))
                            .to_bits()
                            as u64),
                        (Bool, And) => wloop!(dst, a, b, |x, y| x & y),
                        (Bool, Or) => wloop!(dst, a, b, |x, y| x | y),
                        (I64, Div) | (I64, Rem) => {
                            let (di, ai, bi) =
                                (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                            // Prescan every lane, masked or not: the fast
                            // path divides unmasked, so even a dead lane's
                            // garbage divisor must be nonzero to take it.
                            let mut any_zero = false;
                            for l in 0..lanes {
                                any_zero |= s[bi + l] as i64 == 0;
                            }
                            let div = op == Div;
                            if !any_zero {
                                if div {
                                    wloop!(dst, a, b, |x, y| floor_div_i64(x as i64, y as i64)
                                        as u64)
                                } else {
                                    wloop!(dst, a, b, |x, y| floor_mod_i64(x as i64, y as i64)
                                        as u64)
                                }
                            } else {
                                for l in 0..lanes {
                                    if on[l] && !lane_faulted(&faults, l) {
                                        let y = s[bi + l] as i64;
                                        if y == 0 {
                                            record_fault(&mut faults, lanes, l, div_by_zero());
                                        } else {
                                            let x = s[ai + l] as i64;
                                            s[di + l] = if div {
                                                floor_div_i64(x, y)
                                            } else {
                                                floor_mod_i64(x, y)
                                            }
                                                as u64;
                                        }
                                    }
                                }
                            }
                        }
                        (I32, Div) | (I32, Rem) => {
                            let (di, ai, bi) =
                                (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                            let mut any_zero = false;
                            for l in 0..lanes {
                                any_zero |= s[bi + l] as u32 as i32 == 0;
                            }
                            let div = op == Div;
                            if !any_zero {
                                if div {
                                    wloop!(dst, a, b, |x, y| floor_div_i32(
                                        x as u32 as i32,
                                        y as u32 as i32
                                    )
                                        as u32
                                        as u64)
                                } else {
                                    wloop!(dst, a, b, |x, y| floor_mod_i32(
                                        x as u32 as i32,
                                        y as u32 as i32
                                    )
                                        as u32
                                        as u64)
                                }
                            } else {
                                for l in 0..lanes {
                                    if on[l] && !lane_faulted(&faults, l) {
                                        let y = s[bi + l] as u32 as i32;
                                        if y == 0 {
                                            record_fault(&mut faults, lanes, l, div_by_zero());
                                        } else {
                                            let x = s[ai + l] as u32 as i32;
                                            s[di + l] = if div {
                                                floor_div_i32(x, y)
                                            } else {
                                                floor_mod_i32(x, y)
                                            }
                                                as u32
                                                as u64;
                                        }
                                    }
                                }
                            }
                        }
                        _ => {
                            // Op/class mismatches (`pow` on integers,
                            // arithmetic on booleans, …): per-lane through
                            // `bin_bits`, whose error text the per-lane
                            // engine surfaced.
                            let (di, ai, bi) =
                                (dst as usize * lanes, a as usize * lanes, b as usize * lanes);
                            for l in 0..lanes {
                                if on[l] && !lane_faulted(&faults, l) {
                                    match bin_bits(op, t, s[ai + l], s[bi + l]) {
                                        Ok(v) => s[di + l] = v,
                                        Err(e) => record_fault(&mut faults, lanes, l, e),
                                    }
                                }
                            }
                        }
                    }
                }
                WInstr::Cmp { op, t, dst, a, b } => {
                    macro_rules! cmps {
                        ($conv:expr) => {{
                            let c = $conv;
                            match op {
                                CmpOp::Eq => wloop!(dst, a, b, |x, y| (c(x) == c(y)) as u64),
                                CmpOp::Ne => wloop!(dst, a, b, |x, y| (c(x) != c(y)) as u64),
                                CmpOp::Lt => wloop!(dst, a, b, |x, y| (c(x) < c(y)) as u64),
                                CmpOp::Le => wloop!(dst, a, b, |x, y| (c(x) <= c(y)) as u64),
                                CmpOp::Gt => wloop!(dst, a, b, |x, y| (c(x) > c(y)) as u64),
                                CmpOp::Ge => wloop!(dst, a, b, |x, y| (c(x) >= c(y)) as u64),
                            }
                        }};
                    }
                    match t {
                        ScalarType::I64 => cmps!(|v: u64| v as i64),
                        ScalarType::I32 => cmps!(|v: u64| v as u32 as i32),
                        ScalarType::F32 => cmps!(|v: u64| f32::from_bits(v as u32)),
                        ScalarType::F64 => cmps!(f64::from_bits),
                        ScalarType::Bool => cmps!(|v: u64| v != 0),
                    }
                }
                WInstr::Un { op, t, dst, a } => {
                    // Rare ops with delicate float edge cases: per lane
                    // through the interpreter's helper, as before.
                    let (di, ai) = (dst as usize * lanes, a as usize * lanes);
                    for l in 0..lanes {
                        if on[l] && !lane_faulted(&faults, l) {
                            match eval_unop(op, dec(t, s[ai + l])) {
                                Ok(r) => s[di + l] = enc(r),
                                Err(e) => record_fault(
                                    &mut faults,
                                    lanes,
                                    l,
                                    SimError::Scalar(e.to_string()),
                                ),
                            }
                        }
                    }
                }
                WInstr::Conv { from, to, dst, a } => {
                    let (di, ai) = (dst as usize * lanes, a as usize * lanes);
                    for l in 0..lanes {
                        if on[l] && !lane_faulted(&faults, l) {
                            match eval_convert(to, dec(from, s[ai + l])) {
                                Ok(r) => s[di + l] = enc(r),
                                Err(e) => record_fault(
                                    &mut faults,
                                    lanes,
                                    l,
                                    SimError::Scalar(e.to_string()),
                                ),
                            }
                        }
                    }
                }
            }
        }
        Ok(TapeFaults(faults))
    }

    /// The warp execution engine: statement-major like [`GroupRun::exec`]
    /// (so error precedence and every counter stay bit-identical), but
    /// each statement's expressions evaluate via [`GroupRun::weval`] — one
    /// opcode dispatch driving every lane — and control flow takes a
    /// uniform fast path when all active lanes agree, skipping per-lane
    /// mask rebuilds entirely.
    fn wexec(&mut self, stms: &[DStm], mask: &WMask) -> SResult<()> {
        if !mask.any {
            return Ok(());
        }
        let lanes = self.lanes;
        for stm in stms {
            match stm {
                DStm::Assign { class, slot, exp } => {
                    self.issue_w(mask, exp.cost);
                    let tf = self.weval(exp, mask)?;
                    if let Some((_, e)) = tf.into_first() {
                        return Err(e);
                    }
                    self.store_column(*class, *slot, exp.result, mask);
                }
                DStm::GlobalRead {
                    class,
                    slot,
                    buf,
                    index,
                } => {
                    self.issue_w(mask, index.cost);
                    let bid = self.buffer(*buf)?;
                    let len = self.base.raw(bid).len() as i64;
                    let elem_bytes = self.base.raw(bid).elem_type().byte_size() as u64;
                    let mut tf = self.weval(index, mask)?;
                    let (r, icls) = (index.result as usize * lanes, index.class);
                    // Lane-ascending checks: a lane's own tape fault
                    // precedes its bounds check, exactly as per-lane
                    // evaluation ordered them.
                    for l in 0..lanes {
                        self.offsets[l] = None;
                        if mask.on[l] {
                            if let Some(e) = tf.take(l) {
                                return Err(e);
                            }
                            let i = conv_index(icls, self.scratch[r + l]);
                            if i < 0 || i >= len {
                                return Err(self.oob(format!("read {i} of buffer len {len}")));
                            }
                            self.offsets[l] = Some(i);
                        }
                    }
                    // Data movement: no faults possible past this point.
                    // One overlay lookup per buffer, not per lane.
                    let ov = self.writes.get(&bid);
                    let base_buf = self.base.raw(bid);
                    for l in 0..lanes {
                        if mask.on[l] {
                            let i = self.offsets[l].expect("checked above") as usize;
                            let bits = match ov.and_then(|m| m.get(&i)) {
                                Some(&b) => b,
                                None => buf_get_bits(base_buf, i),
                            };
                            self.files.set(*class, *slot, l, bits);
                        }
                    }
                    self.memory_access(&mask.on, elem_bytes);
                }
                DStm::GlobalWrite { buf, index, value } => {
                    self.issue_w(mask, index.cost + value.cost);
                    let bid = self.buffer(*buf)?;
                    let len = self.base.raw(bid).len() as i64;
                    let elem_bytes = self.base.raw(bid).elem_type().byte_size() as u64;
                    let mut tfi = self.weval(index, mask)?;
                    // Save the index column before the value tape reuses
                    // the same scratch registers.
                    let (r, icls) = (index.result as usize * lanes, index.class);
                    for l in 0..lanes {
                        self.icol[l] = conv_index(icls, self.scratch[r + l]);
                    }
                    let mut tfv = self.weval(value, mask)?;
                    // Lane-ascending: index fault, then bounds, then value
                    // fault — the per-lane engine's exact order.
                    for l in 0..lanes {
                        self.offsets[l] = None;
                        if mask.on[l] {
                            if let Some(e) = tfi.take(l) {
                                return Err(e);
                            }
                            let i = self.icol[l];
                            if i < 0 || i >= len {
                                return Err(self.oob(format!("write {i} of buffer len {len}")));
                            }
                            if let Some(e) = tfv.take(l) {
                                return Err(e);
                            }
                            self.offsets[l] = Some(i);
                        }
                    }
                    let rv = value.result as usize * lanes;
                    let map = self.writes.entry(bid).or_default();
                    for l in 0..lanes {
                        if mask.on[l] {
                            map.insert(self.icol[l] as usize, self.scratch[rv + l]);
                        }
                    }
                    self.memory_access(&mask.on, elem_bytes);
                }
                DStm::LocalRead {
                    class,
                    slot,
                    mem,
                    index,
                } => {
                    self.issue_w(mask, index.cost);
                    let mut tf = self.weval(index, mask)?;
                    let (r, icls) = (index.result as usize * lanes, index.class);
                    let len = self.locals[*mem].len();
                    let mut n = 0u64;
                    for l in 0..lanes {
                        if mask.on[l] {
                            if let Some(e) = tf.take(l) {
                                return Err(e);
                            }
                            let i = conv_index(icls, self.scratch[r + l]);
                            if i < 0 || i as usize >= len {
                                return Err(self.oob(format!("local read {i} of len {len}")));
                            }
                            let bits = self.locals[*mem][i as usize];
                            self.files.set(*class, *slot, l, bits);
                            n += 1;
                        }
                    }
                    self.stats.local_accesses += n;
                    if let Some(s) = self.site() {
                        s.local_accesses += n;
                    }
                }
                DStm::LocalWrite { mem, index, value } => {
                    self.issue_w(mask, index.cost + value.cost);
                    let mut tfi = self.weval(index, mask)?;
                    let (r, icls) = (index.result as usize * lanes, index.class);
                    for l in 0..lanes {
                        self.icol[l] = conv_index(icls, self.scratch[r + l]);
                    }
                    let mut tfv = self.weval(value, mask)?;
                    let rv = value.result as usize * lanes;
                    let len = self.locals[*mem].len();
                    let mut n = 0u64;
                    // Per-lane order: index fault, value fault, *then*
                    // bounds — the per-lane engine checked bounds after
                    // evaluating the value.
                    for l in 0..lanes {
                        if mask.on[l] {
                            if let Some(e) = tfi.take(l) {
                                return Err(e);
                            }
                            if let Some(e) = tfv.take(l) {
                                return Err(e);
                            }
                            let i = self.icol[l];
                            if i < 0 || i as usize >= len {
                                return Err(self.oob(format!("local write {i} of len {len}")));
                            }
                            self.locals[*mem][i as usize] = self.scratch[rv + l];
                            n += 1;
                        }
                    }
                    self.stats.local_accesses += n;
                    if let Some(s) = self.site() {
                        s.local_accesses += n;
                    }
                }
                DStm::PrivAlloc { arr, size } => {
                    self.issue_w(mask, size.cost);
                    let tf = self.weval(size, mask)?;
                    if let Some((_, e)) = tf.into_first() {
                        return Err(e);
                    }
                    let (r, icls) = (size.result as usize * lanes, size.class);
                    for l in 0..lanes {
                        if mask.on[l] {
                            let n = conv_index(icls, self.scratch[r + l]).max(0) as usize;
                            self.privs[*arr * lanes + l] = vec![0u64; n];
                        }
                    }
                }
                DStm::PrivRead {
                    class,
                    slot,
                    arr,
                    index,
                } => {
                    self.issue_w(mask, index.cost);
                    let mut tf = self.weval(index, mask)?;
                    let (r, icls) = (index.result as usize * lanes, index.class);
                    for l in 0..lanes {
                        if mask.on[l] {
                            if let Some(e) = tf.take(l) {
                                return Err(e);
                            }
                            let i = conv_index(icls, self.scratch[r + l]);
                            let p = &self.privs[*arr * lanes + l];
                            if i < 0 || i as usize >= p.len() {
                                return Err(
                                    self.oob(format!("private read {i} of len {}", p.len()))
                                );
                            }
                            let bits = p[i as usize];
                            self.files.set(*class, *slot, l, bits);
                        }
                    }
                }
                DStm::PrivWrite { arr, index, value } => {
                    self.issue_w(mask, index.cost + value.cost);
                    let mut tfi = self.weval(index, mask)?;
                    let (r, icls) = (index.result as usize * lanes, index.class);
                    for l in 0..lanes {
                        self.icol[l] = conv_index(icls, self.scratch[r + l]);
                    }
                    let mut tfv = self.weval(value, mask)?;
                    let rv = value.result as usize * lanes;
                    for l in 0..lanes {
                        if mask.on[l] {
                            if let Some(e) = tfi.take(l) {
                                return Err(e);
                            }
                            if let Some(e) = tfv.take(l) {
                                return Err(e);
                            }
                            let i = self.icol[l];
                            let p = &mut self.privs[*arr * lanes + l];
                            if i < 0 || i as usize >= p.len() {
                                return Err(SimError::OutOfBounds {
                                    kernel: self.dk.name.clone(),
                                    what: format!("private write {i} of len {}", p.len()),
                                });
                            }
                            p[i as usize] = self.scratch[rv + l];
                        }
                    }
                }
                DStm::PrivCopy { dst, src, len } => {
                    self.issue_w(mask, len.cost);
                    let mut tf = self.weval(len, mask)?;
                    let (r, icls) = (len.result as usize * lanes, len.class);
                    for l in 0..lanes {
                        if mask.on[l] {
                            if let Some(e) = tf.take(l) {
                                return Err(e);
                            }
                            let n = conv_index(icls, self.scratch[r + l]).max(0) as usize;
                            let sp = &self.privs[*src * lanes + l];
                            if n > sp.len() {
                                return Err(
                                    self.oob(format!("private copy {n} of len {}", sp.len()))
                                );
                            }
                            let v = sp[..n].to_vec();
                            self.privs[*dst * lanes + l] = v;
                        }
                    }
                }
                DStm::For { slot, bound, body } => {
                    self.issue_w(mask, bound.cost);
                    let tf = self.weval(bound, mask)?;
                    if let Some((_, e)) = tf.into_first() {
                        return Err(e);
                    }
                    let (r, icls) = (bound.result as usize * lanes, bound.class);
                    // Owned per-For bounds: the body recurses through the
                    // shared scratch arena.
                    let mut bounds = vec![0i64; lanes];
                    let mut uniform = true;
                    let mut first: Option<i64> = None;
                    for l in 0..lanes {
                        if mask.on[l] {
                            let b = conv_index(icls, self.scratch[r + l]);
                            bounds[l] = b;
                            match first {
                                None => first = Some(b),
                                Some(f) if f != b => uniform = false,
                                Some(_) => {}
                            }
                        }
                    }
                    if uniform {
                        // Uniform fast path: every active lane runs the
                        // same trip count, so the per-iteration sub-mask
                        // is the loop mask itself — never rebuilt.
                        self.u_hits += 1;
                        let b = first.unwrap_or(0);
                        for t in 0..b {
                            if mask.all {
                                let base = *slot as usize * lanes;
                                for l in 0..lanes {
                                    self.files.i64s[base + l] = t;
                                }
                            } else {
                                for l in 0..lanes {
                                    if mask.on[l] {
                                        self.files.set_i64(*slot, l, t);
                                    }
                                }
                            }
                            self.wexec(body, mask)?;
                        }
                    } else {
                        self.u_misses += 1;
                        let max_bound = (0..lanes)
                            .filter(|&l| mask.on[l])
                            .map(|l| bounds[l])
                            .max()
                            .unwrap_or(0);
                        let ws = self.warp_size;
                        let mut sub = WMask::new(self.take_bits(), ws);
                        for t in 0..max_bound {
                            for l in 0..lanes {
                                sub.on[l] = mask.on[l] && t < bounds[l];
                            }
                            sub.recompute(ws);
                            if !sub.any {
                                break;
                            }
                            for l in 0..lanes {
                                if sub.on[l] {
                                    self.files.set_i64(*slot, l, t);
                                }
                            }
                            self.wexec(body, &sub)?;
                        }
                        let bits = sub.on;
                        self.put_bits(bits);
                    }
                }
                DStm::While { cond, body } => {
                    let ws = self.warp_size;
                    let mut live = {
                        let mut v = self.take_bits();
                        v.copy_from_slice(&mask.on);
                        WMask::new(v, ws)
                    };
                    let mut iterations = 0u64;
                    loop {
                        self.issue_w(&live, cond.cost);
                        let tf = self.weval(cond, &live)?;
                        if let Some((_, e)) = tf.into_first() {
                            return Err(e);
                        }
                        let r = cond.result as usize * lanes;
                        let mut dropped = false;
                        for l in 0..lanes {
                            if live.on[l] && self.scratch[r + l] == 0 {
                                live.on[l] = false;
                                dropped = true;
                            }
                        }
                        if dropped {
                            live.recompute(ws);
                            if live.any {
                                // Divergent exit: some lanes left, some
                                // loop on under a narrowed mask.
                                self.u_misses += 1;
                            } else {
                                self.u_hits += 1;
                            }
                        } else {
                            // Uniformly true: the mask is unchanged.
                            self.u_hits += 1;
                        }
                        if !live.any {
                            break;
                        }
                        self.wexec(body, &live)?;
                        iterations += 1;
                        if iterations > 100_000_000 {
                            return Err(SimError::RunawayLoop {
                                kernel: self.dk.name.clone(),
                            });
                        }
                    }
                    let bits = live.on;
                    self.put_bits(bits);
                }
                DStm::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    self.issue_w(mask, cond.cost);
                    let tf = self.weval(cond, mask)?;
                    if let Some((_, e)) = tf.into_first() {
                        return Err(e);
                    }
                    let r = cond.result as usize * lanes;
                    let (mut any_t, mut any_f) = (false, false);
                    for l in 0..lanes {
                        if mask.on[l] {
                            if self.scratch[r + l] != 0 {
                                any_t = true;
                            } else {
                                any_f = true;
                            }
                        }
                    }
                    if any_t && any_f {
                        // Divergent: split the mask and run both arms.
                        self.u_misses += 1;
                        let ws = self.warp_size;
                        let mut tb = self.take_bits();
                        let mut eb = self.take_bits();
                        for l in 0..lanes {
                            if mask.on[l] {
                                let c = self.scratch[r + l] != 0;
                                tb[l] = c;
                                eb[l] = !c;
                            }
                        }
                        let tm = WMask::new(tb, ws);
                        let em = WMask::new(eb, ws);
                        self.wexec(then_s, &tm)?;
                        self.wexec(else_s, &em)?;
                        self.put_bits(tm.on);
                        self.put_bits(em.on);
                    } else {
                        // Uniform: all active lanes agree. The untaken
                        // branch would run under an all-false mask — a
                        // no-op with zero counters — so skip it outright.
                        self.u_hits += 1;
                        if any_t {
                            self.wexec(then_s, mask)?;
                        } else {
                            self.wexec(else_s, mask)?;
                        }
                    }
                }
                DStm::Barrier => {
                    if !mask.all {
                        return Err(SimError::DivergentBarrier {
                            kernel: self.dk.name.clone(),
                        });
                    }
                    self.stats.barriers += 1;
                    if let Some(s) = self.site() {
                        s.barriers += 1;
                    }
                    self.issue_w(mask, 0);
                }
                DStm::At { prov, body } => {
                    let saved = self.cur_site;
                    if self.sites.is_some() {
                        self.cur_site = *prov as usize;
                    }
                    let r = self.wexec(body, mask);
                    self.cur_site = saved;
                    r?;
                }
            }
        }
        Ok(())
    }
}

/// Runs one work-group against the shared memory snapshot and returns its
/// stats and write log.
#[allow(clippy::too_many_arguments)]
fn run_group(
    dk: &DecodedKernel,
    device: &DeviceProfile,
    base: &DeviceMemory,
    buf_ids: &[Option<BufId>],
    scalar_bits: &[Option<u64>],
    local_sizes: &[(ScalarType, usize)],
    group_id: u64,
    lanes: usize,
    num_threads: u64,
    profile: bool,
    engine: SimEngine,
) -> SResult<GroupOut> {
    let n_sites = dk.prov_table.len() + 1;
    let warp = engine == SimEngine::Warp;
    let mut run = GroupRun {
        dk,
        base,
        buf_ids,
        scalar_bits,
        group_id,
        group_size: device.group_size as u64,
        num_threads,
        lanes,
        warp_size: device.warp_size as usize,
        transaction_bytes: device.transaction_bytes,
        files: RegFiles::new(&dk.file_len, lanes),
        privs: vec![Vec::new(); dk.priv_class.len() * lanes],
        locals: local_sizes.iter().map(|&(_, n)| vec![0u64; n]).collect(),
        writes: HashMap::new(),
        stack: Vec::with_capacity(16),
        offsets: vec![None; lanes],
        segs: Vec::with_capacity(device.warp_size as usize),
        scratch: if warp {
            vec![0u64; WREG_FILE as usize * lanes]
        } else {
            Vec::new()
        },
        icol: if warp { vec![0i64; lanes] } else { Vec::new() },
        mask_pool: Vec::new(),
        u_hits: 0,
        u_misses: 0,
        stats: KernelStats::default(),
        sites: profile.then(|| vec![SiteStats::default(); n_sites]),
        cur_site: n_sites - 1,
    };
    match engine {
        SimEngine::Lane => {
            let mask = vec![true; lanes];
            run.exec(&dk.body, &mask)?;
        }
        SimEngine::Warp => {
            let mask = WMask::new(vec![true; lanes], run.warp_size);
            run.wexec(&dk.body, &mask)?;
        }
    }
    Ok(GroupOut {
        stats: run.stats,
        writes: run.writes,
        sites: run.sites,
        u_hits: run.u_hits,
        u_misses: run.u_misses,
    })
}

// ---------------------------------------------------------------------------
// Launch
// ---------------------------------------------------------------------------

/// Evaluates a local-buffer size expression, which must be uniform across
/// the group: built from constants, `GroupSize`, scalar arguments, and
/// binary operators (all at i64, as in the tree-walking simulator).
fn eval_uniform(e: &KExp, group_size: u64, scalars: &[Option<Scalar>]) -> SResult<i64> {
    match e {
        KExp::Const(k) => k
            .as_i64()
            .ok_or_else(|| SimError::Scalar("non-integer uniform expression".into())),
        KExp::GroupSize => Ok(group_size as i64),
        KExp::ScalarArg(i) => scalars
            .get(*i)
            .copied()
            .flatten()
            .and_then(|s| s.as_i64())
            .ok_or_else(|| SimError::Scalar("bad scalar argument".into())),
        KExp::BinOp(op, a, b) => {
            let x = eval_uniform(a, group_size, scalars)?;
            let y = eval_uniform(b, group_size, scalars)?;
            eval_binop(*op, Scalar::I64(x), Scalar::I64(y))
                .map_err(|e| SimError::Scalar(e.to_string()))?
                .as_i64()
                .ok_or_else(|| SimError::Scalar("non-integer uniform".into()))
        }
        _ => Err(SimError::Scalar(
            "local size must be built from constants and scalar args".into(),
        )),
    }
}

/// The default number of host threads for group execution: the
/// `FUTHARK_SIM_THREADS` environment variable if set (minimum 1), else the
/// machine's available parallelism. Read from the environment on every
/// call — this is a *default-only fallback*, consulted when building
/// [`LaunchOpts`]/`RunOptions` defaults; explicit per-request overrides
/// always win. (It used to be latched in a `OnceLock`, which pinned the
/// first caller's snapshot for the life of the process — fatal in a
/// long-lived daemon serving requests with differing settings.)
pub fn host_threads() -> usize {
    match std::env::var("FUTHARK_SIM_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or(1),
        Err(_) => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Which execution engine runs a group's statement list. Both compute the
/// same function with bit-identical outputs, errors, and counters; the
/// warp engine is the fast default, the per-lane engine the independent
/// reference kept for differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimEngine {
    /// One opcode dispatch drives every lane: register-form tapes over
    /// column-major scratch, mask-predicated per-opcode loops, uniform
    /// control-flow fast path.
    #[default]
    Warp,
    /// The original engine: each lane evaluates postfix tapes on its own
    /// bit-stack.
    Lane,
}

/// The default engine selected by the `FUTHARK_SIM_ENGINE` environment
/// variable (`lane` for the per-lane reference engine, anything else —
/// including unset — for the warp engine). Read from the environment on
/// every call: a default-only fallback for [`LaunchOpts`]/`RunOptions`
/// construction, never a latched snapshot, so per-request engine overrides
/// in a long-lived server take effect launch by launch.
pub fn sim_engine() -> SimEngine {
    match std::env::var("FUTHARK_SIM_ENGINE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("lane") => SimEngine::Lane,
        _ => SimEngine::Warp,
    }
}

/// Per-launch options for [`launch_decoded_with`]. The default reads the
/// environment-derived settings ([`host_threads`], [`sim_engine`]) at
/// construction time; explicit fields always override the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchOpts {
    /// Host threads executing independent work-groups.
    pub threads: usize,
    /// Whether to bucket counters by source site.
    pub profile: bool,
    /// Which execution engine to use.
    pub engine: SimEngine,
}

impl Default for LaunchOpts {
    fn default() -> Self {
        LaunchOpts {
            threads: host_threads(),
            profile: false,
            engine: sim_engine(),
        }
    }
}

/// Everything one launch produced: the aggregate counters, per-site
/// buckets when profiled, and the warp engine's uniform fast-path tallies.
/// The tallies are per-launch values — there is deliberately no
/// process-wide accumulator, so concurrent launches (a daemon's jobs,
/// parallel tests) can never contaminate each other's diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchOut {
    /// Aggregate execution counters (bit-identical across engines, thread
    /// counts, and profiling).
    pub stats: KernelStats,
    /// Per-site counters, present only on profiled launches.
    pub sites: Option<Vec<SiteStats>>,
    /// Control-flow decisions that took the warp engine's uniform fast
    /// path. Always zero under the lane engine. Diagnostic only —
    /// deliberately *not* part of [`KernelStats`], so engine choice cannot
    /// perturb profiled counters.
    pub uniform_hits: u64,
    /// Control-flow decisions that fell back to per-lane masking.
    pub uniform_misses: u64,
}

/// Minimum group count before spawning worker threads: below this the
/// per-thread setup costs more than the parallelism recovers.
const PAR_MIN_GROUPS: u64 = 2;

/// Launches a pre-decoded kernel over `num_threads` threads, executing
/// independent work-groups on up to `threads` host threads. Results —
/// device memory, the returned [`KernelStats`], and any error — are
/// bit-identical for every value of `threads` (see the module docs for the
/// memory model that guarantees this).
///
/// # Errors
///
/// Returns a [`SimError`] on faults (bounds, divergent barriers, runaway
/// loops, negative local-memory sizes). When several groups fault, the
/// lowest-numbered group's error is reported, after committing the writes
/// of the groups before it — exactly what sequential execution observed.
pub fn launch_decoded(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    threads: usize,
) -> SResult<KernelStats> {
    launch_decoded_impl(
        device,
        dk,
        num_threads,
        args,
        mem,
        threads,
        false,
        sim_engine(),
    )
    .map(|out| out.stats)
}

/// Launches a pre-decoded kernel with explicit [`LaunchOpts`] — the one
/// entry point that exposes engine selection programmatically. Outputs,
/// errors, and counters are bit-identical across engines, thread counts,
/// and profiling.
///
/// # Errors
///
/// Exactly as [`launch_decoded`].
pub fn launch_decoded_with(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    opts: LaunchOpts,
) -> SResult<LaunchOut> {
    launch_decoded_impl(
        device,
        dk,
        num_threads,
        args,
        mem,
        opts.threads,
        opts.profile,
        opts.engine,
    )
}

/// Like [`launch_decoded`], but additionally buckets counters by source
/// site (the decoded kernel's provenance table; the extra final slot is
/// the unattributed bucket). The returned [`KernelStats`] are bit-identical
/// to an unprofiled launch of the same kernel: the per-site counters are
/// accumulated separately and never feed back into execution.
///
/// # Errors
///
/// Exactly as [`launch_decoded`].
pub fn launch_decoded_profiled(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    threads: usize,
) -> SResult<(KernelStats, Vec<SiteStats>)> {
    launch_decoded_impl(
        device,
        dk,
        num_threads,
        args,
        mem,
        threads,
        true,
        sim_engine(),
    )
    .map(|out| {
        let sites = out.sites.expect("profiled launch returns sites");
        (out.stats, sites)
    })
}

#[allow(clippy::too_many_arguments)]
fn launch_decoded_impl(
    device: &DeviceProfile,
    dk: &DecodedKernel,
    num_threads: u64,
    args: &[Arg],
    mem: &mut DeviceMemory,
    threads: usize,
    profile: bool,
    engine: SimEngine,
) -> SResult<LaunchOut> {
    let group_size = device.group_size as u64;
    let num_groups = num_threads.div_ceil(group_size).max(1);
    // Resolve launch arguments once.
    let mut buf_ids: Vec<Option<BufId>> = vec![None; args.len()];
    let mut scalar_bits: Vec<Option<u64>> = vec![None; args.len()];
    let mut scalars: Vec<Option<Scalar>> = vec![None; args.len()];
    for (i, a) in args.iter().enumerate() {
        match a {
            Arg::Buffer(b) => buf_ids[i] = Some(*b),
            Arg::Scalar(s) => {
                scalar_bits[i] = Some(enc(*s));
                scalars[i] = Some(*s);
            }
        }
    }
    // Buffer arguments must carry the element type the kernel declared:
    // registers are statically classed from the declaration, so a mismatch
    // would silently reinterpret bits.
    for (i, p) in dk.params.iter().enumerate() {
        if let (KParam::Buffer(want), Some(Some(bid))) = (p, buf_ids.get(i)) {
            let got = mem
                .download(*bid)
                .map_err(|_| SimError::UseAfterFree {
                    buf: *bid,
                    what: format!("buffer argument {i} of kernel `{}`", dk.name),
                })?
                .elem_type();
            if got != *want {
                return Err(SimError::Scalar(format!(
                    "buffer argument {i} has element type {got:?}, kernel `{}` expects {want:?}",
                    dk.name
                )));
            }
        }
        if let (KParam::Scalar(want), Some(Some(s))) = (p, scalars.get(i)) {
            let got = s.scalar_type();
            if got != *want {
                return Err(SimError::Scalar(format!(
                    "scalar argument {i} has type {got:?}, kernel `{}` expects {want:?}",
                    dk.name
                )));
            }
        }
    }
    // Size local buffers once per launch (they are uniform by
    // construction). A negative requested size is a fault, not an empty
    // buffer.
    let mut local_sizes: Vec<(ScalarType, usize)> = Vec::with_capacity(dk.locals.len());
    for (t, size) in &dk.locals {
        let n = eval_uniform(size, group_size, &scalars)?;
        if n < 0 {
            return Err(SimError::NegativeLocalSize {
                kernel: dk.name.clone(),
                requested: n,
            });
        }
        local_sizes.push((*t, n as usize));
    }

    let lanes_of = |g: u64| group_size.min(num_threads.saturating_sub(g * group_size)) as usize;
    let run_one = |g: u64, base: &DeviceMemory| -> Option<SResult<GroupOut>> {
        let lanes = lanes_of(g);
        if lanes == 0 {
            return None;
        }
        Some(run_group(
            dk,
            device,
            base,
            &buf_ids,
            &scalar_bits,
            &local_sizes,
            g,
            lanes,
            num_threads,
            profile,
            engine,
        ))
    };

    let workers = threads.min(num_groups as usize).max(1);
    let mut outs: Vec<Option<SResult<GroupOut>>> = Vec::with_capacity(num_groups as usize);
    if workers <= 1 || num_groups < PAR_MIN_GROUPS {
        let base: &DeviceMemory = mem;
        for g in 0..num_groups {
            outs.push(run_one(g, base));
        }
    } else {
        outs.resize_with(num_groups as usize, || None);
        let base: &DeviceMemory = mem;
        let slots: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let run_one = &run_one;
                    s.spawn(move || {
                        // Strided group assignment balances uneven groups.
                        let mut mine = Vec::new();
                        let mut g = w as u64;
                        while g < num_groups {
                            mine.push((g, run_one(g, base)));
                            g += workers as u64;
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("simulator worker panicked"))
                .collect()
        });
        for (g, out) in slots {
            outs[g as usize] = out;
        }
    }

    // Commit in ascending group order: write logs are applied and counters
    // merged deterministically, and the lowest faulting group's error wins
    // with exactly its predecessors' writes committed.
    let mut stats = KernelStats {
        threads: num_threads,
        ..KernelStats::default()
    };
    let mut sites = profile.then(|| vec![SiteStats::default(); dk.prov_table.len() + 1]);
    let mut uniform_hits = 0u64;
    let mut uniform_misses = 0u64;
    for out in outs.into_iter().flatten() {
        let out = out?;
        for (bid, writes) in out.writes {
            let buf = mem.raw_mut(bid);
            for (i, bits) in writes {
                buf_set_bits(buf, i, bits);
            }
        }
        stats.merge(&out.stats);
        uniform_hits += out.u_hits;
        uniform_misses += out.u_misses;
        if let (Some(total), Some(group)) = (&mut sites, &out.sites) {
            for (t, g) in total.iter_mut().zip(group) {
                t.merge(g);
            }
        }
    }
    Ok(LaunchOut {
        stats,
        sites,
        uniform_hits,
        uniform_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KParam, KStm};

    fn square_kernel() -> Kernel {
        // out[i] = in[i] * in[i]
        Kernel {
            name: "square".into(),
            params: vec![
                KParam::Buffer(ScalarType::I64),
                KParam::Buffer(ScalarType::I64),
            ],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::GlobalWrite {
                    buf: 1,
                    index: KExp::GlobalId,
                    value: KExp::Var(0).mul(KExp::Var(0)),
                },
            ],
        }
    }

    #[test]
    fn decode_infers_register_classes() {
        let k = Kernel {
            name: "mixed".into(),
            params: vec![
                KParam::Buffer(ScalarType::F64),
                KParam::Scalar(ScalarType::I64),
            ],
            locals: vec![],
            num_regs: 3,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::Assign {
                    var: 1,
                    exp: KExp::ScalarArg(1),
                },
                KStm::Assign {
                    var: 2,
                    exp: KExp::Cmp(
                        futhark_core::CmpOp::Lt,
                        Box::new(KExp::Var(1)),
                        Box::new(KExp::i64(3)),
                    ),
                },
            ],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        assert_eq!(dk.reg_slot[0].0, ScalarType::F64);
        assert_eq!(dk.reg_slot[1].0, ScalarType::I64);
        assert_eq!(dk.reg_slot[2].0, ScalarType::Bool);
        // One slot per class used.
        assert_eq!(dk.file_len[ci(ScalarType::F64)], 1);
        assert_eq!(dk.file_len[ci(ScalarType::I64)], 1);
        assert_eq!(dk.file_len[ci(ScalarType::Bool)], 1);
        assert_eq!(dk.file_len[ci(ScalarType::F32)], 0);
    }

    #[test]
    fn decode_rejects_register_class_conflicts() {
        let k = Kernel {
            name: "conflict".into(),
            params: vec![KParam::Scalar(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::Assign {
                    var: 0,
                    exp: KExp::i64(1),
                },
                KStm::Assign {
                    var: 0,
                    exp: KExp::Const(Scalar::F64(1.0)),
                },
            ],
        };
        assert!(DecodedKernel::decode(&k).is_err());
    }

    #[test]
    fn parallel_execution_is_bit_identical_to_sequential() {
        let dev = DeviceProfile::gtx780();
        let dk = DecodedKernel::decode(&square_kernel()).unwrap();
        let n = 10_000usize;
        let run = |threads: usize| {
            let mut mem = DeviceMemory::new();
            let a = mem
                .upload(Buffer::I64((0..n as i64).map(|i| i - 5000).collect()))
                .unwrap();
            let out = mem.alloc(ScalarType::I64, n).unwrap();
            let stats = launch_decoded(
                &dev,
                &dk,
                n as u64,
                &[Arg::Buffer(a), Arg::Buffer(out)],
                &mut mem,
                threads,
            )
            .unwrap();
            (stats, mem.download(out).unwrap().clone())
        };
        let (seq_stats, seq_out) = run(1);
        for threads in [2, 3, 8] {
            let (par_stats, par_out) = run(threads);
            assert_eq!(seq_stats, par_stats, "stats differ at {threads} threads");
            assert_eq!(seq_out, par_out, "outputs differ at {threads} threads");
        }
    }

    #[test]
    fn cross_group_scatter_conflicts_resolve_in_group_order() {
        // Every thread writes its group id to out[0]: the last group wins,
        // deterministically, at any host-thread count.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "conflict".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::GlobalWrite {
                buf: 0,
                index: KExp::i64(0),
                value: KExp::GroupId,
            }],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let n = 4 * dev.group_size as u64; // four full groups
        for threads in [1, 2, 4] {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, 1).unwrap();
            launch_decoded(&dev, &dk, n, &[Arg::Buffer(out)], &mut mem, threads).unwrap();
            let Buffer::I64(v) = mem.download(out).unwrap() else {
                panic!()
            };
            assert_eq!(v[0], 3, "at {threads} threads");
        }
    }

    #[test]
    fn lowest_faulting_group_wins_and_predecessors_commit() {
        // Group 0 writes out[0] = 7; group 1 reads out of bounds. The
        // error must be group 1's, and group 0's write must be visible.
        let dev = DeviceProfile::gtx780();
        let gs = dev.group_size as i64;
        let k = Kernel {
            name: "fault".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::If {
                cond: KExp::Cmp(
                    futhark_core::CmpOp::Eq,
                    Box::new(KExp::GroupId),
                    Box::new(KExp::i64(0)),
                ),
                then_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::LocalId.rem(KExp::i64(2)),
                    value: KExp::i64(7),
                }],
                else_s: vec![KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::i64(1_000_000),
                }],
            }],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        for threads in [1, 4] {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, 2).unwrap();
            let e = launch_decoded(
                &dev,
                &dk,
                2 * gs as u64,
                &[Arg::Buffer(out)],
                &mut mem,
                threads,
            )
            .unwrap_err();
            assert!(matches!(e, SimError::OutOfBounds { .. }), "at {threads}");
            let Buffer::I64(v) = mem.download(out).unwrap() else {
                panic!()
            };
            assert_eq!(&v[..], &[7, 7], "group 0's writes must be committed");
        }
    }

    #[test]
    fn floored_division_in_decoded_kernels() {
        // out[i] = (i - 8) / 3 over the tape engine must match the
        // interpreter's floored semantics.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "floordiv".into(),
            params: vec![
                KParam::Buffer(ScalarType::I64),
                KParam::Buffer(ScalarType::I64),
            ],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::GlobalWrite {
                    buf: 1,
                    index: KExp::GlobalId,
                    value: KExp::Var(0).div(KExp::i64(3)),
                },
            ],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let mut mem = DeviceMemory::new();
        let xs: Vec<i64> = (0..16).map(|i| i - 8).collect();
        let a = mem.upload(Buffer::I64(xs.clone())).unwrap();
        let out = mem.alloc(ScalarType::I64, 16).unwrap();
        launch_decoded(
            &dev,
            &dk,
            16,
            &[Arg::Buffer(a), Arg::Buffer(out)],
            &mut mem,
            1,
        )
        .unwrap();
        let Buffer::I64(v) = mem.download(out).unwrap() else {
            panic!()
        };
        for (x, got) in xs.iter().zip(v) {
            assert_eq!(*got, floor_div_i64(*x, 3), "{x} / 3");
        }
        assert_eq!(v[0], -3); // -8/3 floors to -3, not -2
    }

    #[test]
    fn negative_local_size_is_an_error() {
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "neglocal".into(),
            params: vec![KParam::Scalar(ScalarType::I64)],
            locals: vec![(ScalarType::I64, KExp::ScalarArg(0))],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let mut mem = DeviceMemory::new();
        let e =
            launch_decoded(&dev, &dk, 8, &[Arg::Scalar(Scalar::I64(-5))], &mut mem, 1).unwrap_err();
        assert!(
            matches!(e, SimError::NegativeLocalSize { requested: -5, .. }),
            "got {e:?}"
        );
    }

    #[test]
    fn group_reads_its_own_writes_through_the_overlay() {
        // Write out[id] = id, then read it back and double it, all in one
        // launch: reads must see the group's own earlier writes.
        let dev = DeviceProfile::gtx780();
        let k = Kernel {
            name: "rmw".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 1,
            num_priv: 0,
            prov_table: vec![],
            body: vec![
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::GlobalId,
                },
                KStm::GlobalRead {
                    var: 0,
                    buf: 0,
                    index: KExp::GlobalId,
                },
                KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::Var(0).mul(KExp::i64(2)),
                },
            ],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        for threads in [1, 4] {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, 600).unwrap();
            launch_decoded(&dev, &dk, 600, &[Arg::Buffer(out)], &mut mem, threads).unwrap();
            let Buffer::I64(v) = mem.download(out).unwrap() else {
                panic!()
            };
            assert_eq!(v[0], 0);
            assert_eq!(v[299], 598);
            assert_eq!(v[599], 1198);
        }
    }

    // -----------------------------------------------------------------------
    // Register allocator (reg_compile): determinism, spills, type classes
    // -----------------------------------------------------------------------

    /// `out[i] = c1 + (c2 + (… + (c_depth + i)))`, built without the
    /// constant-folding helpers so the postfix stack reaches `depth + 1`
    /// live slots — past the warp register file for `depth >= 16`.
    fn deep_sum_kernel(depth: usize) -> Kernel {
        let mut e = KExp::GlobalId;
        for i in (1..=depth).rev() {
            e = KExp::BinOp(BinOp::Add, Box::new(KExp::i64(i as i64)), Box::new(e));
        }
        Kernel {
            name: "deep_sum".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::GlobalWrite {
                buf: 0,
                index: KExp::GlobalId,
                value: e,
            }],
        }
    }

    /// The value tape of a kernel whose single statement is a GlobalWrite.
    fn write_value_tape(dk: &DecodedKernel) -> &Tape {
        match &dk.body[..] {
            [DStm::GlobalWrite { value, .. }] => value,
            other => panic!("expected a single GlobalWrite, found {other:?}"),
        }
    }

    #[test]
    fn register_allocation_is_deterministic() {
        // Same tape, same assignment — decode twice and demand identical
        // register-form instructions (profgate's bit-for-bit baseline
        // depends on this).
        let k = deep_sum_kernel(20);
        let a = DecodedKernel::decode(&k).unwrap();
        let b = DecodedKernel::decode(&k).unwrap();
        let (ta, tb) = (write_value_tape(&a), write_value_tape(&b));
        assert_eq!(ta.winstrs, tb.winstrs);
        assert_eq!(ta.n_regs, tb.n_regs);
        assert_eq!(ta.result, tb.result);
        // And directly on the allocator, with every leaf opcode kind.
        let ops = vec![
            EOp::GlobalId,
            EOp::Const(7),
            EOp::Bin(BinOp::Add, ScalarType::I64),
            EOp::LocalId,
            EOp::Bin(BinOp::Mul, ScalarType::I64),
        ];
        assert_eq!(reg_compile(&ops), reg_compile(&ops));
    }

    #[test]
    fn binary_ops_reuse_the_left_operand_register() {
        // The LIFO free list hands a binary op's destination its left
        // operand's register, so a left-leaning chain runs in two
        // registers flat.
        let ops = vec![
            EOp::Const(1),
            EOp::Const(2),
            EOp::Bin(BinOp::Add, ScalarType::I64),
            EOp::Const(3),
            EOp::Bin(BinOp::Add, ScalarType::I64),
        ];
        let (winstrs, n_regs, result) = reg_compile(&ops).unwrap();
        assert_eq!(n_regs, 2);
        assert_eq!(result, 0);
        for w in &winstrs {
            if let WInstr::Bin { dst, a, .. } = w {
                assert_eq!(dst, a, "destination must reuse the left operand");
            }
        }
    }

    #[test]
    fn reg_compile_rejects_structurally_invalid_tapes() {
        // A binary op with an empty stack: underflow, not a panic. These
        // tapes cannot come out of the decoder, but a hand-constructed
        // artifact fed to a long-lived server must be a structured error.
        let underflow = vec![EOp::Bin(BinOp::Add, ScalarType::I64)];
        let err = reg_compile(&underflow).unwrap_err();
        assert!(err.contains("underflow"), "got: {err}");
        // An empty tape has no result.
        let err = reg_compile(&[]).unwrap_err();
        assert!(err.contains("empty"), "got: {err}");
        // Two pushes, no combining op: leftover operands.
        let unbalanced = vec![EOp::Const(1), EOp::Const(2)];
        let err = reg_compile(&unbalanced).unwrap_err();
        assert!(err.contains("unbalanced"), "got: {err}");
    }

    #[test]
    fn corrupted_tape_is_a_malformed_error_not_a_panic() {
        // Decode a valid kernel, then corrupt the write-value tape so its
        // postfix ops underflow. The lane engine (which interprets `ops`
        // directly) must fault with SimError::Malformed — the structured
        // error futharkd returns as a job failure — rather than panicking
        // and killing the process.
        let mut dk = DecodedKernel::decode(&square_kernel()).unwrap();
        match &mut dk.body[..] {
            [_, DStm::GlobalWrite { value, .. }] => {
                value.ops = vec![EOp::Bin(BinOp::Mul, ScalarType::I64)];
            }
            other => panic!("unexpected decoded body: {other:?}"),
        }
        let dev = DeviceProfile::gtx780();
        let mut mem = DeviceMemory::new();
        let a = mem.alloc(ScalarType::I64, 8).unwrap();
        let b = mem.alloc(ScalarType::I64, 8).unwrap();
        let opts = LaunchOpts {
            threads: 1,
            profile: false,
            engine: SimEngine::Lane,
        };
        let err = launch_decoded_with(
            &dev,
            &dk,
            8,
            &[Arg::Buffer(a), Arg::Buffer(b)],
            &mut mem,
            opts,
        )
        .unwrap_err();
        match err {
            SimError::Malformed { kernel, what } => {
                assert_eq!(kernel, "square");
                assert!(what.contains("underflow"), "got: {what}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn deep_tapes_spill_past_the_register_file_and_still_evaluate() {
        let depth = 24usize;
        let dk = DecodedKernel::decode(&deep_sum_kernel(depth)).unwrap();
        let tape = write_value_tape(&dk);
        assert!(
            tape.n_regs > WREG_FILE,
            "depth {depth} should exceed the {WREG_FILE}-register file, used {}",
            tape.n_regs
        );
        assert_eq!(tape.spills(), tape.n_regs - WREG_FILE);
        // The spilling tape must still evaluate correctly on both engines.
        let dev = DeviceProfile::gtx780();
        let n = 300usize;
        let base: i64 = (1..=depth as i64).sum();
        let run = |engine: SimEngine| {
            let mut mem = DeviceMemory::new();
            let out = mem.alloc(ScalarType::I64, n).unwrap();
            let opts = LaunchOpts {
                threads: 1,
                profile: false,
                engine,
            };
            let out_run =
                launch_decoded_with(&dev, &dk, n as u64, &[Arg::Buffer(out)], &mut mem, opts)
                    .unwrap();
            (out_run.stats, mem.download(out).unwrap().clone())
        };
        let (wstats, wout) = run(SimEngine::Warp);
        let (lstats, lout) = run(SimEngine::Lane);
        assert_eq!(wstats, lstats);
        assert_eq!(wout, lout);
        let Buffer::I64(v) = wout else { panic!() };
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, base + i as i64);
        }
    }

    #[test]
    fn mixed_class_tapes_carry_inferred_types() {
        // i64 lane id → f64, scaled — the register form must carry the
        // conversion endpoints and the f64 operand class, and the tape's
        // own class must be the converted one.
        let k = Kernel {
            name: "mixed_tape".into(),
            params: vec![KParam::Buffer(ScalarType::F64)],
            locals: vec![],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::GlobalWrite {
                buf: 0,
                index: KExp::GlobalId,
                value: KExp::BinOp(
                    BinOp::Mul,
                    Box::new(KExp::Convert(ScalarType::F64, Box::new(KExp::GlobalId))),
                    Box::new(KExp::Const(Scalar::F64(0.5))),
                ),
            }],
        };
        let dk = DecodedKernel::decode(&k).unwrap();
        let tape = write_value_tape(&dk);
        assert_eq!(tape.class, ScalarType::F64);
        assert!(
            tape.winstrs.iter().any(|w| matches!(
                w,
                WInstr::Conv {
                    from: ScalarType::I64,
                    to: ScalarType::F64,
                    ..
                }
            )),
            "conversion endpoints missing: {:?}",
            tape.winstrs
        );
        assert!(
            tape.winstrs.iter().any(|w| matches!(
                w,
                WInstr::Bin {
                    op: BinOp::Mul,
                    t: ScalarType::F64,
                    ..
                }
            )),
            "f64 operand class missing: {:?}",
            tape.winstrs
        );
        // Booleans join through comparisons: the cond tape of an If over
        // an i64 comparison is a Bool tape whose Cmp carries the i64
        // operand class.
        let kb = Kernel {
            name: "bool_tape".into(),
            params: vec![KParam::Buffer(ScalarType::I64)],
            locals: vec![],
            num_regs: 0,
            num_priv: 0,
            prov_table: vec![],
            body: vec![KStm::If {
                cond: KExp::Cmp(CmpOp::Lt, Box::new(KExp::GlobalId), Box::new(KExp::i64(4))),
                then_s: vec![KStm::GlobalWrite {
                    buf: 0,
                    index: KExp::GlobalId,
                    value: KExp::GlobalId,
                }],
                else_s: vec![],
            }],
        };
        let dkb = DecodedKernel::decode(&kb).unwrap();
        match &dkb.body[..] {
            [DStm::If { cond, .. }] => {
                assert_eq!(cond.class, ScalarType::Bool);
                assert!(
                    cond.winstrs.iter().any(|w| matches!(
                        w,
                        WInstr::Cmp {
                            op: CmpOp::Lt,
                            t: ScalarType::I64,
                            ..
                        }
                    )),
                    "i64 comparison class missing: {:?}",
                    cond.winstrs
                );
            }
            other => panic!("expected a single If, found {other:?}"),
        }
    }
}

//! Simulated device profiles.
//!
//! The paper evaluates on an NVIDIA GeForce GTX 780 Ti (CUDA 8.0) and an
//! AMD FirePro W8100; the two profiles below model those GPUs' published
//! characteristics (compute units, SIMD width, clock, bandwidth) plus the
//! behavioural notes from Section 6.1 (e.g. the AMD part's higher kernel
//! launch overhead, which the paper blames for NN's smaller speedup
//! there).
//!
//! The simulator's timing model (see `sim`) is
//!
//! ```text
//! t_kernel = launch_overhead
//!          + max( issue_cycles·instructions / (num_cus·ipc·clock),
//!                 bus_bytes / bandwidth )
//! ```
//!
//! where `bus_bytes` counts whole memory transactions — so uncoalesced
//! access patterns pay for the full transaction even when threads use 4
//! bytes of it, reproducing the ~one-order-of-magnitude coalescing effects
//! reported in Section 6.1.1.

/// Parameters of a simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: String,
    /// Number of compute units (SMs / CUs).
    pub num_cus: u32,
    /// SIMD width: threads per warp (NVIDIA) / wavefront (AMD).
    pub warp_size: u32,
    /// Default work-group size used by generated kernels.
    pub group_size: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp instructions issued per compute unit per cycle.
    pub ipc: f64,
    /// Global-memory transaction size in bytes.
    pub transaction_bytes: u64,
    /// Peak global-memory bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Local-memory accesses per compute unit per cycle (throughput).
    pub local_per_cycle: f64,
    /// Fixed kernel-launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Host-device round trip (used for host-side fallbacks), microseconds.
    pub sync_overhead_us: f64,
    /// Global-memory capacity in bytes. Allocating past this is a
    /// structured `SimError::OutOfMemory`, never unbounded host growth.
    pub global_mem_bytes: u64,
}

impl DeviceProfile {
    /// The NVIDIA GeForce GTX 780 Ti profile used in the paper's Table 1.
    pub fn gtx780() -> DeviceProfile {
        DeviceProfile {
            name: "NVIDIA GTX 780 Ti (simulated)".into(),
            num_cus: 15,
            warp_size: 32,
            group_size: 256,
            clock_ghz: 0.928,
            ipc: 4.0,
            transaction_bytes: 128,
            bandwidth_gbps: 336.0,
            local_per_cycle: 32.0,
            launch_overhead_us: 5.0,
            sync_overhead_us: 8.0,
            global_mem_bytes: 3 << 30, // 3 GiB GDDR5
        }
    }

    /// The AMD FirePro W8100 profile used in the paper's Table 1.
    ///
    /// The launch overhead is substantially larger than the NVIDIA part's —
    /// the behaviour Section 6.1 uses to explain NN's reduced speedup on
    /// this GPU ("due to higher kernel launch overhead—this benchmark is
    /// dominated by frequent launches of short kernels").
    pub fn w8100() -> DeviceProfile {
        DeviceProfile {
            name: "AMD FirePro W8100 (simulated)".into(),
            num_cus: 44,
            warp_size: 64,
            group_size: 256,
            clock_ghz: 0.824,
            ipc: 1.0,
            transaction_bytes: 64,
            bandwidth_gbps: 320.0,
            local_per_cycle: 64.0,
            launch_overhead_us: 25.0,
            sync_overhead_us: 40.0,
            global_mem_bytes: 8 << 30, // 8 GiB GDDR5
        }
    }

    /// Microseconds for `cycles` of fully parallel compute work.
    pub fn compute_us(&self, warp_instructions: f64) -> f64 {
        warp_instructions / (self.num_cus as f64 * self.ipc * self.clock_ghz * 1e3)
    }

    /// Microseconds to move `bytes` over the memory bus.
    pub fn memory_us(&self, bus_bytes: f64) -> f64 {
        bus_bytes / (self.bandwidth_gbps * 1e3)
    }

    /// Microseconds for `accesses` local-memory accesses at the device's
    /// local-memory throughput.
    pub fn local_us(&self, accesses: f64) -> f64 {
        accesses / (self.num_cus as f64 * self.local_per_cycle * self.clock_ghz * 1e3)
    }

    /// Peak warp-instruction issue rate, in warp instructions per µs.
    pub fn peak_issue_per_us(&self) -> f64 {
        self.num_cus as f64 * self.ipc * self.clock_ghz * 1e3
    }

    /// Peak memory bandwidth, in bytes per µs.
    pub fn peak_bytes_per_us(&self) -> f64 {
        self.bandwidth_gbps * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_where_the_paper_says() {
        let nv = DeviceProfile::gtx780();
        let amd = DeviceProfile::w8100();
        assert!(amd.launch_overhead_us > nv.launch_overhead_us);
        assert!(amd.warp_size > nv.warp_size);
        assert_eq!(nv.warp_size, 32);
    }

    #[test]
    fn timing_helpers_scale() {
        let d = DeviceProfile::gtx780();
        assert!(d.memory_us(336e3) > 0.9 && d.memory_us(336e3) < 1.1);
        assert!(d.compute_us(1e6) > 0.0);
    }
}
